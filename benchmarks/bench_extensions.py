"""Benchmarks for the extension features.

* threshold auto-tuning (the paper's stated future work),
* partial unrolling interaction with Loop Merge (Section 6),
* the optimizer pipeline's effect on compiled workloads.
"""

from repro.core import ReconvergenceCompiler, tune_workload
from repro.frontend import ast_nodes as A, parse_kernel_source, unroll_labeled_while
from repro.frontend.lower import lower_program
from repro.harness.report import format_table
from repro.simt import GPUMachine
from repro.workloads import get_workload
from tests.helpers import loop_merge_source


def test_threshold_autotune(once):
    """Tuned thresholds land where Figure 9 says they should."""

    def run():
        rows = []
        for name in ("xsbench", "pathtracer"):
            result = tune_workload(get_workload(name))
            best = 32 if result.best_threshold is None else result.best_threshold
            rows.append((name, best, f"{result.best_speedup:.2f}x",
                         len(result.evaluations)))
        return rows

    rows = once(run)
    best = {name: k for name, k, _, _ in rows}
    assert best["xsbench"] < best["pathtracer"]
    print("\n" + format_table(
        ["workload", "tuned threshold", "speedup", "evaluations"], rows,
        title="Threshold auto-tuning (Section 5.3 future work)"))


def test_unroll_interaction(once):
    """Partial unrolling reduces synchronization overhead (Section 6)."""

    def run():
        decl = parse_kernel_source(loop_merge_source(tasks=8)).function("lm")
        compiler = ReconvergenceCompiler()
        rows = []
        for factor in (1, 2, 4):
            d = decl if factor == 1 else unroll_labeled_while(decl, "L1", factor)
            module = lower_program(A.Program(functions=[d]))
            prog = compiler.compile(module, mode="sr")
            launch = GPUMachine(prog.module).launch("lm", 32, args=(256,))
            rows.append((factor, launch.profiler.barrier_issues, launch.cycles,
                         launch.simt_efficiency))
        return rows

    rows = once(run)
    barrier_issues = [r[1] for r in rows]
    assert barrier_issues[2] < barrier_issues[0]
    print("\n" + format_table(
        ["unroll factor", "barrier issues", "cycles", "SIMT efficiency"], rows,
        title="Loop Merge x partial unrolling (Section 6)"))


def test_optimizer_on_workloads(once):
    """The classic pipeline shrinks workload kernels without changing
    results (results checked in tests; here we report the shrink)."""

    def run():
        from repro.core.passes import run_opt_fixpoint
        from repro.ir import count_static_instructions

        rows = []
        for name in ("rsbench", "mcb", "pathtracer"):
            module = get_workload(name).module().clone()
            before = sum(count_static_instructions(fn.blocks) for fn in module)
            run_opt_fixpoint(module)
            after = sum(count_static_instructions(fn.blocks) for fn in module)
            rows.append((name, before, after, f"{(1 - after / before):.0%}"))
        return rows

    rows = once(run)
    assert all(after < before for _, before, after, _ in rows)
    print("\n" + format_table(
        ["workload", "instrs before", "instrs after", "shrink"], rows,
        title="Optimizer pipeline on workload kernels"))
