"""Differential tests: warp execution vs single-thread reference.

Every thread's store trace under full warp execution — any sync mode, any
threshold — must equal its isolated single-thread reference execution.
"""

import pytest
from hypothesis import given, settings

from repro.core import ReconvergenceCompiler
from repro.errors import LaunchError
from repro.frontend import compile_kernel_source
from repro.simt import GPUMachine, GlobalMemory
from repro.simt.reference import run_reference_launch, run_reference_thread
from tests.helpers import loop_merge_source
from tests.test_properties import random_kernel, random_launch
from repro.frontend.lower import lower_program

SIMPLE = "kernel k() { store(tid(), tid() * 3.0 + 1.0); }"

DIVERGENT = """
kernel k() {
    let acc = 0.0;
    let t = tid();
    for i in 0..10 {
        if (hash01(t * 31.0 + i) < 0.4) {
            acc = fma(acc, 1.01, 0.5);
            acc = fma(acc, 1.01, 0.5);
        }
        acc = acc + 0.125;
    }
    store(t, acc);
}
"""


class TestReferenceRunner:
    def test_single_thread_trace(self):
        module = compile_kernel_source(SIMPLE)
        thread = run_reference_thread(module, "k", 5, 32)
        assert thread.store_trace == [(5, 16.0)]

    def test_lane_semantics_preserved(self):
        module = compile_kernel_source("kernel k() { store(tid(), lane()); }")
        thread = run_reference_thread(module, "k", 40, 64)
        assert thread.store_trace == [(40, 8)]

    def test_tid_bounds_checked(self):
        module = compile_kernel_source(SIMPLE)
        with pytest.raises(LaunchError):
            run_reference_thread(module, "k", 32, 32)

    def test_barriers_release_immediately(self):
        # A compiled (barrier-carrying) kernel runs fine in isolation.
        module = compile_kernel_source(loop_merge_source())
        compiled = ReconvergenceCompiler().compile(module, mode="sr", threshold=8)
        thread = run_reference_thread(compiled.module, "lm", 3, 32, args=(96,))
        assert thread.store_trace


class TestDifferential:
    def _compare(self, module, n=32, args=()):
        reference = run_reference_launch(module, module.kernels()[0].name, n, args=args)
        for mode in ("baseline", "sr", "none"):
            compiled = ReconvergenceCompiler().compile(module, mode=mode)
            launch = GPUMachine(compiled.module).launch(
                module.kernels()[0].name, n, args=args, memory=GlobalMemory()
            )
            assert launch.store_traces() == reference, mode

    def test_simple(self):
        self._compare(compile_kernel_source(SIMPLE))

    def test_divergent(self):
        self._compare(compile_kernel_source(DIVERGENT))

    def test_loop_merge(self):
        self._compare(compile_kernel_source(loop_merge_source()), args=(96,))

    @settings(max_examples=10, deadline=None)
    @given(random_kernel())
    def test_random_kernels_match_reference(self, program):
        module = lower_program(program)
        self._compare(module)

    @settings(max_examples=10, deadline=None)
    @given(random_launch())
    def test_random_multiwarp_launches_match_reference(self, program_launch):
        """Launches spanning several warps (and a partial last warp) agree
        with the isolated single-thread reference as well."""
        program, n_threads = program_launch
        module = lower_program(program)
        self._compare(module, n=n_threads)
