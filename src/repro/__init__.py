"""Speculative Reconvergence for Improved SIMT Efficiency — reproduction.

A full-stack Python reproduction of Damani et al., CGO 2020: a compiler IR
and analyses, a Volta-style SIMT warp simulator with convergence barriers,
the Speculative Reconvergence pass suite (Section 4), the Table 2 workloads,
and a harness regenerating every figure of the evaluation.

Quick start::

    from repro import compile_kernel_source, compile_baseline, compile_sr
    from repro.simt import GPUMachine

    module = compile_kernel_source(SOURCE_WITH_PREDICT_ANNOTATIONS)
    baseline = GPUMachine(compile_baseline(module).module).launch("k", 32)
    optimized = GPUMachine(compile_sr(module).module).launch("k", 32)
    print(baseline.simt_efficiency, "->", optimized.simt_efficiency)
"""

from repro.core.pipeline import (
    ReconvergenceCompiler,
    compile_baseline,
    compile_sr,
)
from repro.errors import ReproError
from repro.frontend.parser import compile_kernel_source, parse_kernel_source
from repro.obs import LaunchMetrics, ListSink, chrome_trace, write_chrome_trace
from repro.simt.machine import GPUMachine
from repro.simt.memory import GlobalMemory

__version__ = "1.1.0"

__all__ = [
    "GPUMachine",
    "GlobalMemory",
    "LaunchMetrics",
    "ListSink",
    "chrome_trace",
    "write_chrome_trace",
    "ReconvergenceCompiler",
    "ReproError",
    "compile_baseline",
    "compile_kernel_source",
    "compile_sr",
    "parse_kernel_source",
    "__version__",
]
