"""Tests for the SIMT substrate: RNG, memory, cost model, barrier file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.ir import Opcode
from repro.simt import (
    BarrierFile,
    ConvergenceBarrier,
    CostModel,
    GlobalMemory,
    XorShift32,
    mix_seed,
)


class TestRNG:
    def test_deterministic_streams(self):
        a = XorShift32(7, tid=3)
        b = XorShift32(7, tid=3)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_distinct_threads_distinct_streams(self):
        a = XorShift32(7, tid=3)
        b = XorShift32(7, tid=4)
        assert [a.uniform() for _ in range(4)] != [b.uniform() for _ in range(4)]

    def test_uniform_in_unit_interval(self):
        rng = XorShift32(11)
        for _ in range(1000):
            value = rng.uniform()
            assert 0.0 <= value < 1.0

    def test_uniform_covers_range(self):
        rng = XorShift32(13)
        values = [rng.uniform() for _ in range(2000)]
        assert min(values) < 0.05 and max(values) > 0.95

    def test_randint_inclusive_bounds(self):
        rng = XorShift32(5)
        values = {rng.randint(2, 5) for _ in range(500)}
        assert values == {2, 3, 4, 5}

    def test_mix_seed_never_zero(self):
        assert all(mix_seed(seed, tid) != 0 for seed in range(50) for tid in range(10))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**31), st.integers(0, 4096))
    def test_mix_seed_in_32_bits(self, seed, tid):
        assert 0 < mix_seed(seed, tid) < 2**32


class TestMemory:
    def test_default_zero(self):
        assert GlobalMemory().load(123) == 0

    def test_store_load(self):
        mem = GlobalMemory()
        mem.store(5, 2.5)
        assert mem.load(5) == 2.5

    def test_alloc_bumps(self):
        mem = GlobalMemory()
        a = mem.alloc(10)
        b = mem.alloc(5)
        assert b == a + 10

    def test_alloc_array_initializes(self):
        mem = GlobalMemory()
        base = mem.alloc_array([1, 2, 3])
        assert [mem.load(base + i) for i in range(3)] == [1, 2, 3]

    def test_named_regions(self):
        mem = GlobalMemory()
        mem.alloc_array([7, 8], name="tbl")
        assert mem.read_region("tbl") == [7, 8]

    def test_missing_region_raises(self):
        with pytest.raises(SimulationError):
            GlobalMemory().region("nope")

    def test_negative_alloc_rejected(self):
        with pytest.raises(SimulationError):
            GlobalMemory().alloc(-1)

    def test_atom_add_returns_old(self):
        mem = GlobalMemory()
        assert mem.atom_add(0, 1) == 0
        assert mem.atom_add(0, 1) == 1
        assert mem.load(0) == 2

    def test_snapshot_is_copy(self):
        mem = GlobalMemory()
        mem.store(1, 9)
        snap = mem.snapshot()
        mem.store(1, 10)
        assert snap[1] == 9


class TestCostModel:
    def test_known_latencies(self):
        model = CostModel()
        assert model.latency(Opcode.FMA) == 1
        assert model.latency(Opcode.SIN) > model.latency(Opcode.ADD)

    def test_coalesced_load_pays_base_only(self):
        model = CostModel()
        addresses = list(range(8))  # one segment
        assert model.memory_cost(Opcode.LD, addresses) == model.latency(Opcode.LD)

    def test_scattered_load_pays_per_segment(self):
        model = CostModel()
        addresses = [i * 100 for i in range(4)]  # four segments
        expected = model.latency(Opcode.LD) + 3 * model.load_segment_cost
        assert model.memory_cost(Opcode.LD, addresses) == expected

    def test_store_uses_store_segment_cost(self):
        model = CostModel()
        addresses = [0, 1000]
        expected = model.latency(Opcode.ST) + model.store_segment_cost
        assert model.memory_cost(Opcode.ST, addresses) == expected

    def test_empty_access_is_base(self):
        model = CostModel()
        assert model.memory_cost(Opcode.LD, []) == model.latency(Opcode.LD)

    def test_scaled(self):
        model = CostModel().scaled(2.0)
        assert model.latency(Opcode.DIV) == 16


class TestConvergenceBarrier:
    def test_join_is_idempotent(self):
        barrier = ConvergenceBarrier("b")
        barrier.join(1)
        barrier.join(1)
        assert barrier.members == {1}

    def test_hard_release_requires_all_members(self):
        barrier = ConvergenceBarrier("b")
        for lane in (1, 2, 3):
            barrier.join(lane)
        barrier.park(1)
        barrier.park(2)
        assert barrier.releasable() == set()
        barrier.park(3)
        assert barrier.releasable() == {1, 2, 3}

    def test_park_nonmember_is_passthrough(self):
        barrier = ConvergenceBarrier("b")
        assert barrier.park(9) is False
        assert barrier.parked == set()

    def test_withdraw_can_trigger_release(self):
        barrier = ConvergenceBarrier("b")
        for lane in (1, 2):
            barrier.join(lane)
        barrier.park(1)
        assert barrier.releasable() == set()
        barrier.withdraw(2)
        assert barrier.releasable() == {1}

    def test_soft_threshold_releases_pool(self):
        barrier = ConvergenceBarrier("b")
        for lane in range(6):
            barrier.join(lane)
        barrier.park(0, threshold=3)
        barrier.park(1, threshold=3)
        assert barrier.releasable() == set()
        barrier.park(2, threshold=3)
        assert barrier.releasable() == {0, 1, 2}

    def test_soft_all_members_parked_releases_below_threshold(self):
        barrier = ConvergenceBarrier("b")
        barrier.join(0)
        barrier.join(1)
        barrier.park(0, threshold=10)
        barrier.park(1, threshold=10)
        assert barrier.releasable() == {0, 1}

    def test_release_clears_membership(self):
        barrier = ConvergenceBarrier("b")
        barrier.join(0)
        barrier.park(0)
        barrier.release({0})
        assert barrier.members == set()
        assert barrier.arrived_count == 0

    def test_release_unparked_lane_rejected(self):
        barrier = ConvergenceBarrier("b")
        barrier.join(0)
        with pytest.raises(SimulationError):
            barrier.release({0})

    def test_arrived_count(self):
        barrier = ConvergenceBarrier("b")
        barrier.join(0)
        barrier.join(4)
        assert barrier.arrived_count == 2


class TestBarrierFile:
    def test_get_creates_on_demand(self):
        barriers = BarrierFile()
        assert "b0" not in barriers
        barriers.get("b0")
        assert "b0" in barriers

    def test_withdraw_from_all(self):
        barriers = BarrierFile()
        barriers.get("a").join(1)
        barriers.get("b").join(1)
        touched = barriers.withdraw_from_all(1)
        assert len(touched) == 2
        assert barriers.get("a").members == set()

    def test_all_releasable(self):
        barriers = BarrierFile()
        barrier = barriers.get("a")
        barrier.join(0)
        barrier.park(0)
        assert [(b.name, lanes) for b, lanes in barriers.all_releasable()] == [
            ("a", {0})
        ]

    def test_parked_anywhere(self):
        barriers = BarrierFile()
        barriers.get("a").join(3)
        barriers.get("a").park(3)
        assert barriers.parked_anywhere() == {3}


class TestMemoryAliasing:
    """Aliasing and out-of-bounds behavior of the flat word-addressed memory
    (direct unit coverage: the simulator exercises these only indirectly)."""

    def test_named_regions_never_overlap(self):
        memory = GlobalMemory()
        a = memory.alloc(16, name="a")
        b = memory.alloc_array(list(range(8)), name="b")
        c = memory.alloc(4, name="c")
        spans = sorted(
            [(a, 16), (b, 8), (c, 4)]
        )
        for (base1, size1), (base2, _) in zip(spans, spans[1:]):
            assert base1 + size1 <= base2

    def test_writes_through_one_region_leave_others_intact(self):
        memory = GlobalMemory()
        memory.alloc_array([7] * 8, name="left")
        right = memory.alloc_array([9] * 8, name="right")
        left_base, _ = memory.region("left")
        for offset in range(8):
            memory.store(left_base + offset, 100 + offset)
        assert memory.read_region("right") == [9] * 8
        assert memory.load(right) == 9

    def test_float_addresses_alias_their_truncated_cell(self):
        """Address arithmetic in kernels can produce floats; load/store
        truncate via int(), so 5.0, 5.7, and 5 are the same cell."""
        memory = GlobalMemory()
        memory.store(5.0, 42)
        assert memory.load(5) == 42
        assert memory.load(5.7) == 42
        memory.store(5.9, 43)
        assert memory.load(5) == 43

    def test_atom_add_aliases_with_plain_stores(self):
        memory = GlobalMemory()
        memory.store(3, 10)
        assert memory.atom_add(3.2, 5) == 10
        assert memory.load(3) == 15

    def test_out_of_bounds_load_reads_zero(self):
        """The flat memory has no hard bounds: addresses past every
        allocation read the fill value, never raise."""
        memory = GlobalMemory()
        base = memory.alloc(4, name="small")
        assert memory.load(base + 4) == 0
        assert memory.load(base + 1000) == 0
        assert memory.load(-1) == 0

    def test_out_of_bounds_store_does_not_corrupt_regions(self):
        memory = GlobalMemory()
        memory.alloc_array([1, 2, 3, 4], name="data")
        base, size = memory.region("data")
        memory.store(base + size + 10, 99)
        assert memory.read_region("data") == [1, 2, 3, 4]
        assert memory.load(base + size + 10) == 99

    def test_next_alloc_lands_after_oob_store_untouched(self):
        """A stray store past the bump pointer aliases with a later
        allocation's cells — the documented hazard of a flat address
        space. The allocator does not skip dirtied words."""
        memory = GlobalMemory()
        base = memory.alloc(2)
        memory.store(base + 3, 77)
        nxt = memory.alloc(4)
        assert nxt == base + 2
        assert memory.load(nxt + 1) == 77


class TestRNGStreamIndependence:
    """XorShift32 per-tid stream independence (direct unit coverage)."""

    def test_streams_differ_across_tids(self):
        seed = 2020
        sequences = [
            [XorShift32(seed, tid).next_u32() for _ in range(32)]
            for tid in range(8)
        ]
        for i in range(8):
            for j in range(i + 1, 8):
                assert sequences[i] != sequences[j], (i, j)

    def test_advancing_one_stream_leaves_others_fixed(self):
        a = XorShift32(2020, tid=0)
        b = XorShift32(2020, tid=1)
        expected_b = XorShift32(2020, tid=1).next_u32()
        for _ in range(100):
            a.next_u32()
        assert b.next_u32() == expected_b

    def test_same_tid_same_seed_is_bitwise_reproducible(self):
        rng = XorShift32(7, tid=5)
        first = [rng.next_u32() for _ in range(10)]
        replay = XorShift32(7, tid=5)
        assert [replay.next_u32() for _ in range(10)] == first

    def test_seed_changes_every_stream(self):
        tid = 3
        assert (
            [XorShift32(1, tid).next_u32() for _ in range(8)]
            != [XorShift32(2, tid).next_u32() for _ in range(8)]
        )

    def test_fork_is_independent_of_parent_continuation(self):
        parent = XorShift32(2020, tid=0)
        child = parent.fork(salt=0xABCD)
        child_draws = [child.next_u32() for _ in range(8)]
        # Re-derive: same parent state at fork time gives the same child,
        # regardless of what the parent does afterwards.
        parent2 = XorShift32(2020, tid=0)
        child2 = parent2.fork(salt=0xABCD)
        for _ in range(50):
            parent2.next_u32()
        assert [child2.next_u32() for _ in range(8)] == child_draws
