"""Compare a fresh benchmark run against the committed baseline.

CI's perf-smoke job copies the committed ``BENCH_*.json`` files aside,
re-runs the benchmarks (which rewrite the files in place), then calls::

    python benchmarks/compare.py --baseline-dir .bench-baseline \
        --fresh-dir . --tolerance 0.15 --only segment_corpus_sweep

and fails the build when a fresh speedup falls more than ``--tolerance``
below its committed baseline. Matching is by the record's ``"benchmark"``
name; records present on only one side are reported but never fail the
gate (a new benchmark has no baseline yet, and a retired one has no fresh
run). ``--only`` restricts the gate to named benchmarks — used in CI to
exclude runs whose fast configuration depends on runner core count.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_records(directory):
    """{benchmark name: record} for every BENCH_*.json in ``directory``."""
    records = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}")
            continue
        name = record.get("benchmark", path.stem.removeprefix("BENCH_"))
        records[name] = record
    return records


def compare(baseline, fresh, tolerance, only=None):
    """Returns (rows, failures). Each row is a printable comparison; a
    failure is a row whose fresh speedup regressed past the tolerance."""
    rows = []
    failures = []
    names = sorted(set(baseline) | set(fresh))
    for name in names:
        base = baseline.get(name)
        new = fresh.get(name)
        if base is None:
            rows.append((name, None, _speedup(new), "no baseline (new)"))
            continue
        if new is None:
            rows.append((name, _speedup(base), None, "no fresh run"))
            continue
        base_speedup = _speedup(base)
        new_speedup = _speedup(new)
        if base_speedup is None or new_speedup is None:
            rows.append((name, base_speedup, new_speedup, "no speedup field"))
            continue
        gated = only is None or name in only
        floor = base_speedup * (1.0 - tolerance)
        if gated and new_speedup < floor:
            status = (
                f"REGRESSION: {new_speedup:.2f}x < "
                f"{floor:.2f}x ({base_speedup:.2f}x - {tolerance:.0%})"
            )
            failures.append(name)
        elif not gated:
            status = "informational (not gated)"
        else:
            status = "ok"
        rows.append((name, base_speedup, new_speedup, status))
    return rows, failures


def _speedup(record):
    value = record.get("speedup")
    return float(value) if value is not None else None


def missing_counters(records, only=None):
    """Names of gated records whose ``counters`` block is absent or not a
    mapping. Every benchmark has written one since the telemetry PR, so a
    missing block means a truncated or hand-edited BENCH file — fail with
    a message naming the file instead of a KeyError deep in a delta."""
    bad = []
    for name in sorted(records):
        if only is not None and name not in only:
            continue
        if not isinstance(records[name].get("counters"), dict):
            bad.append(name)
    return bad


def occupancy_delta_rows(baseline, fresh, only=None):
    """Per-workload simulated-SM occupancy deltas for grid sweep records.

    Grid records carry ``"sm_occupancy": {workload: peak resident
    warps}``. A drop means the grid launch packed fewer CTAs per SM —
    e.g. a cta_dim or shared-memory change shifted the occupancy limit —
    which explains a speedup move that raw counters won't. Rows are
    ``(benchmark, workload, base, fresh, delta)``; informational only."""
    rows = []
    for name in sorted(set(baseline) & set(fresh)):
        if only is not None and name not in only:
            continue
        base_occ = baseline[name].get("sm_occupancy")
        new_occ = fresh[name].get("sm_occupancy")
        if not isinstance(base_occ, dict) or not isinstance(new_occ, dict):
            continue
        for workload in sorted(set(base_occ) | set(new_occ)):
            base_value = int(base_occ.get(workload, 0))
            new_value = int(new_occ.get(workload, 0))
            rows.append(
                (name, workload, base_value, new_value, new_value - base_value)
            )
    return rows


def _count(value):
    """Integer view of a counter value; non-numeric entries (metadata
    strings in hand-edited records, derived ratios saved as text) and
    bools count as 0 so a snapshot written by a different engine version
    still diffs instead of raising ``ValueError``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    return int(value)


def counter_delta_rows(baseline, fresh, only=None):
    """Per-layer engine-counter deltas for benchmarks present on both
    sides with a ``counters`` snapshot (written by bench_simulator since
    the telemetry PR). Rows are ``(benchmark, counter, base, fresh,
    delta)``; purely informational — counters attribute a timing
    regression to the layer whose behaviour moved (a decode-cache hit
    rate collapse, a batching rollback storm), they never gate.

    The key union means a counter layer present on only one side — e.g.
    fresh ``jit.*`` rows against a pre-JIT baseline record — renders as a
    plain delta from 0 rather than being dropped or raising."""
    rows = []
    for name in sorted(set(baseline) & set(fresh)):
        if only is not None and name not in only:
            continue
        base_counters = baseline[name].get("counters")
        new_counters = fresh[name].get("counters")
        if not isinstance(base_counters, dict) or not isinstance(
            new_counters, dict
        ):
            continue
        for counter in sorted(set(base_counters) | set(new_counters)):
            base_value = _count(base_counters.get(counter, 0))
            new_value = _count(new_counters.get(counter, 0))
            if base_value == 0 and new_value == 0:
                continue
            rows.append(
                (name, counter, base_value, new_value, new_value - base_value)
            )
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", required=True,
        help="directory holding the committed BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh-dir", required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed fractional speedup drop before failing (default 0.15)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="BENCHMARK",
        help="gate only these benchmark names (repeatable); others are "
             "compared but informational",
    )
    args = parser.parse_args(argv)

    baseline = load_records(args.baseline_dir)
    fresh = load_records(args.fresh_dir)
    if not baseline and not fresh:
        print("no BENCH_*.json records found on either side")
        return 1

    gate_only = set(args.only) if args.only else None
    bad = missing_counters(fresh, only=gate_only)
    if bad:
        for name in bad:
            print(
                f"error: fresh BENCH record '{name}' in {args.fresh_dir} "
                "has no 'counters' block — the benchmark run was truncated "
                "or the file was edited by hand; re-run the benchmark"
            )
        return 1

    rows, failures = compare(baseline, fresh, args.tolerance, only=gate_only)
    width = max(len(name) for name, *_ in rows)
    print(f"{'benchmark'.ljust(width)}  baseline     fresh     status")
    for name, base_speedup, new_speedup, status in rows:
        base_text = f"{base_speedup:.2f}x" if base_speedup is not None else "-"
        new_text = f"{new_speedup:.2f}x" if new_speedup is not None else "-"
        print(f"{name.ljust(width)}  {base_text:>8}  {new_text:>8}  {status}")

    counter_rows = counter_delta_rows(baseline, fresh, only=gate_only)
    if counter_rows:
        name_w = max(len(r[0]) for r in counter_rows)
        counter_w = max(len(r[1]) for r in counter_rows)
        print("\nper-layer engine counters (informational):")
        print(
            f"{'benchmark'.ljust(name_w)}  {'counter'.ljust(counter_w)}  "
            f"{'baseline':>12}  {'fresh':>12}  {'delta':>12}"
        )
        for name, counter, base_value, new_value, delta in counter_rows:
            print(
                f"{name.ljust(name_w)}  {counter.ljust(counter_w)}  "
                f"{base_value:>12}  {new_value:>12}  {delta:>+12}"
            )

    occupancy_rows = occupancy_delta_rows(baseline, fresh, only=gate_only)
    if occupancy_rows:
        name_w = max(len(r[0]) for r in occupancy_rows)
        app_w = max(max(len(r[1]) for r in occupancy_rows), len("workload"))
        print("\nper-SM occupancy, peak resident warps (informational):")
        print(
            f"{'benchmark'.ljust(name_w)}  {'workload'.ljust(app_w)}  "
            f"{'baseline':>10}  {'fresh':>10}  {'delta':>10}"
        )
        for name, workload, base_value, new_value, delta in occupancy_rows:
            print(
                f"{name.ljust(name_w)}  {workload.ljust(app_w)}  "
                f"{base_value:>10}  {new_value:>10}  {delta:>+10}"
            )

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%}: {', '.join(failures)}"
        )
        return 1
    print("\nOK: no gated benchmark regressed beyond the tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
