"""Joined Barrier Analysis (Section 4.2.1, Equation 1).

A barrier is *joined* at a program point P if at least one path from the
program start to P contains a ``JoinBarrier`` (BSSY) not followed by a
``WaitBarrier`` (BSYNC). Forward may-analysis:

    Gen(BB)  = JoinBarrier        Kill(BB) = WaitBarrier
    IN(BB)   = ∪ OUT(p), p ∈ preds(BB)
    OUT(BB)  = (IN(BB) − Kill(BB)) ∪ Gen(BB)

``CancelBarrier`` (BREAK) also clears membership, so it kills too; the
paper's equations omit cancels only because they are not yet inserted when
the analysis first runs. Program points are ``(block, index)`` pairs
meaning "immediately before instruction ``index``"; ``index == len(block)``
is the block's end.
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView
from repro.analysis.dataflow import solve_forward
from repro.core.primitives import barrier_name_of, is_cancel, is_join, is_wait


def _block_effects(block):
    """(gen, kill) of one block under forward joined semantics."""
    gen, kill = set(), set()
    for instr in block:
        if is_join(instr):
            name = barrier_name_of(instr)
            if name is not None:
                gen.add(name)
                kill.discard(name)
        elif is_wait(instr) or is_cancel(instr):
            name = barrier_name_of(instr)
            if name is not None:
                kill.add(name)
                gen.discard(name)
    return gen, kill


class JoinedBarriers:
    """Joined-barrier facts for one function."""

    def __init__(self, function):
        self.function = function
        view = CFGView.of_function(function)
        gen, kill = {}, {}
        for block in function.blocks:
            gen[block.name], kill[block.name] = _block_effects(block)
        self._result = solve_forward(view, gen, kill)

    def joined_in(self, block_name):
        """Barriers that may be joined at block entry."""
        return self._result.in_of(block_name)

    def joined_out(self, block_name):
        """Barriers that may be joined at block exit."""
        return self._result.out_of(block_name)

    def joined_before(self, block, index):
        """Barriers that may be joined immediately before instruction ``index``."""
        live = set(self.joined_in(block.name))
        for instr in block.instructions[:index]:
            if is_join(instr):
                name = barrier_name_of(instr)
                if name is not None:
                    live.add(name)
            elif is_wait(instr) or is_cancel(instr):
                name = barrier_name_of(instr)
                if name is not None:
                    live.discard(name)
        return frozenset(live)

    def joined_points(self, barrier):
        """All program points where ``barrier`` may be joined.

        Returns a set of (block_name, index) "before instruction" points,
        used by the conflict analysis of Section 4.3 (a live range "extends
        from the moment threads join the barrier until the barrier is
        cleared by waiting or exiting threads").
        """
        points = set()
        for block in self.function.blocks:
            joined = barrier in self.joined_in(block.name)
            for index, instr in enumerate(block.instructions):
                if joined:
                    points.add((block.name, index))
                if is_join(instr) and barrier_name_of(instr) == barrier:
                    joined = True
                elif (is_wait(instr) or is_cancel(instr)) and barrier_name_of(
                    instr
                ) == barrier:
                    joined = False
            if joined:
                points.add((block.name, len(block.instructions)))
        return points
