"""Profiler, LaunchResult, harness CLI, and error-type coverage."""

import pytest

from repro.errors import (
    AnalysisError,
    DeadlockError,
    IRError,
    ParseError,
    ReproError,
    SimulationError,
    TransformError,
    VerifierError,
    WorkloadError,
)
from repro.frontend import compile_kernel_source
from repro.harness.__main__ import main as harness_main
from repro.ir import Opcode
from repro.simt import GPUMachine, Profiler, WARP_SIZE


class TestProfiler:
    def _run(self, source, n=32):
        module = compile_kernel_source(source)
        return GPUMachine(module).launch("k", n)

    def test_full_efficiency_on_convergent_kernel(self):
        result = self._run("kernel k() { store(tid(), 1.0); }")
        assert result.simt_efficiency == 1.0

    def test_partial_warp_reduces_efficiency(self):
        result = self._run("kernel k() { store(tid(), 1.0); }", n=16)
        assert result.simt_efficiency == pytest.approx(0.5)

    def test_empty_profiler_defaults(self):
        profiler = Profiler()
        assert profiler.simt_efficiency == 1.0
        assert profiler.total_cycles == 0

    def test_opcode_counts(self):
        result = self._run("kernel k() { store(tid(), tid() + 1.0); }")
        counts = result.launch.profiler.opcode_counts if hasattr(result, "launch") else result.profiler.opcode_counts
        assert counts[Opcode.ST] == 1
        assert counts[Opcode.TID] >= 1

    def test_block_visits(self):
        result = self._run(
            "kernel k() { for i in 0..5 { let x = i; } store(0, 1.0); }", n=32
        )
        profile = result.profiler.block_profile("k", "for.head")
        assert profile.visits == 6  # 5 iterations + exit test

    def test_region_efficiency_of_unknown_block(self):
        result = self._run("kernel k() { store(tid(), 1.0); }")
        assert result.profiler.region_efficiency([("k", "ghost")]) == 1.0

    def test_summary_keys(self):
        result = self._run("kernel k() { store(tid(), 1.0); }")
        summary = result.profiler.summary()
        assert set(summary) == {
            "issued",
            "cycles",
            "simt_efficiency",
            "barrier_issues",
            "avg_active_lanes",
            "opcode_issues",
            "stall_cycles",
            "counters",
            "nonforced_picks",
        }
        assert summary["avg_active_lanes"] == pytest.approx(32.0)
        assert summary["opcode_issues"]["st"] == 1
        # No metrics attached -> empty stall attribution.
        assert summary["stall_cycles"] == {}

    def test_warp_cycles_per_warp(self):
        result = self._run("kernel k() { store(tid(), 1.0); }", n=WARP_SIZE * 2)
        assert len(result.profiler.warp_cycles) == 2


class TestLaunchResult:
    def test_retired_per_thread(self):
        module = compile_kernel_source(
            "kernel k() { if (tid() < 1) { let a = 1; let b = 2; } store(0, 1.0); }"
        )
        result = GPUMachine(module).launch("k", 2)
        retired = result.retired_per_thread()
        assert retired[0] > retired[1]

    def test_store_traces_ordering(self):
        module = compile_kernel_source(
            "kernel k() { store(tid(), 1.0); store(tid() + 100, 2.0); }"
        )
        result = GPUMachine(module).launch("k", 1)
        assert result.store_traces()[0] == [(0, 1.0), (100, 2.0)]


class TestHarnessCLI:
    def test_single_fast_figure(self, capsys):
        assert harness_main(["funccall"]) == 0
        out = capsys.readouterr().out
        assert "funccall" in out and "speedup" in out

    def test_table2_via_cli(self, capsys):
        assert harness_main(["table2"]) == 0
        assert "rsbench" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["fig99"])


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            IRError,
            ParseError,
            VerifierError,
            AnalysisError,
            TransformError,
            SimulationError,
            DeadlockError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_parse_error_location(self):
        err = ParseError("bad", line=3, column=7)
        assert "line 3" in str(err) and "column 7" in str(err)
        assert err.line == 3

    def test_deadlock_error_payload(self):
        err = DeadlockError("stuck", warp_id=2, waiting=[(0, "b0")])
        assert err.warp_id == 2
        assert err.waiting == [(0, "b0")]
