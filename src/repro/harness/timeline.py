"""Execution-timeline diagrams — the paper's Figure 1 / Figure 3(b)
cartoons, regenerated from real traces.

Render one warp's execution as a lane × time grid: each column is a slice
of the warp's timeline, each cell shows which basic block the lane spent
that slice in (``.`` = idle/waiting). Under PDOM sync the expensive block
forms a diagonal staircase (serialized execution, Figure 1a); under
Speculative Reconvergence it forms solid vertical bands (converged waves,
Figure 1b).

Traces made of cycle-stamped :class:`repro.obs.events.IssueEvent` records
(any modern tracing launch) are rendered *time-accurately*: columns are
slices of warp cycles, so variable-cost instructions (``simt/costs.py`` —
a 20-cycle load vs a 1-cycle add) occupy proportional width. Legacy
``(warp_id, function, block, lanes)`` tuples fall back to the historical
issue-index bucketing, where every instruction is one slot wide.

Requires a launch made with ``GPUMachine(module, trace=True)``.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.simt.warp import WARP_SIZE

#: Symbols assigned to blocks in first-appearance order.
_SYMBOLS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def assign_symbols(trace, warp_id=0, highlight=None):
    """Map block names to single characters, highlighted block first."""
    symbols = {}
    if highlight is not None:
        symbols[highlight] = "#"
    assigned = 0
    for wid, _function, block, _lanes in trace:
        if wid == warp_id and block not in symbols:
            symbols[block] = _SYMBOLS[assigned % len(_SYMBOLS)]
            assigned += 1
    return symbols


def _issue_grid(events, columns, lanes):
    """Legacy bucketing: columns are equal counts of issue slots."""
    per_column = len(events) / columns
    tallies = [[{} for _ in range(columns)] for _ in range(lanes)]
    for column in range(columns):
        start = int(column * per_column)
        stop = max(start + 1, int((column + 1) * per_column))
        for _wid, _function, block, active in events[start:stop]:
            for lane in active:
                if lane < lanes:
                    tally = tallies[lane][column]
                    tally[block] = tally.get(block, 0) + 1
    return tallies, per_column, "issue slots"


def _cycle_grid(events, columns, lanes):
    """Time-accurate bucketing: columns are equal slices of warp cycles,
    and each issue is weighted by its overlap with the column."""
    t0 = events[0].ts
    t1 = max(e.ts + e.dur for e in events)
    total = max(t1 - t0, 1)
    per_column = total / columns
    tallies = [[{} for _ in range(columns)] for _ in range(lanes)]
    for event in events:
        start = event.ts - t0
        # Zero-duration issues still mark their column (weight epsilon).
        dur = event.dur if event.dur > 0 else 1e-9
        first = min(int(start / per_column), columns - 1)
        last = min(int(math.ceil((start + dur) / per_column)), columns)
        for column in range(first, max(last, first + 1)):
            lo = column * per_column
            weight = min(start + dur, lo + per_column) - max(start, lo)
            if weight <= 0:
                continue
            for lane in event.lanes:
                if lane < lanes:
                    tally = tallies[lane][column]
                    tally[event.block] = tally.get(event.block, 0) + weight
    return tallies, per_column, "cycles"


def render_timeline(
    launch,
    warp_id=0,
    width=96,
    lanes=WARP_SIZE,
    highlight=None,
    legend=True,
    by_cycles="auto",
):
    """Render a lane-by-time ASCII diagram for one warp.

    Args:
        launch: a LaunchResult from a tracing machine.
        width: number of time columns.
        highlight: block name drawn as ``#`` (e.g. the Expensive() block).
        by_cycles: True for time-accurate columns (needs cycle-stamped
            events), False for legacy issue-index bucketing, "auto"
            (default) picks time-accurate whenever the trace supports it.
    """
    trace = launch.profiler.trace
    if trace is None:
        raise ReproError(
            "timeline needs a trace; launch with GPUMachine(..., trace=True)"
        )
    events = [e for e in trace if e[0] == warp_id]
    if not events:
        raise ReproError(f"no trace events for warp {warp_id}")
    cycle_stamped = hasattr(events[0], "ts")
    if by_cycles == "auto":
        by_cycles = cycle_stamped
    elif by_cycles and not cycle_stamped:
        raise ReproError(
            "by_cycles=True needs cycle-stamped IssueEvents; this trace "
            "holds legacy tuples"
        )
    symbols = assign_symbols(events, warp_id=warp_id, highlight=highlight)
    if by_cycles:
        total = max(e.ts + e.dur for e in events) - events[0].ts
        columns = min(width, max(total, 1))
        tallies, per_column, unit = _cycle_grid(events, columns, lanes)
    else:
        columns = min(width, len(events))
        tallies, per_column, unit = _issue_grid(events, columns, lanes)

    grid = [["." for _ in range(columns)] for _ in range(lanes)]
    for lane in range(lanes):
        for column in range(columns):
            tally = tallies[lane][column]
            if tally:
                # Majority block per lane within the bucket.
                block = max(tally, key=tally.get)
                grid[lane][column] = symbols.get(block, "?")

    lines = []
    for lane in range(lanes):
        lines.append(f"T{lane:02d} |" + "".join(grid[lane]) + "|")
    if legend:
        lines.append("")
        lines.append("time ->  (each column ~ "
                     f"{per_column:.1f} {unit}; '.' = idle/waiting)")
        for block, symbol in symbols.items():
            lines.append(f"  {symbol} = {block}")
    return "\n".join(lines)


def convergence_series(launch, block, function=None, warp_id=0):
    """Active-lane counts of every visit to ``block`` (a numeric view of
    the same story: PDOM gives small numbers, SR gives wide waves)."""
    trace = launch.profiler.trace
    if trace is None:
        raise ReproError("convergence_series needs a tracing launch")
    series = []
    for wid, fn, blk, lanes in trace:
        if wid == warp_id and blk == block and (function is None or fn == function):
            series.append(len(lanes))
    return series
