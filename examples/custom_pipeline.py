#!/usr/bin/env python
"""Drive the pass manager directly: custom pipelines via repro.tools.opt.

The compiler is a registry of named passes over a declarative pipeline
(``docs/performance.md#pipelines``). This example builds a divergent
kernel, then uses the ``repro.tools.opt`` driver — the same entry point
as ``python -m repro.tools.opt`` — to:

1. list the registered passes,
2. run the stock ``sr`` pipeline and show per-pass spans + analysis
   cache stats,
3. run a *custom* pipeline that swaps dynamic deconfliction for static
   and skips the optimizer,
4. stop mid-pipeline to inspect the IR right after PDOM insertion, and
5. record a golden per-pass trace, then bisect a deviating pipeline
   against it — the debugging loop for "which pass changed the IR?".

Run: ``python examples/custom_pipeline.py``
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.tools.opt import main as opt  # noqa: E402

KERNEL = """
kernel demo() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..12 {
        if (hash01(t * 31.0 + i) < 0.25) {
            label L1: acc = acc + 1.0;
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
        }
    }
    store(t, acc);
}
"""


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    with tempfile.TemporaryDirectory() as tmp:
        kernel = os.path.join(tmp, "demo.srk")
        with open(kernel, "w") as handle:
            handle.write(KERNEL)

        banner("registered passes")
        opt(["--list-passes"])

        banner("stock sr pipeline, spans + analysis cache stats")
        opt([kernel, "--mode", "sr", "--report", "--stats"])

        banner("custom pipeline: static deconfliction")
        opt([
            kernel,
            "--pipeline",
            "collect-predictions,pdom-sync,sr-insert,deconflict[static],"
            "strip-directives,allocate,verify",
            "--stats",
        ])

        banner("stop after pdom-sync (IR mid-compilation)")
        opt([kernel, "--stop-after", "pdom-sync", "--emit-ir"])

        banner("record a golden trace, bisect a deviating pipeline")
        trace = os.path.join(tmp, "trace.json")
        opt([kernel, "--record-trace", trace])
        status = opt([
            kernel,
            "--pipeline",
            "collect-predictions,pdom-sync,sr-insert,deconflict[static],"
            "strip-directives,allocate,verify",
            "--bisect",
            trace,
        ])
        print(f"(bisect exit status: {status})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
