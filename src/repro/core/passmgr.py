"""Pass-manager infrastructure for the reconvergence compiler.

The Section 4 pass suite used to be one hard-wired ``compile()`` method;
this module turns it into the architecture every open GPU compiler uses:

* a :class:`Pass` protocol (module- and function-level) with a global
  :class:`PassRegistry` of named passes (``@register_pass``);
* an :class:`AnalysisManager` that caches expensive analyses (divergence,
  CFG views, post-dominators, loops, call graph) keyed by the same
  structure tokens as :mod:`repro.core.program_cache`, invalidated after
  each pass by the pass's :meth:`Pass.preserves` declaration;
* a textual pipeline syntax —
  ``optimize,autodetect,pdom-sync,sr-insert,deconflict[dynamic],allocate,verify``
  — so each compile mode is a declarative description, parsed by
  :func:`parse_pipeline` and executed by :class:`PassManager`;
* the debugging toolkit the monolith could not support:
  ``print_after_all`` / ``stop_after`` / ``verify_each`` hooks (also
  reachable via ``REPRO_PRINT_AFTER_ALL`` / ``REPRO_STOP_AFTER`` /
  ``REPRO_VERIFY_EACH_PASS``), per-pass :mod:`repro.obs` spans, analysis
  cache hit/miss counters on every :class:`~repro.core.pipeline.CompileReport`,
  and a pass bisector (:func:`record_pipeline_trace` / :func:`bisect_pipeline`)
  that finds the first pass whose output IR diverges from a golden trace.

The registered pass implementations live in :mod:`repro.core.passes`;
:class:`~repro.core.pipeline.ReconvergenceCompiler` is now a thin façade
that resolves mode → pipeline description and runs a PassManager.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

from repro.errors import TransformError
from repro.ir.function import structure_token
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.spans import SpanRecorder

__all__ = [
    "ALL_ANALYSES",
    "AnalysisManager",
    "BisectResult",
    "FunctionPass",
    "PASS_REGISTRY",
    "Pass",
    "PassContext",
    "PassManager",
    "PassRegistry",
    "PassSpec",
    "PipelineError",
    "bisect_pipeline",
    "default_pipeline",
    "format_pipeline",
    "list_passes",
    "parse_pipeline",
    "record_pipeline_trace",
    "register_analysis",
    "register_pass",
]


class PipelineError(TransformError):
    """A malformed pipeline description or unknown pass name."""


# ----------------------------------------------------------------------
# Analyses
# ----------------------------------------------------------------------

#: name -> callable(module) producing the analysis result.
ANALYSES = {}

#: Sentinel for :meth:`Pass.preserves`: the pass invalidates nothing.
ALL_ANALYSES = "all"


def register_analysis(name, compute):
    """Register a module-level analysis under ``name``."""
    if name in ANALYSES:
        raise PipelineError(f"duplicate analysis name {name!r}")
    ANALYSES[name] = compute
    return compute


def _compute_divergence(module):
    from repro.analysis.divergence import analyze_module_divergence

    return analyze_module_divergence(module)


def _compute_cfg(module):
    from repro.analysis.cfg_utils import CFGView

    return {fn.name: CFGView.of_function(fn) for fn in module}


def _compute_postdominators(module):
    from repro.analysis.cfg_utils import CFGView
    from repro.analysis.dominators import compute_post_dominators

    return {
        fn.name: compute_post_dominators(CFGView.of_function(fn))
        for fn in module
    }


def _compute_loops(module):
    from repro.analysis.cfg_utils import CFGView
    from repro.analysis.loops import compute_loops

    return {fn.name: compute_loops(CFGView.of_function(fn)) for fn in module}


def _compute_callgraph(module):
    from repro.analysis.callgraph import call_graph

    return call_graph(module)


def _compute_memeffects(module):
    from repro.analysis.memeffects import analyze_module

    return analyze_module(module)


register_analysis("divergence", _compute_divergence)
register_analysis("cfg", _compute_cfg)
register_analysis("postdominators", _compute_postdominators)
register_analysis("loops", _compute_loops)
register_analysis("callgraph", _compute_callgraph)
register_analysis("memeffects", _compute_memeffects)


class AnalysisManager:
    """Caches module analyses across passes.

    Each cache entry pairs the result with the module's
    :func:`~repro.ir.function.structure_token` at compute time. A lookup
    whose stored token no longer matches recomputes (out-of-band mutation
    safety net, same idiom as :class:`~repro.core.program_cache.ProgramCache`).
    The primary invalidation channel is :meth:`invalidate`, called by the
    :class:`PassManager` after each pass with the pass's ``preserves()``
    set: preserved entries are re-stamped with the current token, all
    others are dropped.
    """

    def __init__(self, module, spans=None):
        self.module = module
        self._cache = {}          # name -> (structure token, result)
        self._spans = spans
        self.hits = 0
        self.misses = 0
        self.invalidated = 0

    def get(self, name):
        """The cached analysis result for ``name``, computing on miss."""
        try:
            compute = ANALYSES[name]
        except KeyError:
            raise PipelineError(
                f"unknown analysis {name!r}; registered: {sorted(ANALYSES)}"
            ) from None
        token = structure_token(self.module)
        entry = self._cache.get(name)
        if entry is not None and entry[0] == token:
            self.hits += 1
            ENGINE_COUNTERS.passmgr_analysis_hit += 1
            return entry[1]
        self.misses += 1
        ENGINE_COUNTERS.passmgr_analysis_recompute += 1
        if self._spans is not None:
            with self._spans.span(f"analysis:{name}"):
                result = compute(self.module)
        else:
            result = compute(self.module)
        self._cache[name] = (token, result)
        return result

    def cached(self, name):
        """The cached result for ``name`` (None if absent/stale); no compute."""
        token = structure_token(self.module)
        entry = self._cache.get(name)
        if entry is not None and entry[0] == token:
            return entry[1]
        return None

    def invalidate(self, preserved=frozenset()):
        """Drop every entry not named in ``preserved``.

        ``preserved`` may be :data:`ALL_ANALYSES`; preserved entries are
        re-stamped with the module's current structure token (the pass
        vouches the result is still valid even if the token moved).
        """
        token = structure_token(self.module)
        if preserved == ALL_ANALYSES:
            for name, (_, result) in list(self._cache.items()):
                self._cache[name] = (token, result)
            return
        for name in list(self._cache):
            if name in preserved:
                self._cache[name] = (token, self._cache[name][1])
            else:
                del self._cache[name]
                self.invalidated += 1

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
        }


# ----------------------------------------------------------------------
# Pass protocol and registry
# ----------------------------------------------------------------------


class Pass:
    """A named module transform.

    Subclasses set :attr:`name` (registry key), :attr:`description` (one
    line, shown by ``--list-passes``), and optionally :attr:`options`
    (accepted option names) and :attr:`positional_option` (the option a
    bare ``pass[value]`` token maps onto). Options arrive as constructor
    keyword arguments with dashes normalized to underscores.
    """

    name = None
    description = ""
    options = ()
    positional_option = None

    def __init__(self, **options):
        unknown = set(options) - {o.replace("-", "_") for o in self.options}
        if unknown:
            raise PipelineError(
                f"pass {self.name!r}: unknown option(s) {sorted(unknown)}; "
                f"accepts {sorted(self.options) or 'none'}"
            )
        #: Exactly the options that were explicitly supplied (passes that
        #: merge with context-level defaults need to know the difference).
        self.option_values = dict(options)
        for key, value in options.items():
            setattr(self, key, value)

    def run(self, module, ctx):
        """Transform ``module`` in place; shared state lives on ``ctx``."""
        raise NotImplementedError

    def preserves(self):
        """Analyses still valid after this pass ran.

        Return :data:`ALL_ANALYSES` for read-only / attr-only passes, a
        set of analysis names, or (default) the empty set — invalidate
        everything, the conservative choice for structural rewrites.
        """
        return frozenset()

    def describe(self):
        return f"{self.name}: {self.description}"


class FunctionPass(Pass):
    """A pass applied independently to every function of the module."""

    def run(self, module, ctx):
        for function in module:
            self.run_on_function(function, module, ctx)

    def run_on_function(self, function, module, ctx):
        raise NotImplementedError


class PassRegistry:
    """Name -> pass class mapping with deterministic listing order."""

    def __init__(self):
        self._passes = {}

    def add(self, pass_cls):
        name = pass_cls.name
        if not name:
            raise PipelineError(f"pass class {pass_cls.__name__} has no name")
        if name in self._passes:
            raise PipelineError(f"duplicate pass name {name!r}")
        self._passes[name] = pass_cls
        return pass_cls

    def get(self, name):
        try:
            return self._passes[name]
        except KeyError:
            raise PipelineError(
                f"unknown pass {name!r}; registered: {sorted(self._passes)}"
            ) from None

    def __contains__(self, name):
        return name in self._passes

    def names(self):
        return sorted(self._passes)

    def create(self, name, options=None):
        return self.get(name)(**(options or {}))

    def describe(self):
        """One line per registered pass, sorted by name."""
        lines = []
        for name in self.names():
            cls = self._passes[name]
            doc = cls.description or "(no description)"
            opts = ""
            if cls.options:
                opts = "  [" + ",".join(sorted(cls.options)) + "]"
            lines.append(f"{name:<22} {doc}{opts}")
        return "\n".join(lines)


#: The process-wide registry; populated by :mod:`repro.core.passes`.
PASS_REGISTRY = PassRegistry()


def register_pass(cls):
    """Class decorator adding a pass to :data:`PASS_REGISTRY`."""
    return PASS_REGISTRY.add(cls)


def list_passes():
    """The registry listing used by ``--list-passes`` (imports the
    standard passes first so the listing is complete)."""
    import repro.core.passes  # noqa: F401  (registers the standard suite)

    return PASS_REGISTRY.describe()


# ----------------------------------------------------------------------
# Pipeline descriptions
# ----------------------------------------------------------------------


def _parse_option_value(text):
    """Pipeline option literals: int, float, true/false, else string."""
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


@dataclass(frozen=True)
class PassSpec:
    """One parsed pipeline element: a pass name plus its options."""

    name: str
    options: tuple = ()    # sorted (key, value) pairs

    def options_dict(self):
        return {key.replace("-", "_"): value for key, value in self.options}

    def describe(self):
        if not self.options:
            return self.name
        parts = []
        for key, value in self.options:
            parts.append(key if value is True else f"{key}={value}")
        return f"{self.name}[{','.join(parts)}]"


def parse_pipeline(text):
    """Parse ``"a,b[opt],c[k=v,k2=v2]"`` into a list of :class:`PassSpec`.

    Bare bracket tokens map onto the pass's ``positional_option`` (e.g.
    ``deconflict[static]`` ≡ ``deconflict[strategy=static]``).
    """
    import repro.core.passes  # noqa: F401  (registers the standard suite)

    specs = []
    text = text.strip()
    if not text:
        return specs
    index = 0
    length = len(text)
    while index < length:
        end = index
        while end < length and text[end] not in ",[":
            end += 1
        name = text[index:end].strip()
        if not name:
            raise PipelineError(f"empty pass name in pipeline {text!r}")
        options = []
        index = end
        if index < length and text[index] == "[":
            close = text.find("]", index)
            if close < 0:
                raise PipelineError(f"unclosed '[' in pipeline {text!r}")
            body = text[index + 1 : close]
            cls = PASS_REGISTRY.get(name)
            for item in filter(None, (s.strip() for s in body.split(","))):
                if "=" in item:
                    key, _, value = item.partition("=")
                    options.append((key.strip(), _parse_option_value(value.strip())))
                else:
                    if cls.positional_option is None:
                        raise PipelineError(
                            f"pass {name!r} takes no positional option "
                            f"(got {item!r})"
                        )
                    options.append((cls.positional_option, _parse_option_value(item)))
            index = close + 1
        else:
            PASS_REGISTRY.get(name)   # validate the name eagerly
        specs.append(PassSpec(name=name, options=tuple(sorted(options))))
        if index < length:
            if text[index] != ",":
                raise PipelineError(
                    f"expected ',' after {name!r} in pipeline {text!r}"
                )
            index += 1
    return specs


def format_pipeline(specs):
    """The canonical textual form of a parsed pipeline."""
    return ",".join(spec.describe() for spec in specs)


def default_pipeline():
    """The process-wide pipeline override (``REPRO_PIPELINE``), or None."""
    return os.environ.get("REPRO_PIPELINE") or None


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class PassContext:
    """Shared state threaded through one pipeline execution."""

    report: object = None            # CompileReport
    namer: object = None             # BarrierNamer shared across passes
    analyses: AnalysisManager = None
    spans: SpanRecorder = None
    mode: str = "sr"
    threshold: object = None
    auto_options: dict = None
    deconfliction: str = "dynamic"
    assume_all_divergent: bool = False
    predictions_by_fn: dict = field(default_factory=dict)
    sr_barriers_by_fn: dict = field(default_factory=dict)

    def __post_init__(self):
        # Standalone PassManager runs (repro.tools.opt, the bisector)
        # build a bare PassContext; give them a live report and namer so
        # every registered pass can run unmodified.
        if self.report is None:
            from repro.core.pipeline import CompileReport

            self.report = CompileReport(mode=self.mode)
        if self.namer is None:
            from repro.core.primitives import BarrierNamer

            self.namer = BarrierNamer()


def _env_flag(name):
    return os.environ.get(name, "").lower() in ("1", "true", "yes", "on")


class PassManager:
    """Executes a parsed pipeline over a module.

    Debug hooks (each also has an environment default so any compile in
    the process can be inspected without plumbing flags):

    * ``verify_each`` / ``REPRO_VERIFY_EACH_PASS`` — run the IR verifier
      after every pass and fail fast at the pass that broke the module;
    * ``print_after_all`` / ``REPRO_PRINT_AFTER_ALL`` — dump the module
      IR after every pass (to ``print_stream``, default stderr);
    * ``stop_after`` / ``REPRO_STOP_AFTER`` — halt the pipeline after the
      named pass (first occurrence), leaving the module mid-compilation;
    * ``after_pass`` — callback ``(spec, pass_obj, module)`` run after
      each pass (the bisector and snapshot tools hook in here).
    """

    def __init__(
        self,
        pipeline,
        verify_each=None,
        print_after_all=None,
        stop_after=None,
        print_stream=None,
        after_pass=None,
    ):
        if isinstance(pipeline, str):
            pipeline = parse_pipeline(pipeline)
        self.specs = list(pipeline)
        if verify_each is None:
            verify_each = _env_flag("REPRO_VERIFY_EACH_PASS")
        if print_after_all is None:
            print_after_all = _env_flag("REPRO_PRINT_AFTER_ALL")
        if stop_after is None:
            stop_after = os.environ.get("REPRO_STOP_AFTER") or None
        self.verify_each = verify_each
        self.print_after_all = print_after_all
        self.stop_after = stop_after
        self.print_stream = print_stream
        self.after_pass = after_pass

    def run(self, module, ctx=None):
        """Run every pass in order; returns the (mutated) module.

        The context's span recorder gets one span per pass (named after
        the pass), and the analysis manager is invalidated after each
        pass according to its ``preserves()`` declaration.
        """
        ctx = ctx or PassContext()
        if ctx.spans is None:
            ctx.spans = SpanRecorder()
        if ctx.analyses is None:
            ctx.analyses = AnalysisManager(module, spans=ctx.spans)
        import repro.core.passes  # noqa: F401  (registers the standard suite)

        for spec in self.specs:
            pass_obj = PASS_REGISTRY.create(spec.name, spec.options_dict())
            with ctx.spans.span(spec.name, module):
                pass_obj.run(module, ctx)
            ctx.analyses.invalidate(pass_obj.preserves())
            if self.verify_each:
                try:
                    verify_module(module)
                except Exception as exc:
                    raise TransformError(
                        f"IR verification failed after pass "
                        f"{spec.describe()!r}: {exc}"
                    ) from exc
            if self.print_after_all:
                stream = self.print_stream or sys.stderr
                print(f"; IR after {spec.describe()}", file=stream)
                print(format_module(module), file=stream)
            if self.after_pass is not None:
                self.after_pass(spec, pass_obj, module)
            if self.stop_after is not None and spec.name == self.stop_after:
                break
        return module


# ----------------------------------------------------------------------
# Pass bisection: find the first pass diverging from a golden trace
# ----------------------------------------------------------------------


@dataclass
class BisectResult:
    """Outcome of :func:`bisect_pipeline`."""

    divergent: bool
    pass_name: str = None        # first diverging pass (canonical spec text)
    pass_index: int = None
    reason: str = None           # "ir-differs" | "missing-pass" | "extra-pass"

    def describe(self):
        if not self.divergent:
            return "pipelines agree after every pass"
        return (
            f"first divergence after pass #{self.pass_index} "
            f"({self.pass_name}): {self.reason}"
        )


def record_pipeline_trace(module, pipeline, ctx=None):
    """Run ``pipeline`` on a clone of ``module``; return the golden trace.

    The trace is a list of ``{"pass": spec, "ir": text}`` records — the
    formatted module after each pass — suitable for JSON storage and for
    :func:`bisect_pipeline`.
    """
    trace = []

    def snapshot(spec, pass_obj, mod):
        trace.append({"pass": spec.describe(), "ir": format_module(mod)})

    manager = PassManager(pipeline, after_pass=snapshot)
    manager.run(module.clone(), ctx)
    return trace


def bisect_pipeline(module, pipeline, golden_trace, ctx=None):
    """Find the first pass whose output IR diverges from ``golden_trace``.

    ``golden_trace`` is the record list produced by
    :func:`record_pipeline_trace` (possibly loaded from JSON, possibly
    recorded on another machine or an older build). Runs ``pipeline`` on
    a clone of ``module``, comparing the formatted IR after each pass
    against the golden record at the same position, and stops at the
    first mismatch. Returns a :class:`BisectResult`.
    """
    state = {"result": None, "index": 0}

    def compare(spec, pass_obj, mod):
        if state["result"] is not None:
            return
        index = state["index"]
        state["index"] += 1
        text = spec.describe()
        if index >= len(golden_trace):
            state["result"] = BisectResult(
                divergent=True, pass_name=text, pass_index=index,
                reason="extra-pass (golden trace ends earlier)",
            )
            return
        golden = golden_trace[index]
        if golden["pass"] != text:
            state["result"] = BisectResult(
                divergent=True, pass_name=text, pass_index=index,
                reason=f"pipeline mismatch (golden ran {golden['pass']!r})",
            )
            return
        if golden["ir"] != format_module(mod):
            state["result"] = BisectResult(
                divergent=True, pass_name=text, pass_index=index,
                reason="ir-differs",
            )

    manager = PassManager(pipeline, after_pass=compare)
    manager.run(module.clone(), ctx)
    if state["result"] is not None:
        return state["result"]
    if state["index"] < len(golden_trace):
        missing = golden_trace[state["index"]]["pass"]
        return BisectResult(
            divergent=True, pass_name=missing, pass_index=state["index"],
            reason="missing-pass (golden trace continues)",
        )
    return BisectResult(divergent=False)
