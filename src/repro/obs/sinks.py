"""Pluggable event sinks.

The simulator emits :mod:`repro.obs.events` into a sink. The default is
:data:`NULL_SINK`, whose ``enabled`` flag is ``False`` — every emission
site guards on that flag, so a disabled launch allocates no event objects
and pays one attribute check per issue.

Sinks receive *every* event kind (issues, divergence, barrier traffic,
reconvergence); the profiler's ``trace`` list, by contrast, keeps only
issue events for the legacy timeline API.
"""

from __future__ import annotations

__all__ = ["EventSink", "NullSink", "ListSink", "CallbackSink", "NULL_SINK"]


class EventSink:
    """Receives simulator events; subclass and override :meth:`emit`."""

    #: emission sites skip event construction entirely when False
    enabled = True

    def emit(self, event):
        raise NotImplementedError

    def close(self):
        """Flush/teardown hook; the default does nothing."""


class NullSink(EventSink):
    """Discards everything; ``enabled`` is False so nothing is built."""

    enabled = False

    def emit(self, event):  # pragma: no cover - guarded out by ``enabled``
        pass


#: Shared default instance (sinks are stateless unless they collect).
NULL_SINK = NullSink()


class ListSink(EventSink):
    """Collects events in memory (the trace CLI and tests use this)."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)

    def of_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class CallbackSink(EventSink):
    """Forwards every event to a callable (streaming consumers)."""

    def __init__(self, fn):
        self._fn = fn

    def emit(self, event):
        self._fn(event)
