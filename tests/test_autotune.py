"""Threshold auto-tuning tests (the paper's stated future work)."""

import pytest

from repro.core import tune_threshold, tune_workload
from repro.workloads import get_workload


class TestTuneThreshold:
    def test_finds_minimum_of_synthetic_curve(self):
        # A V-shaped cost curve with minimum at threshold 11.
        def run(threshold):
            k = 32 if threshold is None else threshold
            return 1000 + abs(k - 11) * 10

        result = tune_threshold(run, baseline_cycles=1500)
        assert result.best_threshold == 11
        assert result.profitable
        assert result.best_speedup == pytest.approx(1500 / 1000)

    def test_handles_monotone_curve(self):
        def run(threshold):
            k = 32 if threshold is None else threshold
            return 2000 - k * 10  # best at the hard end

        result = tune_threshold(run, baseline_cycles=2000)
        assert result.best_threshold in (None, 31)

    def test_reports_all_evaluations(self):
        calls = []

        def run(threshold):
            calls.append(threshold)
            return 100

        result = tune_threshold(run, baseline_cycles=100)
        assert set(result.evaluations) == set(calls)
        assert len(calls) == len(set(calls))  # memoized, no repeats

    def test_unprofitable_detected(self):
        result = tune_threshold(lambda k: 500, baseline_cycles=400)
        assert not result.profitable


class TestTuneWorkload:
    def test_xsbench_tunes_low(self):
        result = tune_workload(get_workload("xsbench", n_tasks=128))
        assert result.best_threshold is not None
        assert result.best_threshold <= 16
        assert result.profitable

    def test_pathtracer_tunes_high(self):
        result = tune_workload(get_workload("pathtracer", samples_per_thread=5))
        best = 32 if result.best_threshold is None else result.best_threshold
        assert best >= 20
        assert result.profitable

    def test_tuned_beats_or_matches_user_choice(self):
        workload = get_workload("rsbench", n_tasks=160)
        result = tune_workload(workload)
        user = workload.run(mode="sr")  # the workload's own sr_threshold
        assert result.best_cycles <= user.cycles * 1.02
