"""The four synchronization primitives of Table 1, as IR emission helpers.

=================  ==========  ======================================
Paper primitive    Volta insn  Here
=================  ==========  ======================================
JoinBarrier        BSSY        ``bssy`` with ``role="join"``
WaitBarrier        BSYNC       ``bsync`` (or ``bsync.soft``) ``role="wait"``
CancelBarrier      BREAK       ``bbreak`` with ``role="cancel"``
RejoinBarrier      BSSY        ``bssy`` with ``role="rejoin"``
=================  ==========  ======================================

The ``role`` attribute is provenance only; the simulator executes the
underlying opcode. A :class:`BarrierNamer` hands out unique abstract barrier
names which the allocation pass later maps onto the 16 physical Volta
barrier registers.
"""

from __future__ import annotations

from repro.ir.instructions import Barrier, Imm, Instruction, Opcode

ROLE_JOIN = "join"
ROLE_WAIT = "wait"
ROLE_REJOIN = "rejoin"
ROLE_CANCEL = "cancel"


def join_barrier(barrier, origin):
    """JoinBarrier<barrier> — threads expect to wait at a later point."""
    return Instruction(
        Opcode.BSSY, operands=[Barrier(barrier)], attrs={"role": ROLE_JOIN, "origin": origin}
    )


def wait_barrier(barrier, origin):
    """WaitBarrier<barrier> — park until all participants arrive."""
    return Instruction(
        Opcode.BSYNC, operands=[Barrier(barrier)], attrs={"role": ROLE_WAIT, "origin": origin}
    )


def wait_barrier_soft(barrier, threshold, origin):
    """Soft WaitBarrier — proceed once ``threshold`` threads collected (§4.6)."""
    return Instruction(
        Opcode.BSYNCSOFT,
        operands=[Barrier(barrier), Imm(int(threshold))],
        attrs={"role": ROLE_WAIT, "origin": origin},
    )


def rejoin_barrier(barrier, origin):
    """RejoinBarrier<barrier> — re-enter a barrier cleared by a wait."""
    return Instruction(
        Opcode.BSSY,
        operands=[Barrier(barrier)],
        attrs={"role": ROLE_REJOIN, "origin": origin},
    )


def cancel_barrier(barrier, origin):
    """CancelBarrier<barrier> — withdraw so others do not wait forever."""
    return Instruction(
        Opcode.BBREAK,
        operands=[Barrier(barrier)],
        attrs={"role": ROLE_CANCEL, "origin": origin},
    )


class BarrierNamer:
    """Allocates unique abstract barrier names within one compilation."""

    def __init__(self, prefix="b"):
        self.prefix = prefix
        self._counter = 0

    def fresh(self, hint=None):
        name = f"{self.prefix}{self._counter}"
        if hint:
            name = f"{hint}.{self._counter}"
        self._counter += 1
        return name


def barrier_name_of(instr):
    """Literal barrier name of a barrier op, or None for register-indirect."""
    operand = instr.barrier_operand()
    return operand.name if isinstance(operand, Barrier) else None


def is_join(instr):
    return instr.opcode is Opcode.BSSY


def is_wait(instr):
    return instr.opcode in (Opcode.BSYNC, Opcode.BSYNCSOFT)


def is_cancel(instr):
    return instr.opcode is Opcode.BBREAK
