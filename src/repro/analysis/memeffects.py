"""Memory-effect analysis: which ``GlobalMemory`` addresses a kernel touches.

The warp batcher (:mod:`repro.simt.batch`) may only advance several live
warps a whole fused segment per rotation turn when no interleaving of
those segments can change an observable value. The only cross-warp
coupling channels in the simulator are global memory and the shared
scheduler counter (which the batcher keeps honest via ``consume``), so
the question reduces to: *can two warps' memory footprints overlap?*

This module answers it with an abstract interpretation of the kernel
over a small affine-address domain. Every abstract value is

    ``base + ct * tid + cw * warpid + X``

where ``base`` is a kernel parameter (compile time) or a concrete number
(launch time), ``ct``/``cw`` are non-negative coefficients, and ``X`` is
an integer-strided interval ``{lo + k * step} ∩ [lo, hi]`` (``step == 0``
means a dense, possibly fractional interval). The stride component is
what proves the corpus' task-loop pattern safe: a counter that starts at
``tid`` and advances by ``n_threads`` keeps ``ct == 1`` with offsets
strided by ``n_threads``, so distinct threads can never alias even
though the interval itself widens to infinity.

Two entry points share the interpreter:

* :func:`analyze_module` — compile-time summary with parameters kept
  symbolic. Registered as the ``"memeffects"`` analysis (cached by the
  pass manager's :class:`~repro.core.passmgr.AnalysisManager`) and
  surfaced on ``CompileReport.memory_effects`` by the ``mem-effects``
  pass. Computed addresses degrade to the explicit top ``"unknown"``.
* :func:`classify_launch` — launch-time classification with concrete
  kernel arguments substituted for parameters, returning ``"disjoint"``
  when *no* two threads of *different* warps can touch a common address
  in a conflicting way, else ``"guarded"``. Results are memoized per
  module (weakly, validated by the structure token) and per
  ``(kernel, args, n_threads)``.

Soundness notes. Addresses are truncated with ``int()`` at the memory
interface, so resolved intervals are widened to integer envelopes and
every injectivity rule additionally requires non-negative bounds (for
``x >= 0``, ``int`` is ``floor`` and a step of ``>= 1`` keeps truncated
addresses distinct). ``atom_add`` sites count as both read and write.
A call to any function that (transitively) contains a memory op makes
the kernel *opaque*: summaries record it and classification returns
``"guarded"``.
"""

from __future__ import annotations

import math
import weakref
from collections import deque
from dataclasses import dataclass

from repro.ir.function import structure_token
from repro.ir.instructions import Imm, Opcode, Reg

WARP_SIZE = 32

_INF = math.inf

# Sentinel base for "could be anything" (top of the base component).
_TOP_BASE = object()

#: Blocks are re-joined at most this many times before bounds widen to
#: infinity (the stride component survives widening, see ``_widen``).
_WIDEN_AFTER = 4

__all__ = [
    "AccessSite",
    "KernelEffects",
    "SHARED_REGION",
    "analyze_module",
    "classify_grid",
    "classify_launch",
    "clear_launch_cache",
]

#: Region name reported for per-CTA shared-memory access sites.
SHARED_REGION = "<shared>"


class _AbsVal:
    """``base + ct*tid + cw*warpid + {lo + k*step} ∩ [lo, hi]``."""

    __slots__ = ("base", "ct", "cw", "lo", "hi", "step")

    def __init__(self, base, ct, cw, lo, hi, step):
        self.base = base
        self.ct = ct
        self.cw = cw
        self.lo = lo
        self.hi = hi
        self.step = step

    def __eq__(self, other):
        if not isinstance(other, _AbsVal):
            return NotImplemented
        return (
            self.base is other.base
            or self.base == other.base
        ) and (
            self.ct == other.ct
            and self.cw == other.cw
            and self.lo == other.lo
            and self.hi == other.hi
            and self.step == other.step
        )

    def __hash__(self):
        return hash((id(self.base) if self.base is _TOP_BASE else self.base,
                     self.ct, self.cw, self.lo, self.hi, self.step))

    def __repr__(self):
        base = "?" if self.base is _TOP_BASE else self.base
        return (f"AbsVal(base={base}, ct={self.ct}, cw={self.cw}, "
                f"[{self.lo}, {self.hi}] step {self.step})")

    @property
    def is_top(self):
        return self.base is _TOP_BASE

    @property
    def is_point(self):
        return self.lo == self.hi

    @property
    def pure(self):
        """No symbolic base and no thread/warp dependence."""
        return self.base is None and self.ct == 0 and self.cw == 0


TOP = _AbsVal(_TOP_BASE, 0, 0, -_INF, _INF, 0)


def _point(value):
    """Abstract a known numeric constant."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return TOP
    return _AbsVal(None, 0, 0, value, value, 0)


def _interval(lo, hi, step=0):
    return _AbsVal(None, 0, 0, lo, hi, step)


def _is_int(x):
    return isinstance(x, int) or (isinstance(x, float) and x.is_integer())


def _residue_step(val):
    """The stride usable for congruence math, or None when the value
    carries no residue information (dense interval)."""
    if val.step > 0:
        return val.step
    if val.is_point and _is_int(val.lo):
        return 0  # a single integer: gcd-neutral
    return None


def _join(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if a.is_top or b.is_top:
        return TOP
    if a.base != b.base or a.ct != b.ct or a.cw != b.cw:
        return TOP
    sa, sb = _residue_step(a), _residue_step(b)
    if sa is None or sb is None or not math.isfinite(a.lo) or not math.isfinite(b.lo):
        step = 0
    else:
        step = math.gcd(int(sa), int(sb), abs(int(a.lo) - int(b.lo)))
    return _AbsVal(a.base, a.ct, a.cw, min(a.lo, b.lo), max(a.hi, b.hi), step)


def _widen(old, new):
    """Accelerate convergence: bounds that grew go straight to infinity.

    The stride survives (it only ever shrinks via gcd in ``_join``), but
    a widened lower bound loses its residue anchor, so the stride is
    dropped with it.
    """
    if old is None:
        return new
    joined = _join(old, new)
    if joined == old:
        return old
    if joined.is_top:
        return TOP
    lo = old.lo if joined.lo >= old.lo else -_INF
    hi = old.hi if joined.hi <= old.hi else _INF
    step = joined.step if math.isfinite(lo) else 0
    return _AbsVal(joined.base, joined.ct, joined.cw, lo, hi, step)


def _add(a, b):
    if a.is_top or b.is_top:
        return TOP
    if a.base is not None and b.base is not None:
        return TOP
    base = a.base if a.base is not None else b.base
    sa, sb = _residue_step(a), _residue_step(b)
    step = math.gcd(int(sa), int(sb)) if sa is not None and sb is not None else 0
    return _AbsVal(base, a.ct + b.ct, a.cw + b.cw,
                   a.lo + b.lo, a.hi + b.hi, step)


def _scale(val, c):
    """Multiply by a known non-negative constant ``c``."""
    if val.is_top or c < 0:
        return TOP
    if c == 0:
        return _point(0)
    if val.base is not None and c != 1:
        return TOP
    step = val.step * c if _is_int(c) else 0
    return _AbsVal(val.base, val.ct * c, val.cw * c,
                   val.lo * c, val.hi * c, int(step) if _is_int(step) else 0)


def _imul_bounds(a, b):
    """Interval product bounds, treating 0 * inf as 0."""
    def prod(x, y):
        if x == 0 or y == 0:
            return 0
        return x * y
    products = [prod(a.lo, b.lo), prod(a.lo, b.hi),
                prod(a.hi, b.lo), prod(a.hi, b.hi)]
    return min(products), max(products)


def _mul(a, b):
    for lhs, rhs in ((a, b), (b, a)):
        if lhs.pure and lhs.is_point and isinstance(lhs.lo, (int, float)):
            if lhs.lo >= 0:
                return _scale(rhs, lhs.lo)
            if rhs.pure:
                lo, hi = _imul_bounds(rhs, lhs)
                return _interval(lo, hi)
            return TOP
    if a.pure and b.pure:
        lo, hi = _imul_bounds(a, b)
        return _interval(lo, hi)
    return TOP


def _sub(a, b):
    if a.is_top or b.is_top:
        return TOP
    if b.pure and b.is_point:
        step = a.step if _is_int(b.lo) else 0
        return _AbsVal(a.base, a.ct, a.cw, a.lo - b.lo, a.hi - b.lo, step)
    if b.pure:
        return _AbsVal(a.base, a.ct, a.cw, a.lo - b.hi, a.hi - b.lo, 0)
    return TOP


def _rem(a, b):
    # The executor computes int(a) % int(b) (0 when the divisor is 0),
    # so the result lands in a divisor-bounded window regardless of how
    # wild the dividend is — this rescues table lookups like
    # ``ld(grid + floor(idx) % table_size)``.
    if b.pure and b.is_point and _is_int(b.lo):
        k = int(b.lo)
        if k > 0:
            return _interval(0, k - 1, 1)
        if k == 0:
            return _point(0)
        return _interval(k + 1, 0, 1)
    return TOP


def _and(a, b):
    for lhs, rhs in ((a, b), (b, a)):
        del rhs
        if lhs.pure and lhs.lo >= 0 and math.isfinite(lhs.hi):
            return _interval(0, int(lhs.hi), 1)
    return TOP


def _minmax(a, b, pick):
    if a.is_top or b.is_top:
        return TOP
    if a.base != b.base or a.ct != b.ct or a.cw != b.cw:
        return TOP
    joined = _join(a, b)
    return _AbsVal(joined.base, joined.ct, joined.cw,
                   pick(a.lo, b.lo), pick(a.hi, b.hi), joined.step)


def _floor(a):
    if not a.pure:
        return TOP
    lo = math.floor(a.lo) if math.isfinite(a.lo) else a.lo
    hi = math.floor(a.hi) if math.isfinite(a.hi) else a.hi
    return _interval(lo, hi, 1 if math.isfinite(lo) else 0)


def _abs(a):
    if not a.pure:
        return TOP
    if a.lo >= 0:
        return a
    hi = max(abs(a.lo), abs(a.hi))
    lo = 0 if a.lo <= 0 <= a.hi else min(abs(a.lo), abs(a.hi))
    return _interval(lo, hi, 0)


_CMP_OPS = frozenset({
    Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPGT,
    Opcode.CMPGE, Opcode.CMPEQ, Opcode.CMPNE,
})

_MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.ATOMADD})

#: Per-CTA shared-memory ops. CTA-private by construction: they are
#: summarized (region ``<shared>``) but excluded from cross-warp conflict
#: classification — no two CTAs share a scratchpad, and within a CTA the
#: engine never reorders them (shared ops are not fusable, so segments,
#: lockstep epochs and SoA chunks never contain one).
_SHARED_MEMORY_OPS = frozenset({Opcode.SHLD, Opcode.SHST, Opcode.SHATOM})

_SITE_KINDS = {
    Opcode.LD: "read",
    Opcode.ST: "write",
    Opcode.ATOMADD: "atom",
    Opcode.SHLD: "read",
    Opcode.SHST: "write",
    Opcode.SHATOM: "atom",
}


def _operand(env, op):
    if isinstance(op, Imm):
        return _point(op.value)
    if isinstance(op, Reg):
        return env.get(op.name, TOP)
    return TOP


def _transfer(instr, env):
    """Abstract value written by ``instr`` (None when it has no dst)."""
    op = instr.opcode
    if op is Opcode.CONST:
        return _point(instr.operands[0].value)
    if op is Opcode.MOV:
        return _operand(env, instr.operands[0])
    if op is Opcode.SEL:
        return _join(_operand(env, instr.operands[1]),
                     _operand(env, instr.operands[2]))
    if op is Opcode.ADD:
        return _add(_operand(env, instr.operands[0]),
                    _operand(env, instr.operands[1]))
    if op is Opcode.SUB:
        return _sub(_operand(env, instr.operands[0]),
                    _operand(env, instr.operands[1]))
    if op is Opcode.MUL:
        return _mul(_operand(env, instr.operands[0]),
                    _operand(env, instr.operands[1]))
    if op is Opcode.FMA:
        product = _mul(_operand(env, instr.operands[0]),
                       _operand(env, instr.operands[1]))
        return _add(product, _operand(env, instr.operands[2]))
    if op is Opcode.REM:
        return _rem(_operand(env, instr.operands[0]),
                    _operand(env, instr.operands[1]))
    if op is Opcode.AND:
        return _and(_operand(env, instr.operands[0]),
                    _operand(env, instr.operands[1]))
    if op is Opcode.MIN:
        return _minmax(_operand(env, instr.operands[0]),
                       _operand(env, instr.operands[1]), min)
    if op is Opcode.MAX:
        return _minmax(_operand(env, instr.operands[0]),
                       _operand(env, instr.operands[1]), max)
    if op in _CMP_OPS:
        return _interval(0, 1, 1)
    if op is Opcode.TID:
        return _AbsVal(None, 1, 0, 0, 0, 0)
    if op is Opcode.LANE:
        return _interval(0, WARP_SIZE - 1, 1)
    if op is Opcode.WARPID:
        return _AbsVal(None, 0, 1, 0, 0, 0)
    if op is Opcode.RAND:
        return _interval(0, 1, 0)
    if op is Opcode.BARCNT:
        return _interval(0, WARP_SIZE, 1)
    if op is Opcode.CTAID:
        # Launch-uniform but unknown at analysis time; non-negative by
        # construction. Addresses built from it degrade to "guarded",
        # which routes grid launches to the always-correct serial path.
        return _interval(0, _INF, 0)
    if op in (Opcode.CTADIM, Opcode.NCTA):
        return _interval(1, _INF, 0)
    if op in (Opcode.SIN, Opcode.COS):
        return _interval(-1, 1, 0)
    if op is Opcode.FLOOR:
        return _floor(_operand(env, instr.operands[0]))
    if op is Opcode.ABS:
        return _abs(_operand(env, instr.operands[0]))
    if op is Opcode.NEG:
        val = _operand(env, instr.operands[0])
        if val.pure:
            return _interval(-val.hi, -val.lo, 0)
        return TOP
    # DIV, SHL, SHR, OR, XOR, NOT, SQRT, EXP, LOG, LD, ATOMADD, CALL,
    # BMOV and anything else that defines a register: unknown.
    return TOP


# ----------------------------------------------------------------------
# Kernel interpretation
# ----------------------------------------------------------------------

def _abstract_run(fn, seed_env):
    """Worklist fixpoint over ``fn``; returns ``(global sites, shared
    sites)``, each ``{(block, index): (kind, AbsVal)}``, for every memory
    access site at the post-fixpoint input environment of its block."""
    in_envs = {fn.entry.name: dict(seed_env)}
    visits = {}
    sites = {}
    shared_sites = {}
    work = deque([fn.entry.name])
    queued = {fn.entry.name}
    while work:
        bname = work.popleft()
        queued.discard(bname)
        block = fn.block(bname)
        env = dict(in_envs[bname])
        for index, instr in enumerate(block.instructions):
            op = instr.opcode
            if op in _MEMORY_OPS:
                sites[(bname, index)] = (
                    _SITE_KINDS[op], _operand(env, instr.operands[0])
                )
            elif op in _SHARED_MEMORY_OPS:
                shared_sites[(bname, index)] = (
                    _SITE_KINDS[op], _operand(env, instr.operands[0])
                )
            if instr.dst is not None:
                env[instr.dst.name] = _transfer(instr, env)
        terminator = block.instructions[-1] if block.instructions else None
        if terminator is None:
            continue
        for succ in terminator.block_targets():
            current = in_envs.get(succ)
            count = visits.get(succ, 0)
            merge = _widen if count >= _WIDEN_AFTER else _join
            if current is None:
                merged = dict(env)
            else:
                merged = dict(current)
                changed = False
                for name, val in env.items():
                    new = merge(current.get(name), val)
                    if new != current.get(name):
                        merged[name] = new
                        changed = True
                if not changed:
                    continue
            in_envs[succ] = merged
            visits[succ] = count + 1
            if succ not in queued:
                work.append(succ)
                queued.add(succ)
    return sites, shared_sites


def _memory_callees(module, fn):
    """Names of functions reachable from ``fn`` that contain memory ops."""
    seen = {fn.name}
    stack = [fn]
    opaque = []
    while stack:
        current = stack.pop()
        for _block, _index, instr in current.instructions():
            if instr.opcode is Opcode.CALL:
                callee = instr.operands[0].name
                if callee in seen:
                    continue
                seen.add(callee)
                try:
                    target = module.function(callee)
                except KeyError:
                    continue
                if any(i.opcode in _MEMORY_OPS
                       for _b, _i, i in target.instructions()):
                    opaque.append(callee)
                stack.append(target)
    return tuple(sorted(opaque))


# ----------------------------------------------------------------------
# Compile-time summary (symbolic parameters)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AccessSite:
    """One static ``ld``/``st``/``atomadd`` with its abstract address."""

    kind: str          # "read" | "write" | "atom"
    block: str
    index: int
    region: str        # parameter name, "<absolute>", or "unknown"
    form: str          # "tid-strided" | "warp-strided" | "uniform" |
                       # "bounded" | "unknown"
    offset: tuple      # (lo, hi) relative to the region base, or None


class KernelEffects:
    """Compile-time memory-effect summary of one kernel."""

    def __init__(self, kernel, sites, opaque_calls):
        self.kernel = kernel
        self.sites = tuple(sites)
        self.opaque_calls = tuple(opaque_calls)

    def regions(self):
        """``{region: sorted set of access kinds}`` over all sites."""
        table = {}
        for site in self.sites:
            table.setdefault(site.region, set()).add(site.kind)
        return {name: tuple(sorted(kinds)) for name, kinds in sorted(table.items())}

    def describe(self):
        return {
            "regions": self.regions(),
            "sites": [
                {
                    "kind": site.kind,
                    "at": f"{site.block}[{site.index}]",
                    "region": site.region,
                    "form": site.form,
                    "offset": list(site.offset) if site.offset else None,
                }
                for site in self.sites
            ],
            "opaque_calls": list(self.opaque_calls),
        }

    def __repr__(self):
        return f"KernelEffects({self.kernel!r}, {self.regions()!r})"


def _shared_site_summary(kind, bname, index, val):
    """Summary of one shld/shst/shatom site: always region ``<shared>``
    (the scratchpad is CTA-private; its base is not parameter-rooted)."""
    if val.is_top:
        return AccessSite(kind, bname, index, SHARED_REGION, "unknown", None)
    finite = math.isfinite(val.lo) and math.isfinite(val.hi)
    offset = (val.lo, val.hi) if finite else None
    if val.ct >= 1:
        form = "tid-strided"
    elif val.cw >= 1:
        form = "warp-strided"
    elif val.is_point:
        form = "uniform"
    elif finite:
        form = "bounded"
    else:
        form = "unknown"
    return AccessSite(kind, bname, index, SHARED_REGION, form, offset)


def _site_summary(fn, kind, bname, index, val):
    if val.is_top:
        return AccessSite(kind, bname, index, "unknown", "unknown", None)
    if val.base is None:
        region = "<absolute>"
    else:
        # The lowerer suffixes every register with a numeric version
        # ("out.1"); report the source-level parameter name.
        name = fn.params[val.base].name
        stem, _, suffix = name.rpartition(".")
        region = stem if stem and suffix.isdigit() else name
    finite = math.isfinite(val.lo) and math.isfinite(val.hi)
    offset = (val.lo, val.hi) if finite else None
    if val.ct >= 1:
        form = "tid-strided"
    elif val.cw >= 1:
        form = "warp-strided"
    elif val.is_point:
        form = "uniform"
    elif finite:
        form = "bounded"
    else:
        form = "unknown"
    return AccessSite(kind, bname, index, region, form, offset)


def analyze_module(module):
    """Compile-time summary: ``{kernel name: KernelEffects}``.

    Parameters stay symbolic (each one is an opaque region base), so the
    summary names which parameter-rooted regions every block reads,
    writes, or atomically updates, with ``"unknown"`` as the explicit top
    for computed addresses. Registered as the ``"memeffects"`` analysis.
    """
    result = {}
    for fn in module:
        if not fn.is_kernel:
            continue
        seed = {
            param.name: _AbsVal(i, 0, 0, 0, 0, 0)
            for i, param in enumerate(fn.params)
        }
        raw, shared_raw = _abstract_run(fn, seed)
        sites = [
            _site_summary(fn, kind, bname, index, val)
            for (bname, index), (kind, val) in sorted(raw.items())
        ]
        sites.extend(
            _shared_site_summary(kind, bname, index, val)
            for (bname, index), (kind, val) in sorted(shared_raw.items())
        )
        result[fn.name] = KernelEffects(
            fn.name, sites, _memory_callees(module, fn)
        )
    return result


# ----------------------------------------------------------------------
# Launch-time classification (concrete arguments)
# ----------------------------------------------------------------------

def _envelope(val):
    """Integer (lo, hi) envelope of the truncated addresses a site can
    touch for one thread, or None when unknown or unbounded *below*.

    An infinite upper bound is fine: the task-loop pattern widens there,
    and every injectivity rule anchors on ``lo``/``step`` (span
    disjointness simply never separates on the unbounded side)."""
    if val.is_top or val.base is not None:
        return None
    if not math.isfinite(val.lo):
        return None
    hi = math.ceil(val.hi) if math.isfinite(val.hi) else _INF
    return math.floor(val.lo), hi


class _Site:
    __slots__ = ("kind", "lo", "hi", "ct", "cw", "step", "span")

    def __init__(self, kind, val, bounds, n_threads, max_warp):
        self.kind = kind
        self.lo, self.hi = bounds
        self.ct = val.ct
        self.cw = val.cw
        self.step = val.step
        self.span = (
            self.lo,
            self.hi + self.ct * (n_threads - 1) + self.cw * max_warp,
        )

    @property
    def writes(self):
        return self.kind != "read"

    def same_map(self, other):
        return (self.lo == other.lo and self.hi == other.hi
                and self.ct == other.ct and self.cw == other.cw
                and self.step == other.step)


def _write_self_safe(site, n_threads):
    """No two threads of different warps can hit a common truncated
    address through this one write site."""
    if site.lo < 0:
        return False
    if site.lo == site.hi:
        if site.ct >= 1:
            return True          # strictly tid-increasing: injective
        return site.ct == 0 and site.cw >= 1   # warp-private cell
    # Strided task-loop pattern: offsets move in multiples of `step`,
    # tid contributes less than one full step across the whole launch.
    return (site.step > 0 and site.ct >= 1 and site.cw == 0
            and site.step >= site.ct * n_threads)


def _pair_safe(a, b, n_threads):
    """Accesses through sites ``a`` and ``b`` (at least one a write)
    never put two threads of different warps on a common address."""
    if a.span[1] < b.span[0] or b.span[1] < a.span[0]:
        return True
    if a.same_map(b):
        # Identical address maps collide only same-tid / same-warp, and
        # intra-thread and intra-warp orders are preserved verbatim.
        if a.lo == a.hi and a.lo >= 0:
            if a.ct >= 1 or (a.ct == 0 and a.cw >= 1):
                return True
        if (a.lo >= 0 and a.step > 0 and a.ct >= 1 and a.cw == 0
                and a.step >= a.ct * n_threads):
            return True
    # Congruence separation: when every component of both address maps
    # moves in multiples of g, differing base residues mod g can never
    # meet (e.g. even-strided reads vs odd-strided writes).
    sa = a.step if a.step > 0 else (0 if a.lo == a.hi else None)
    sb = b.step if b.step > 0 else (0 if b.lo == b.hi else None)
    if sa is not None and sb is not None:
        g = math.gcd(int(sa), int(sb), int(a.ct), int(a.cw),
                     int(b.ct), int(b.cw))
        if g > 1 and (int(a.lo) - int(b.lo)) % g != 0:
            return True
    return False


_LAUNCH_CACHE = weakref.WeakKeyDictionary()


def clear_launch_cache():
    """Drop all memoized launch classifications (test hook)."""
    _LAUNCH_CACHE.clear()


def _classify(module, kernel_name, args, n_threads):
    fn = module.function(kernel_name)
    if _memory_callees(module, fn):
        return "guarded"
    seed = {}
    for i, param in enumerate(fn.params):
        value = args[i] if i < len(args) else None
        seed[param.name] = _point(value)
    # Shared sites are deliberately dropped here: the scratchpad is
    # CTA-private, so shld/shst/shatom can never couple two warps through
    # *global* memory (nor two CTAs through anything).
    raw, _shared = _abstract_run(fn, seed)
    max_warp = max(0, (n_threads - 1) // WARP_SIZE)
    sites = []
    writes = []
    for (_bname, _index), (kind, val) in sorted(raw.items()):
        bounds = _envelope(val)
        if bounds is None:
            if kind == "read":
                # An unknown read is only dangerous against a write; an
                # unknown *write* is dangerous against everything.
                sites.append(None)
                continue
            return "guarded"
        site = _Site(kind, val, bounds, n_threads, max_warp)
        sites.append(site)
        if site.writes:
            writes.append(site)
    if not writes:
        return "disjoint"
    if any(site is None for site in sites):
        return "guarded"
    for write in writes:
        if not _write_self_safe(write, n_threads):
            return "guarded"
    for i, write in enumerate(writes):
        for other in sites:
            if other is write:
                continue
            if other.writes and writes.index(other) < i:
                continue  # unordered pairs once
            if not _pair_safe(write, other, n_threads):
                return "guarded"
    return "disjoint"


def classify_launch(module, kernel_name, args, n_threads):
    """``"disjoint"`` when no two warps of this launch can conflict
    through global memory, else ``"guarded"``.

    ``"disjoint"`` licenses the warp batcher to run whole segments per
    warp per rotation turn with no runtime footprint checks at all;
    ``"guarded"`` means it must log footprints and be prepared to roll
    back (see :class:`repro.simt.batch.WarpBatcher`). Memoized weakly
    per module, validated by the structure token.
    """
    token = structure_token(module)
    entry = _LAUNCH_CACHE.get(module)
    if entry is None or entry[0] != token:
        entry = (token, {})
        _LAUNCH_CACHE[module] = entry
    try:
        key = (kernel_name, tuple(args), n_threads)
        cached = entry[1].get(key)
    except TypeError:
        key = None
        cached = None
    if cached is not None:
        return cached
    result = _classify(module, kernel_name, tuple(args), n_threads)
    if key is not None:
        entry[1][key] = result
    return result


def classify_grid(module, kernel_name, args, total_threads):
    """``"disjoint"`` when no two *CTAs* of a grid launch can conflict
    through global memory, else ``"guarded"``.

    This reuses :func:`classify_launch` over the grid's full global thread
    range: grid launches assign global tids/warp ids exactly as the flat
    launch of ``total_threads`` would (warps never span CTAs), so pairwise
    warp disjointness over the whole range implies CTA disjointness. Shared
    memory needs no check — each CTA owns its scratchpad. ``"disjoint"``
    licenses sharding provably-independent CTAs across the worker pool;
    ``"guarded"`` routes the grid to the serial in-process CTA loop.
    """
    return classify_launch(module, kernel_name, args, total_threads)
