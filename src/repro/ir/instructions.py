"""Instruction set of the repro IR.

The IR is a register machine over per-thread dynamic values (Python ints and
floats), with explicit control flow (every basic block ends in exactly one
terminator) and Volta-style named convergence-barrier instructions:

* ``bssy``   — join a convergence barrier (paper: ``JoinBarrier`` /
  ``RejoinBarrier``),
* ``bsync``  — wait on a convergence barrier (paper: ``WaitBarrier``),
* ``bbreak`` — withdraw from a convergence barrier (paper: ``CancelBarrier``),
* ``bsync.soft`` — threshold wait used by the soft-barrier lowering (§4.6),
* ``bmov`` / ``barcnt`` — barrier-register copy and arrived-thread count,
  mirroring the barrier-register indirection of Figure 6.

Operands are :class:`Reg`, :class:`Imm`, :class:`Barrier`, :class:`BlockRef`
or :class:`FuncRef`. Branch targets are symbolic block names resolved by the
owning function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IRError


class Opcode(enum.Enum):
    """All opcodes understood by the IR, verifier and simulator."""

    # Data movement / constants.
    CONST = "const"
    MOV = "mov"
    SEL = "sel"

    # Integer / float arithmetic (dynamically typed, like PTX virtual regs).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    FMA = "fma"

    # Transcendental / unary math (SFU-class latencies).
    SQRT = "sqrt"
    SIN = "sin"
    COS = "cos"
    EXP = "exp"
    LOG = "log"
    FLOOR = "floor"
    ABS = "abs"

    # Comparisons producing 0/1 predicates.
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"

    # Thread identity and randomness.
    TID = "tid"
    LANE = "lane"
    WARPID = "warpid"
    RAND = "rand"

    # Grid identity (launch-uniform within one CTA).
    CTAID = "ctaid"
    CTADIM = "ctadim"
    NCTA = "nctas"

    # Memory.
    LD = "ld"
    ST = "st"
    ATOMADD = "atomadd"

    # Per-CTA shared memory.
    SHLD = "shld"
    SHST = "shst"
    SHATOM = "shatom"

    # Control flow (terminators, except CALL).
    BRA = "bra"
    CBR = "cbr"
    RET = "ret"
    EXIT = "exit"
    CALL = "call"

    # Convergence barriers (Volta BSSY / BSYNC / BREAK).
    BSSY = "bssy"
    BSYNC = "bsync"
    BSYNCSOFT = "bsync.soft"
    BBREAK = "bbreak"
    BMOV = "bmov"
    BARCNT = "barcnt"

    # Markers and miscellany.
    PREDICT = "predict"
    WARPSYNC = "warpsync"
    CTASYNC = "ctasync"
    NOP = "nop"
    DELAY = "delay"


@dataclass(frozen=True)
class Reg:
    """A virtual register, unique by name within a function."""

    name: str

    def __post_init__(self):
        # Register lookups hash a Reg several times per issue slot; cache
        # the dataclass hash (same value, so set orders are unchanged).
        object.__setattr__(self, "_hash", hash((self.name,)))

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate integer or float operand."""

    value: object

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Barrier:
    """A named convergence-barrier register (e.g. ``$b0``)."""

    name: str

    def __repr__(self):
        return f"${self.name}"


@dataclass(frozen=True)
class BlockRef:
    """A symbolic reference to a basic block by name (e.g. ``^loop``)."""

    name: str

    def __repr__(self):
        return f"^{self.name}"


@dataclass(frozen=True)
class FuncRef:
    """A symbolic reference to a function by name (e.g. ``@foo``)."""

    name: str

    def __repr__(self):
        return f"@{self.name}"


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.BRA, Opcode.CBR, Opcode.RET, Opcode.EXIT})

#: Binary arithmetic opcodes: dst = op(a, b).
BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.REM,
        Opcode.MIN,
        Opcode.MAX,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPGT,
        Opcode.CMPGE,
        Opcode.CMPEQ,
        Opcode.CMPNE,
    }
)

#: Unary arithmetic opcodes: dst = op(a).
UNARY_OPS = frozenset(
    {
        Opcode.MOV,
        Opcode.NEG,
        Opcode.NOT,
        Opcode.SQRT,
        Opcode.SIN,
        Opcode.COS,
        Opcode.EXP,
        Opcode.LOG,
        Opcode.FLOOR,
        Opcode.ABS,
    }
)

#: Opcodes that define their destination register.
HAS_DST = (
    BINARY_OPS
    | UNARY_OPS
    | frozenset(
        {
            Opcode.CONST,
            Opcode.SEL,
            Opcode.FMA,
            Opcode.TID,
            Opcode.LANE,
            Opcode.WARPID,
            Opcode.RAND,
            Opcode.CTAID,
            Opcode.CTADIM,
            Opcode.NCTA,
            Opcode.LD,
            Opcode.ATOMADD,
            Opcode.SHLD,
            Opcode.SHATOM,
            Opcode.BARCNT,
        }
    )
)

#: Barrier-manipulating opcodes (first operand is a barrier or barrier reg).
BARRIER_OPS = frozenset(
    {
        Opcode.BSSY,
        Opcode.BSYNC,
        Opcode.BSYNCSOFT,
        Opcode.BBREAK,
        Opcode.BARCNT,
    }
)

#: Sources of thread-divergent values for the divergence analysis.
DIVERGENT_SOURCES = frozenset(
    {Opcode.TID, Opcode.LANE, Opcode.RAND, Opcode.ATOMADD, Opcode.SHATOM}
)


class Instruction:
    """One IR instruction: ``dst = opcode(operands)`` plus attributes.

    ``attrs`` carries optional provenance metadata. Keys used by the library:

    * ``origin`` — which pass inserted the instruction (``"pdom"``, ``"sr"``,
      ``"soft"``, ``"deconflict"``, ``"frontend"``),
    * ``role`` — paper primitive name (``"join"``, ``"wait"``, ``"rejoin"``,
      ``"cancel"``),
    * ``comment`` — free-form note preserved by the printer.
    """

    __slots__ = ("opcode", "dst", "operands", "attrs")

    def __init__(self, opcode, dst=None, operands=None, attrs=None):
        if not isinstance(opcode, Opcode):
            raise IRError(f"opcode must be an Opcode, got {opcode!r}")
        self.opcode = opcode
        self.dst = dst
        self.operands = list(operands or [])
        self.attrs = dict(attrs or {})

    @property
    def is_terminator(self):
        return self.opcode in TERMINATORS

    @property
    def is_barrier_op(self):
        return self.opcode in BARRIER_OPS or self.opcode is Opcode.BMOV

    def uses(self):
        """Registers read by this instruction."""
        regs = [op for op in self.operands if isinstance(op, Reg)]
        if self.opcode is Opcode.BMOV and self.dst is not None:
            # bmov writes a barrier-valued register; dst handled separately.
            pass
        return regs

    def defs(self):
        """Registers written by this instruction."""
        return [self.dst] if self.dst is not None else []

    def block_targets(self):
        """Symbolic branch targets (empty for non-branches)."""
        return [op.name for op in self.operands if isinstance(op, BlockRef)]

    def replace_block_target(self, old, new):
        """Rewrite branch targets named ``old`` to ``new``."""
        self.operands = [
            BlockRef(new) if isinstance(op, BlockRef) and op.name == old else op
            for op in self.operands
        ]

    def barrier_operand(self):
        """The barrier operand of a barrier op (``Barrier`` or ``Reg``)."""
        if not self.is_barrier_op:
            raise IRError(f"{self.opcode.value} has no barrier operand")
        if not self.operands:
            raise IRError(f"{self.opcode.value} is missing its barrier operand")
        return self.operands[0]

    def copy(self):
        return Instruction(self.opcode, self.dst, list(self.operands), dict(self.attrs))

    def __repr__(self):
        parts = []
        if self.dst is not None:
            parts.append(f"{self.dst!r} = ")
        parts.append(self.opcode.value)
        if self.operands:
            parts.append(" " + ", ".join(repr(op) for op in self.operands))
        return "".join(parts)

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.opcode == other.opcode
            and self.dst == other.dst
            and self.operands == other.operands
        )

    def __hash__(self):
        return hash((self.opcode, self.dst, tuple(self.operands)))


def make(opcode, dst=None, *operands, **attrs):
    """Convenience constructor: ``make(Opcode.ADD, r, a, b, origin="sr")``."""
    return Instruction(opcode, dst=dst, operands=list(operands), attrs=attrs)
