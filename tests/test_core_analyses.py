"""Tests for the Section 4.2.1 dataflow analyses and Section 4.1 machinery:
directives, regions, joined-barrier analysis, barrier liveness.

The Listing 1 CFG (tests.helpers.listing1_module) mirrors Figure 4:
entry=BB0 (region start), head=BB1, prolog=BB2, then=BB3 (label L1),
epilog=BB4, exit=BB5.
"""

import pytest

from repro.core import (
    BarrierLiveness,
    BarrierNamer,
    JoinedBarriers,
    collect_predictions,
    compute_region,
    find_label_block,
    join_barrier,
    strip_directives,
    wait_barrier,
)
from repro.errors import TransformError
from repro.ir import Opcode
from tests.helpers import listing1_module


def figure4_function():
    """Listing 1 with the join/wait of Figure 4(a) already placed."""
    module = listing1_module(with_predict=False)
    fn = module.function("k")
    fn.block("entry").insert_before_terminator(join_barrier("b0", "sr"))
    fn.block("then").prepend(wait_barrier("b0", "sr"))
    return fn


class TestPrimitives:
    def test_roles_recorded(self):
        assert join_barrier("b", "sr").attrs["role"] == "join"
        assert wait_barrier("b", "sr").attrs["role"] == "wait"

    def test_namer_unique(self):
        namer = BarrierNamer()
        assert namer.fresh() != namer.fresh()


class TestDirectives:
    def test_collect_prediction(self):
        module = listing1_module()
        predictions = collect_predictions(module.function("k"))
        assert len(predictions) == 1
        prediction = predictions[0]
        assert prediction.label == "L1"
        assert prediction.target_block == "then"
        assert prediction.region_block == "entry"
        assert not prediction.is_interprocedural

    def test_threshold_attr_collected(self):
        module = listing1_module()
        fn = module.function("k")
        for _, _, instr in fn.instructions():
            if instr.opcode is Opcode.PREDICT:
                instr.attrs["threshold"] = 8
        prediction = collect_predictions(fn)[0]
        assert prediction.threshold == 8

    def test_missing_label_raises(self):
        module = listing1_module()
        fn = module.function("k")
        fn.block("then").attrs.pop("label")
        with pytest.raises(TransformError, match="no matching label"):
            collect_predictions(fn)

    def test_ambiguous_label_raises(self):
        module = listing1_module()
        fn = module.function("k")
        fn.block("epilog").attrs["label"] = "L1"
        with pytest.raises(TransformError, match="ambiguous"):
            collect_predictions(fn)

    def test_strip_directives(self):
        module = listing1_module()
        fn = module.function("k")
        assert strip_directives(fn) == 1
        assert collect_predictions(fn) == []

    def test_find_label_block(self):
        module = listing1_module()
        assert find_label_block(module.function("k"), "L1").name == "then"


class TestRegions:
    def test_listing1_region(self):
        module = listing1_module()
        fn = module.function("k")
        region = compute_region(fn, "entry", "then")
        assert region.blocks == {"entry", "head", "prolog", "then", "epilog"}

    def test_region_exit_edges(self):
        module = listing1_module()
        region = compute_region(module.function("k"), "entry", "then")
        assert region.exit_edges == [("head", "exit")]

    def test_region_post_dominator(self):
        module = listing1_module()
        region = compute_region(module.function("k"), "entry", "then")
        assert region.post_dominator == "exit"

    def test_unreachable_label_rejected(self):
        module = listing1_module()
        fn = module.function("k")
        with pytest.raises(TransformError, match="unreachable"):
            compute_region(fn, "exit", "then")


class TestJoinedBarriers:
    """Equation 1 on the Figure 4(b) example."""

    def test_joined_through_region(self):
        fn = figure4_function()
        joined = JoinedBarriers(fn)
        for block in ("head", "prolog"):
            assert "b0" in joined.joined_in(block)

    def test_wait_kills_joined(self):
        fn = figure4_function()
        joined = JoinedBarriers(fn)
        # BB3 clears the barrier: joined-out of `then` is empty.
        assert "b0" not in joined.joined_out("then")

    def test_union_at_merge(self):
        fn = figure4_function()
        joined = JoinedBarriers(fn)
        # epilog merges prolog (joined) and then (cleared): may-joined.
        assert "b0" in joined.joined_in("epilog")

    def test_joined_before_instruction(self):
        fn = figure4_function()
        joined = JoinedBarriers(fn)
        then = fn.block("then")
        assert "b0" in joined.joined_before(then, 0)
        assert "b0" not in joined.joined_before(then, 1)  # after the wait

    def test_joined_points_cover_loop(self):
        fn = figure4_function()
        points = JoinedBarriers(fn).joined_points("b0")
        blocks = {name for name, _ in points}
        assert {"head", "prolog", "epilog"} <= blocks


class TestBarrierLiveness:
    """Equation 2 on the Figure 4(c) example."""

    def test_live_backward_from_wait(self):
        fn = figure4_function()
        liveness = BarrierLiveness(fn)
        for block in ("head", "prolog"):
            assert "b0" in liveness.live_in(block)

    def test_dead_after_region(self):
        fn = figure4_function()
        liveness = BarrierLiveness(fn)
        assert "b0" not in liveness.live_in("exit")

    def test_join_kills_liveness_above(self):
        fn = figure4_function()
        liveness = BarrierLiveness(fn)
        # Above the JoinBarrier in entry the register is dead (Fig 4c: BB0
        # LiveOut={b0} but the range starts at the join).
        entry = fn.block("entry")
        join_index = next(
            i
            for i, instr in enumerate(entry.instructions)
            if instr.opcode is Opcode.BSSY
        )
        assert "b0" not in liveness.live_before(entry, join_index)
        assert "b0" in liveness.live_after(entry, join_index)

    def test_live_through_back_edge(self):
        fn = figure4_function()
        liveness = BarrierLiveness(fn)
        # After the wait in `then`, b0 is live again via the loop back edge
        # (this is why a RejoinBarrier is required there).
        then = fn.block("then")
        assert "b0" in liveness.live_after(then, 0)
