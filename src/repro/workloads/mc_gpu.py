"""MC-GPU: Monte Carlo x-ray transport for CT imaging (Table 2).

"A GPU-accelerated Monte Carlo simulation used to model radiation transport
of x-rays for CT scans of the human anatomy." Photon histories take a
variable number of Woodcock-tracking steps through the voxelized anatomy
(SFU-heavy: exp/log sampling of free flight), terminating on absorption —
another divergent-trip-count loop fed new photons by thread coarsening.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class MCGPU(Workload):
    name = "mc-gpu"
    description = (
        "Monte Carlo x-ray transport for CT imaging; variable-length photon "
        "histories (Woodcock tracking with exp/log sampling)"
    )
    pattern = "loop-merge"
    paper_note = "Loop Merge over coarsened photon histories."
    kernel_name = "mcgpu_photon"
    sr_threshold = 16
    defaults = {
        "photons_per_thread": 7,
        "max_steps": 40,
        "absorb_prob": 0.18,
        "step_cost": 12,   # extra FMA work per step beyond the SFU sampling
    }

    def source(self):
        p = self.params
        extra = repeat_lines("e = fma(e, 0.9993, 0.0004);", p["step_cost"])
        return f"""
kernel mcgpu_photon(n_photons, detector) {{
    let photon = tid();
    let dose = 0.0;
    predict L1;
    while (photon < n_photons) {{
        // Prolog: spawn the photon (energy, direction).
        let e = 0.06 + hash01(photon * 3.141592) * 0.08;
        let step = 0;
        let alive = 1;
        while (alive > 0) {{
            // Proposed reconvergence point: one Woodcock tracking step —
            // sample free flight (exp/log) and attenuate.
            label L1: step = step + 1;
            let u = hash01(photon * 251.0 + step * 37.0);
            let flight = 0.0 - log(u + 0.0001) * 0.35;
            e = e * exp(0.0 - flight * 0.02);
{extra}
            let v = hash01(photon * 563.0 + step * 11.0);
            if (v < {p['absorb_prob']}) {{
                alive = 0;
            }}
            if (step >= {p['max_steps']}) {{
                alive = 0;
            }}
        }}
        // Epilog: tally the deposited dose.
        dose = dose + e / (step + 0.0);
        photon = photon + 32;
    }}
    store(detector + tid(), dose);
}}
"""

    def setup(self, memory):
        detector = memory.alloc(self.n_threads, name="detector")
        n_photons = self.params["photons_per_thread"] * self.n_threads
        return (n_photons, detector)
