"""Cross-machine conformance net for the fast-path simulation engine.

The differential matrix pins *bit-identical* per-thread store traces and
profiler counters across:

* ``GPUMachine`` with the pre-decoded fast path on vs off,
* ``StackGPUMachine`` (pre-Volta) fast path on vs off,
* all three schedulers,
* ``compile_baseline`` vs ``compile_sr``,
* observability (metrics) on vs off — the PR-1 invariant,
* multi-warp batched lockstep epochs vs the serial warp interleaving
  (``warp_batch`` on vs off at 96 threads),
* numpy SoA vector chunks vs thread-major chunk execution (``soa`` on
  vs off, with the width/gain gate forced so the vector path really
  runs — single-warp, batched multi-warp, and fuzzed),
* the tiered segment JIT vs interpreted segment steps (``jit`` on vs
  off with the tier-up threshold forced to 0 so every segment runs
  compiled — single-warp, batched multi-warp, SoA-composed, and
  fuzzed),

over a scaled-down Table 2 corpus and the hypothesis ``random_kernel``
fuzzer. The interpreted (fastpath-off) executor is the reference
semantics; any drift in a decoded handler fails here first.

The max-issues runaway-loop cap is also pinned here: every execution
engine shares ``DEFAULT_MAX_ISSUES`` and raises :class:`LaunchError` on
overrun.
"""

import inspect
import json
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_baseline, compile_sr
from repro.errors import DeadlockError, LaunchError
from repro.frontend import compile_kernel_source
from repro.frontend.lower import lower_program
from repro.simt import (
    CTAContext,
    DEFAULT_MAX_ISSUES,
    GPUMachine,
    GlobalMemory,
    GridLaunch,
    SCHEDULERS,
    StackGPUMachine,
    soa_available,
)
from repro.simt import jit as jit_module
from repro.simt import soa as soa_module
from repro.simt.reference import run_reference_thread
from repro.workloads import get_workload
from tests.test_properties import random_kernel

#: Table 2 workloads with sizes scaled down so the full matrix stays fast.
#: Every workload keeps its divergence pattern; only trip counts shrink.
CORPUS = {
    "rsbench": {"n_tasks": 64, "inner_fma": 3},
    "xsbench": {"n_tasks": 64, "grid_levels": 6, "table_size": 256,
                "trip_hi": 20},
    "mcb": {"steps": 8, "collision_cost": 16},
    "pathtracer": {"samples_per_thread": 2, "max_bounces": 8,
                   "shade_cost": 8},
    "mc-gpu": {"photons_per_thread": 2, "max_steps": 10, "step_cost": 4},
    "mummer": {"queries_per_thread": 3, "match_hi": 10, "extend_cost": 3},
    "meiyamd5": {"candidates_per_thread": 2, "len_hi": 16, "round_cost": 8},
    "optix": {"steps": 10, "intersect_cost": 12},
    "gpu-mcml": {"photons_per_thread": 2, "max_steps": 16, "spin_cost": 4},
    "funccall": {"iterations": 6, "shade_cost": 8, "else_extra": 2},
}

MODES = ("baseline", "sr")


def _launch(workload, compiled, machine_cls, fastpath, scheduler=None,
            metrics=False, seed=2020, segments=None, n_threads=None,
            **machine_kwargs):
    """One launch of a compiled workload on a fresh memory."""
    memory = GlobalMemory()
    args = workload.setup(memory)
    kwargs = {"seed": seed, "fastpath": fastpath, "metrics": metrics,
              "segments": segments, **machine_kwargs}
    if scheduler is not None:
        kwargs["scheduler"] = scheduler
    machine = machine_cls(compiled.module, **kwargs)
    return machine.launch(
        workload.kernel_name,
        n_threads if n_threads is not None else workload.n_threads,
        args=args, memory=memory,
    )


def _fingerprint(launch):
    """Everything the conformance matrix pins, JSON-normalized so an int
    silently becoming a float also counts as drift."""
    summary = dict(launch.profiler.summary())
    # Stall attribution only exists when metrics are on; everything else in
    # the summary must be independent of observability.
    summary.pop("stall_cycles", None)
    # Engine telemetry (fusion coverage, batch epochs) intentionally varies
    # with the engine configuration under test; the simulated result must
    # not.
    summary.pop("counters", None)
    # Non-forced-pick attribution counts serial-loop scheduler decisions,
    # which move between engine configurations (speculation absorbs slots).
    summary.pop("nonforced_picks", None)
    return (
        launch.store_traces(),
        launch.retired_per_thread(),
        json.dumps(summary, sort_keys=True, default=repr),
        launch.cycles,
        launch.simt_efficiency,
    )


def _compiled(workload, mode):
    module = workload.module()
    if mode == "baseline":
        return compile_baseline(module)
    return compile_sr(module, threshold=workload.sr_threshold)


@contextmanager
def _forced_soa_gate():
    """Force the SoA gate wide open: any group width, any modelled gain.

    Vector chunks are compiled into each freshly decoded segment table, so
    this must wrap *compilation and launch* (every test here compiles its
    module inside the block).
    """
    prev_lanes = soa_module.set_soa_lanes(1)
    prev_gain = soa_module.set_soa_min_gain(-(10 ** 9))
    try:
        yield
    finally:
        soa_module.set_soa_lanes(prev_lanes)
        soa_module.set_soa_min_gain(prev_gain)


@contextmanager
def _forced_jit():
    """Force segment tier-up on first execution (JIT on, threshold 0).

    The threshold is read at launch setup and the per-segment hit
    counters live on the (weakly cached) segments, so wrapping the
    launches is enough — no decode-cache reset needed.
    """
    prev_enabled = jit_module.set_jit(True)
    prev_threshold = jit_module.set_jit_threshold(0)
    try:
        yield
    finally:
        jit_module.set_jit(prev_enabled)
        jit_module.set_jit_threshold(prev_threshold)


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestFastpathConformance:
    """Fast path vs interpreter, per machine × scheduler × compile mode."""

    def test_gpu_machine_bit_identical(self, name):
        workload = get_workload(name, **CORPUS[name])
        for mode in MODES:
            compiled = _compiled(workload, mode)
            for scheduler in sorted(SCHEDULERS):
                slow = _fingerprint(_launch(
                    workload, compiled, GPUMachine, False, scheduler
                ))
                fast = _fingerprint(_launch(
                    workload, compiled, GPUMachine, True, scheduler
                ))
                assert fast == slow, (name, mode, scheduler)

    def test_stack_machine_bit_identical(self, name):
        workload = get_workload(name, **CORPUS[name])
        for mode in MODES:
            compiled = _compiled(workload, mode)
            slow = _fingerprint(_launch(
                workload, compiled, StackGPUMachine, False
            ))
            fast = _fingerprint(_launch(
                workload, compiled, StackGPUMachine, True
            ))
            assert fast == slow, (name, mode)

    def test_observability_preserves_results(self, name):
        """Metrics on vs off never changes traces, counters, or cycles —
        the PR-1 invariant, re-proven on the fast path and the stack
        machine."""
        workload = get_workload(name, **CORPUS[name])
        compiled = _compiled(workload, "sr")
        for machine_cls in (GPUMachine, StackGPUMachine):
            plain = _launch(workload, compiled, machine_cls, True)
            observed = _launch(
                workload, compiled, machine_cls, True, metrics=True
            )
            assert _fingerprint(observed) == _fingerprint(plain), (
                name, machine_cls.__name__,
            )
            assert observed.metrics is not None
            assert plain.metrics is None

    def test_cross_scheduler_traces_match(self, name):
        """Store traces agree across schedulers and against the stack
        machine for workloads with deterministic task assignment (dynamic
        work queues reorder memory, so only those are comparable)."""
        workload = get_workload(name, **CORPUS[name])
        if not workload.deterministic_memory:
            pytest.skip(f"{name} uses a dynamic work queue")
        compiled = _compiled(workload, "sr")
        reference = _launch(
            workload, compiled, GPUMachine, False, "convergence"
        ).store_traces()
        for scheduler in sorted(SCHEDULERS):
            for fastpath in (False, True):
                traces = _launch(
                    workload, compiled, GPUMachine, fastpath, scheduler
                ).store_traces()
                assert traces == reference, (name, scheduler, fastpath)
        for fastpath in (False, True):
            traces = _launch(
                workload, compiled, StackGPUMachine, fastpath
            ).store_traces()
            assert traces == reference, (name, "stack", fastpath)


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestSegmentConformance:
    """Segment fusion on vs off, per compile mode × scheduler.

    Fusion-off per-instruction issue is the reference; fusion must be
    bit-identical (traces, retirement, counters, cycles) and must actually
    fire under the convergence scheduler, or the axis tests nothing.
    """

    def test_segments_bit_identical(self, name):
        workload = get_workload(name, **CORPUS[name])
        for mode in MODES:
            compiled = _compiled(workload, mode)
            for scheduler in sorted(SCHEDULERS):
                unfused = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    segments=False,
                )
                fused = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    segments=True,
                )
                assert _fingerprint(fused) == _fingerprint(unfused), (
                    name, mode, scheduler,
                )
                assert unfused.profiler.fused_issues == 0
                if scheduler == "convergence":
                    # Every corpus workload has straight-line runs; if the
                    # engine stops fusing them the speedup silently
                    # evaporates while results stay identical.
                    assert fused.profiler.fused_issues > 0, (name, mode)

    def test_segments_inert_without_fastpath(self, name):
        """Fusion requires the decoded program; on the interpreted path it
        must disable itself rather than change behavior."""
        workload = get_workload(name, **CORPUS[name])
        compiled = _compiled(workload, "sr")
        interpreted = _launch(
            workload, compiled, GPUMachine, False, segments=True
        )
        assert interpreted.profiler.fused_issues == 0
        reference = _launch(
            workload, compiled, GPUMachine, True, segments=False
        )
        assert _fingerprint(interpreted) == _fingerprint(reference), name

    def test_segments_fall_back_under_observability(self, name):
        """An attached metrics registry observes every issue slot, so
        fusion must fall back to per-instruction issue — with results and
        metrics identical to an unfused observed run."""
        workload = get_workload(name, **CORPUS[name])
        compiled = _compiled(workload, "sr")
        observed = _launch(
            workload, compiled, GPUMachine, True, metrics=True,
            segments=True,
        )
        assert observed.profiler.fused_issues == 0
        reference = _launch(
            workload, compiled, GPUMachine, True, metrics=True,
            segments=False,
        )
        assert _fingerprint(observed) == _fingerprint(reference), name
        assert (
            observed.metrics.stall_cycles()
            == reference.metrics.stall_cycles()
        )


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestWarpBatchConformance:
    """Batched multi-warp lockstep epochs vs the serial interleaving.

    Every corpus workload launches with three warps (96 threads) so the
    multi-warp rotation loop — not the single-warp exclusive path — is
    what runs. ``warp_batch=False`` is the reference serial schedule
    (the exact pre-batching engine); the batched engine must be
    bit-identical across compile modes and schedulers while actually
    advancing warps in lockstep epochs.
    """

    N_THREADS = 96

    def test_batched_bit_identical_and_engaged(self, name):
        workload = get_workload(name, **CORPUS[name])
        for mode in MODES:
            compiled = _compiled(workload, mode)
            for scheduler in sorted(SCHEDULERS):
                serial = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    n_threads=self.N_THREADS, warp_batch=False,
                )
                batched = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    n_threads=self.N_THREADS, warp_batch=True,
                )
                assert _fingerprint(batched) == _fingerprint(serial), (
                    name, mode, scheduler,
                )
                # The serial engine must be the exact pre-batching path
                # and the batched one must really take lockstep epochs —
                # otherwise this axis silently tests nothing.
                assert serial.profiler.batch_epochs == 0
                assert batched.profiler.batch_epochs > 0, (
                    name, mode, scheduler,
                )

    def test_batching_inert_under_observability(self, name):
        """Metrics observe every issue slot, so batching (like fusion)
        must disable itself rather than change what metrics see."""
        workload = get_workload(name, **CORPUS[name])
        compiled = _compiled(workload, "sr")
        observed = _launch(
            workload, compiled, GPUMachine, True, metrics=True,
            n_threads=self.N_THREADS, warp_batch=True,
        )
        assert observed.profiler.batch_epochs == 0
        reference = _launch(
            workload, compiled, GPUMachine, True, metrics=True,
            n_threads=self.N_THREADS, warp_batch=False,
        )
        assert _fingerprint(observed) == _fingerprint(reference), name
        assert (
            observed.metrics.stall_cycles()
            == reference.metrics.stall_cycles()
        )


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestSpecConformance:
    """Speculative rounds vs the serial interleaving, per mode × scheduler.

    Speculation fires exactly where batching cannot — slots whose pick
    is not forced — so every corpus workload launches with three warps
    and batching left on: the speculative engine must reproduce the
    plain serial schedule bit-for-bit while actually planning, executing
    and committing optimistic rounds. ``spec=False`` is the exact
    pre-speculation engine and the reference.
    """

    N_THREADS = 96

    def test_spec_bit_identical_and_engaged(self, name, monkeypatch):
        # Pin the attempt pacing eager: no post-failure cooldown and no
        # profitability floors, so a round is attempted (and run) at
        # every non-forced slot and the bit-identity check covers as
        # many speculative commits as the launch can produce. Pacing
        # economics are a perf concern (benchmarks), not a conformance
        # one.
        from repro.simt import spec as spec_mod
        monkeypatch.setattr(spec_mod, "_PLAN_COOLDOWN", 0)
        monkeypatch.setattr(spec_mod, "_MIN_COMMIT_SLOTS", 2)
        monkeypatch.setattr(spec_mod, "_MIN_GUARDED_SLOTS", 2)
        monkeypatch.setattr(spec_mod, "_PER_SLOT_WEIGHT", 0)
        workload = get_workload(name, **CORPUS[name])
        for mode in MODES:
            compiled = _compiled(workload, mode)
            rounds = committed = 0
            for scheduler in sorted(SCHEDULERS):
                serial = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    n_threads=self.N_THREADS, spec=False,
                )
                speculative = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    n_threads=self.N_THREADS, spec=True,
                )
                assert _fingerprint(speculative) == _fingerprint(serial), (
                    name, mode, scheduler,
                )
                assert serial.profiler.spec_rounds == 0
                rounds += speculative.profiler.spec_rounds
                committed += speculative.profiler.spec_committed
            # Every (workload, mode) point must really speculate under at
            # least one scheduler — otherwise this axis silently tests
            # nothing. (Individual schedulers may find no eligible round
            # on near-uniform workloads.)
            assert rounds > 0, (name, mode)
            assert committed > 0, (name, mode)

    def test_spec_inert_without_segments(self, name):
        """Round planning prices candidate bursts with bounded fused
        segments; with fusion off the spec knob must change nothing."""
        workload = get_workload(name, **CORPUS[name])
        compiled = _compiled(workload, "sr")
        unfused_spec = _launch(
            workload, compiled, GPUMachine, True, segments=False,
            n_threads=self.N_THREADS, spec=True,
        )
        assert unfused_spec.profiler.spec_rounds == 0
        reference = _launch(
            workload, compiled, GPUMachine, True, segments=False,
            n_threads=self.N_THREADS, spec=False,
        )
        assert _fingerprint(unfused_spec) == _fingerprint(reference), name

    def test_spec_inert_under_observability(self, name):
        """Metrics observe every issue slot, so speculation (like fusion
        and batching) must disable itself rather than reorder what
        metrics see."""
        workload = get_workload(name, **CORPUS[name])
        compiled = _compiled(workload, "sr")
        observed = _launch(
            workload, compiled, GPUMachine, True, metrics=True,
            n_threads=self.N_THREADS, spec=True,
        )
        assert observed.profiler.spec_rounds == 0
        reference = _launch(
            workload, compiled, GPUMachine, True, metrics=True,
            n_threads=self.N_THREADS, spec=False,
        )
        assert _fingerprint(observed) == _fingerprint(reference), name
        assert (
            observed.metrics.stall_cycles()
            == reference.metrics.stall_cycles()
        )


@pytest.mark.skipif(not soa_available(), reason="numpy not installed")
@pytest.mark.parametrize("name", sorted(CORPUS))
class TestSoAConformance:
    """SoA vector chunks vs thread-major chunks, per mode × scheduler.

    The thread-major (``soa=False``) engine is the exact pre-SoA path and
    the reference; with the width/gain gate forced open the vector path
    must be bit-identical while actually executing vector chunks on every
    corpus point (pinned, or the axis silently tests nothing). Composition
    with batched multi-warp lockstep epochs gets its own 96-thread leg.
    """

    N_THREADS = 96

    def test_soa_bit_identical_and_engaged(self, name):
        workload = get_workload(name, **CORPUS[name])
        with _forced_soa_gate():
            for mode in MODES:
                compiled = _compiled(workload, mode)
                for scheduler in sorted(SCHEDULERS):
                    thread_major = _launch(
                        workload, compiled, GPUMachine, True, scheduler,
                        soa=False,
                    )
                    vector = _launch(
                        workload, compiled, GPUMachine, True, scheduler,
                        soa=True,
                    )
                    assert _fingerprint(vector) == _fingerprint(
                        thread_major
                    ), (name, mode, scheduler)
                    assert thread_major.profiler.soa_chunks == 0
                    assert vector.profiler.soa_chunks > 0, (
                        name, mode, scheduler,
                    )

    def test_soa_batched_multiwarp_bit_identical(self, name):
        """SoA must compose with lockstep multi-warp epochs: columns are
        chunk-contained, so batch checkpoints and rollbacks always see
        canonical list-backed frames."""
        workload = get_workload(name, **CORPUS[name])
        with _forced_soa_gate():
            for mode in MODES:
                compiled = _compiled(workload, mode)
                serial = _launch(
                    workload, compiled, GPUMachine, True,
                    n_threads=self.N_THREADS, warp_batch=False, soa=False,
                )
                vector_batched = _launch(
                    workload, compiled, GPUMachine, True,
                    n_threads=self.N_THREADS, warp_batch=True, soa=True,
                )
                assert _fingerprint(vector_batched) == _fingerprint(
                    serial
                ), (name, mode)
                assert vector_batched.profiler.soa_chunks > 0, (name, mode)

    def test_soa_inert_without_segments(self, name):
        """Vector chunks only exist inside fused segments; with fusion off
        the SoA knob must change nothing at all."""
        workload = get_workload(name, **CORPUS[name])
        with _forced_soa_gate():
            compiled = _compiled(workload, "sr")
            unfused_soa = _launch(
                workload, compiled, GPUMachine, True, segments=False,
                soa=True,
            )
            assert unfused_soa.profiler.soa_chunks == 0
            assert unfused_soa.profiler.soa_fallback_chunks == 0
            reference = _launch(
                workload, compiled, GPUMachine, True, segments=False,
                soa=False,
            )
            assert _fingerprint(unfused_soa) == _fingerprint(reference), name


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestJITConformance:
    """Compiled segment execution vs interpreted steps, per mode ×
    scheduler.

    ``jit=False`` is the exact pre-JIT engine and the reference; with
    the tier-up threshold forced to 0 every fused segment must dispatch
    through compiled code from its first execution and stay bit-identical
    — and must actually engage on every corpus point (pinned, or the
    axis silently tests nothing). Composition with batched multi-warp
    lockstep epochs and the forced-open SoA gate get their own legs.
    """

    N_THREADS = 96

    def test_jit_bit_identical_and_engaged(self, name):
        workload = get_workload(name, **CORPUS[name])
        with _forced_jit():
            for mode in MODES:
                compiled = _compiled(workload, mode)
                for scheduler in sorted(SCHEDULERS):
                    interpreted = _launch(
                        workload, compiled, GPUMachine, True, scheduler,
                        jit=False,
                    )
                    jitted = _launch(
                        workload, compiled, GPUMachine, True, scheduler,
                        jit=True,
                    )
                    assert _fingerprint(jitted) == _fingerprint(
                        interpreted
                    ), (name, mode, scheduler)
                    assert interpreted.profiler.jit_segments == 0
                    assert jitted.profiler.jit_segments > 0, (
                        name, mode, scheduler,
                    )
                    assert jitted.profiler.jit_deopts == 0, (
                        name, mode, scheduler,
                    )

    def test_jit_batched_multiwarp_bit_identical(self, name):
        """The batcher calls ``Segment.execute`` inside lockstep epochs
        (including under the optimistic write-set guard), so tier
        dispatch must compose with multi-warp batching bit-for-bit."""
        workload = get_workload(name, **CORPUS[name])
        with _forced_jit():
            for mode in MODES:
                compiled = _compiled(workload, mode)
                serial = _launch(
                    workload, compiled, GPUMachine, True,
                    n_threads=self.N_THREADS, warp_batch=False, jit=False,
                )
                jit_batched = _launch(
                    workload, compiled, GPUMachine, True,
                    n_threads=self.N_THREADS, warp_batch=True, jit=True,
                )
                assert _fingerprint(jit_batched) == _fingerprint(serial), (
                    name, mode,
                )
                assert jit_batched.profiler.jit_segments > 0, (name, mode)

    def test_jit_composes_with_soa_vector_chunks(self, name):
        """The SoA variant's compiled form calls the segment's own vector
        closures at the interpreter's exact positions; with both gates
        forced the full stack must match the plain engine."""
        if not soa_available():
            pytest.skip("numpy not installed")
        workload = get_workload(name, **CORPUS[name])
        with _forced_soa_gate(), _forced_jit():
            compiled = _compiled(workload, "sr")
            reference = _launch(
                workload, compiled, GPUMachine, True,
                n_threads=self.N_THREADS, soa=False, jit=False,
            )
            jit_vector = _launch(
                workload, compiled, GPUMachine, True,
                n_threads=self.N_THREADS, soa=True, jit=True,
            )
            assert _fingerprint(jit_vector) == _fingerprint(reference), name
            assert jit_vector.profiler.jit_segments > 0, name
            assert jit_vector.profiler.soa_chunks > 0, name

    def test_jit_inert_without_segments(self, name):
        """Compiled code only exists for fused segments; with fusion off
        the JIT knob must change nothing at all."""
        workload = get_workload(name, **CORPUS[name])
        with _forced_jit():
            compiled = _compiled(workload, "sr")
            unfused_jit = _launch(
                workload, compiled, GPUMachine, True, segments=False,
                jit=True,
            )
            assert unfused_jit.profiler.jit_segments == 0
            assert unfused_jit.profiler.jit_tierups == 0
            reference = _launch(
                workload, compiled, GPUMachine, True, segments=False,
                jit=False,
            )
            assert _fingerprint(unfused_jit) == _fingerprint(reference), name


def _grid_launch(workload, compiled, grid_dim, cta_dim, scheduler=None,
                 seed=2020, jobs=1, **machine_kwargs):
    """One grid launch of a compiled workload on a fresh memory."""
    memory = GlobalMemory()
    args = workload.setup(memory)
    kwargs = {"seed": seed, "jobs": jobs, **machine_kwargs}
    if scheduler is not None:
        kwargs["scheduler"] = scheduler
    return GridLaunch(compiled.module, grid_dim, cta_dim, **kwargs).launch(
        workload.kernel_name, args, memory=memory
    )


def _grid_observables(grid):
    return (
        grid.store_traces(),
        grid.retired_per_thread(),
        grid.cycles,
        grid.issued,
        grid.simt_efficiency,
    )


def _flat_observables(launch):
    return (
        launch.store_traces(),
        launch.retired_per_thread(),
        launch.cycles,
        launch.profiler.issued,
        launch.simt_efficiency,
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
class TestGridConformance:
    """Grid launches vs the flat reference engine.

    The single-CTA grid must be *bit-identical* to ``launch()`` — same
    tids, warp ids, RNG streams, traces, cycles — because the flat launch
    is defined as the degenerate grid. Multi-CTA grids of the same thread
    range must agree on every per-thread observable for workloads whose
    memory is deterministic (the SM occupancy model re-times the launch,
    so only ``cycles`` is allowed to differ from flat).
    """

    def test_grid_of_one_cta_bit_identical(self, name):
        workload = get_workload(name, **CORPUS[name])
        for mode in MODES:
            compiled = _compiled(workload, mode)
            flat = _launch(workload, compiled, GPUMachine, True)
            grid = _grid_launch(
                workload, compiled, 1, workload.n_threads
            )
            assert _grid_observables(grid) == _flat_observables(flat), (
                name, mode,
            )
            assert not grid.sharded

    def test_multi_cta_matches_flat_launch(self, name):
        workload = get_workload(name, **CORPUS[name])
        if not workload.deterministic_memory:
            pytest.skip(f"{name} uses a dynamic work queue")
        for mode in MODES:
            compiled = _compiled(workload, mode)
            for scheduler in sorted(SCHEDULERS):
                flat = _launch(
                    workload, compiled, GPUMachine, True, scheduler,
                    n_threads=96,
                )
                grid = _grid_launch(
                    workload, compiled, 3, 32, scheduler=scheduler
                )
                assert grid.store_traces() == flat.store_traces(), (
                    name, mode, scheduler,
                )
                assert (
                    grid.retired_per_thread() == flat.retired_per_thread()
                ), (name, mode, scheduler)
                # ``issued`` is not comparable across launch shapes: the
                # round-robin scheduler's rotation state spans all warps
                # of one launch, so repacking (and with it issue-slot
                # counts) legitimately differs while per-thread results
                # stay invariant.


@st.composite
def ctasync_kernel(draw):
    """A divergent kernel with a CTA-wide barrier at a drawn position:
    uniformly before the loop, inside the divergent branch (threads that
    never take it must shrink the membership by exiting), or after the
    loop (warps arrive at wildly different times). Optionally the CTA also
    cooperates through its shared scratchpad across the barrier."""
    scale = draw(st.integers(2, 8))
    prob = draw(st.floats(0.2, 0.8))
    position = draw(st.sampled_from(["uniform", "divergent", "tail"]))
    use_shared = draw(st.booleans())
    lines = [
        "let t = tid();",
        "let acc = 0.0;",
    ]
    if position == "uniform":
        lines.append("ctasync;")
    lines += [
        f"let trips = floor(hash01(t * 3.7) * {scale}.0) + 1;",
        "let i = 0;",
        "while (i < trips) {",
        "    acc = fma(acc, 1.0003, 0.25);",
    ]
    if position == "divergent":
        lines.append(f"    if (hash01(t * 7.0 + i) < {prob}) {{ ctasync; }}")
    lines += [
        "    i = i + 1;",
        "}",
    ]
    if position == "tail":
        lines.append("ctasync;")
    if use_shared:
        lines += [
            "let ticket = shatom(0, 1.0);",
            "ctasync;",
            "acc = acc + shld(0) + ticket;",
        ]
    lines.append("store(t, acc);")
    body = "\n    ".join(lines)
    return f"kernel k() {{\n    {body}\n}}"


#: Half of each warp parks at the CTA-wide barrier, the other half at a
#: warp-wide sync: neither can open (each waits on lanes parked at the
#: other), which must deadlock identically everywhere.
CROSSED_BARRIERS = """
kernel k() {
    if (tid() - ctaid() * ctadim() < 16) {
        ctasync;
    } else {
        warpsync;
    }
    store(tid(), 1.0);
}
"""


class TestGridFuzzConformance:
    """Hypothesis fuzz for the grid hierarchy: CTA barriers, shared
    scratchpads, and the pool-sharded path against the serial loop."""

    @settings(max_examples=10, deadline=None)
    @given(ctasync_kernel())
    def test_grid_matches_per_cta_flat_launches(self, source):
        """The definitional oracle: a serial grid is exactly successive
        flat launches in cta_id order with explicit CTA contexts on one
        shared memory.

        A divergent-position ``ctasync`` can genuinely deadlock under SR
        compilation — lanes parked at a convergence barrier never arrive
        at the CTA barrier and vice versa, the Section 4.3 conflicting-
        barriers class extended to the CTA barrier (the CUDA
        ``__syncthreads``-under-divergence rule). Conformance then means
        the oracle deadlocks *identically* — same warp, same parked
        lanes — instead of completing."""
        compiled = compile_sr(compile_kernel_source(source))

        def per_cta_flat(consume):
            memory = GlobalMemory()
            machine = GPUMachine(compiled.module, seed=2020)
            for cta_id in range(3):
                consume(machine.launch(
                    "k", 32, memory=memory,
                    cta=CTAContext(
                        cta_id=cta_id, grid_dim=3, cta_dim=32,
                        tid_base=32 * cta_id, warp_base=cta_id,
                        shared_words=4,
                    ),
                ))
            return memory

        try:
            grid = GridLaunch(
                compiled.module, 3, 32, jobs=1, shared_words=4, seed=2020
            ).launch("k")
        except DeadlockError as grid_exc:
            with pytest.raises(DeadlockError) as flat_exc:
                per_cta_flat(lambda result: None)
            assert flat_exc.value.warp_id == grid_exc.warp_id
            assert flat_exc.value.waiting == grid_exc.waiting
            return
        traces, retired, cycles = {}, {}, []

        def collect(result):
            traces.update(result.store_traces())
            retired.update(result.retired_per_thread())
            cycles.append(result.cycles)

        memory = per_cta_flat(collect)
        assert grid.store_traces() == traces
        assert grid.retired_per_thread() == retired
        assert [r["cycles"] for r in grid.cta_records] == cycles
        assert grid.memory.snapshot() == memory.snapshot()

    @settings(max_examples=8, deadline=None)
    @given(ctasync_kernel())
    def test_sharded_grid_matches_serial(self, source):
        """Pool-sharded CTA ranges must reproduce the serial loop
        bit-for-bit whenever the disjointness proof lets them engage
        (under ``REPRO_GRID=0`` both sides take the serial loop and the
        parity is trivial — sharded engagement itself is pinned in
        test_grid.py and the grid benchmark). When the kernel's CTA
        barrier conflicts with SR barriers, the sharded path must surface
        the same DeadlockError the serial loop raises."""
        compiled = compile_sr(compile_kernel_source(source))
        try:
            serial = GridLaunch(
                compiled.module, 4, 32, jobs=1, shared_words=4, seed=2020
            ).launch("k")
        except DeadlockError:
            with pytest.raises(DeadlockError):
                GridLaunch(
                    compiled.module, 4, 32, jobs=2, shared_words=4,
                    seed=2020,
                ).launch("k")
            return
        sharded = GridLaunch(
            compiled.module, 4, 32, jobs=2, shared_words=4, seed=2020
        ).launch("k")
        assert sharded.cta_records == serial.cta_records
        assert sharded.memory.snapshot() == serial.memory.snapshot()
        assert sharded.cycles == serial.cycles
        assert sharded.issued == serial.issued

    def test_crossed_barriers_deadlock_everywhere(self):
        """Deadlock parity across the hierarchy: the flat launch, the
        serial grid, and the sharded grid must all refuse the crossed
        ctasync/warpsync kernel with a DeadlockError (never hang, never
        complete)."""
        compiled = compile_sr(compile_kernel_source(CROSSED_BARRIERS))
        with pytest.raises(DeadlockError) as flat_exc:
            GPUMachine(compiled.module).launch("k", 32)
        assert any(
            waiting_on == "__ctasync__"
            for _, waiting_on in flat_exc.value.waiting
        )
        with pytest.raises(DeadlockError) as serial_exc:
            GridLaunch(compiled.module, 4, 32, jobs=1).launch("k")
        assert serial_exc.value.waiting == flat_exc.value.waiting
        # The pool path re-raises the worker's error (attribute payloads
        # do not survive pickling, the type and message do).
        with pytest.raises(DeadlockError):
            GridLaunch(compiled.module, 4, 32, jobs=2).launch("k")


class TestRandomKernelConformance:
    """The fuzzer shakes the decoded handlers with shapes the Table 2
    corpus may not reach (soft thresholds, interprocedural calls)."""

    @settings(max_examples=15, deadline=None)
    @given(random_kernel())
    def test_fastpath_matches_interpreter(self, program):
        module = lower_program(program)
        compiled = compile_sr(module)
        for machine_cls in (GPUMachine, StackGPUMachine):
            slow = machine_cls(compiled.module, fastpath=False).launch("k", 32)
            fast = machine_cls(compiled.module, fastpath=True).launch("k", 32)
            assert _fingerprint(fast) == _fingerprint(slow), (
                machine_cls.__name__,
            )
        # Segment fusion is a third engine configuration the fuzzer can
        # reach with shapes the corpus lacks (soft thresholds mid-block,
        # calls splitting runs); fused must match unfused exactly.
        fused = GPUMachine(
            compiled.module, fastpath=True, segments=True
        ).launch("k", 32)
        unfused = GPUMachine(
            compiled.module, fastpath=True, segments=False
        ).launch("k", 32)
        assert _fingerprint(fused) == _fingerprint(unfused)

    @settings(max_examples=10, deadline=None)
    @given(random_kernel(allow_atomics=True))
    def test_multiwarp_batched_matches_serial(self, program):
        """Multi-warp fuzz for the warp batcher: random kernels whose
        divergent regions may fetch-and-add a *shared* cell (the fetched
        ticket is observable), launched across three warps. Batched
        lockstep epochs must reproduce the serial interleaving
        bit-for-bit — including the guarded rollback path whenever the
        atomics make footprints collide."""
        module = lower_program(program)
        compiled = compile_sr(module)
        for scheduler in sorted(SCHEDULERS):
            try:
                serial = GPUMachine(
                    compiled.module, scheduler=scheduler, warp_batch=False
                ).launch("k", 96)
            except DeadlockError as serial_exc:
                # The generator can produce kernels whose ticket-dependent
                # barrier membership genuinely deadlocks. Conformance then
                # means the batched engine deadlocks *identically* — same
                # warp, same parked lanes — instead of completing.
                with pytest.raises(DeadlockError) as batched_exc:
                    GPUMachine(
                        compiled.module, scheduler=scheduler, warp_batch=True
                    ).launch("k", 96)
                assert batched_exc.value.warp_id == serial_exc.warp_id
                assert sorted(batched_exc.value.waiting) == sorted(
                    serial_exc.waiting
                ), scheduler
                continue
            batched = GPUMachine(
                compiled.module, scheduler=scheduler, warp_batch=True
            ).launch("k", 96)
            assert _fingerprint(batched) == _fingerprint(serial), scheduler
            assert serial.profiler.batch_epochs == 0

    @settings(max_examples=8, deadline=None)
    @given(random_kernel(allow_atomics=True))
    def test_spec_multiwarp_atomics_matches_serial(self, program):
        """Speculative rounds × warp batching × shared-cell atomics at 96
        threads. The reference is the plain serial engine (no batching,
        no speculation); the full optimistic stack must reproduce it
        bit-for-bit — atomics force real round conflicts and exact
        rollbacks — and when the random ticket-dependent barrier
        membership genuinely deadlocks, deadlock *identically* (same
        warp, same parked lanes)."""
        module = lower_program(program)
        compiled = compile_sr(module)
        try:
            serial = GPUMachine(
                compiled.module, warp_batch=False, spec=False
            ).launch("k", 96)
        except DeadlockError as serial_exc:
            with pytest.raises(DeadlockError) as spec_exc:
                GPUMachine(
                    compiled.module, warp_batch=True, spec=True
                ).launch("k", 96)
            assert spec_exc.value.warp_id == serial_exc.warp_id
            assert sorted(spec_exc.value.waiting) == sorted(
                serial_exc.waiting
            )
            return
        speculative = GPUMachine(
            compiled.module, warp_batch=True, spec=True
        ).launch("k", 96)
        assert _fingerprint(speculative) == _fingerprint(serial)
        assert serial.profiler.spec_rounds == 0

    @settings(max_examples=12, deadline=None)
    @given(random_kernel())
    def test_soa_vector_matches_thread_major(self, program):
        """Random kernels through the forced-open SoA gate: every chunk
        the classifier can vectorize (including on narrow divergent
        groups, width 1 up) must match the thread-major engine
        bit-for-bit — masked partial-group scatters, UNDEF raising,
        constant folding and all."""
        if not soa_available():
            pytest.skip("numpy not installed")
        module = lower_program(program)
        with _forced_soa_gate():
            compiled = compile_sr(module)
            thread_major = GPUMachine(compiled.module, soa=False).launch(
                "k", 32
            )
            vector = GPUMachine(compiled.module, soa=True).launch("k", 32)
        assert _fingerprint(vector) == _fingerprint(thread_major)

    @settings(max_examples=8, deadline=None)
    @given(random_kernel(allow_atomics=True))
    def test_soa_multiwarp_atomics_matches_serial(self, program):
        """SoA × warp batching × shared-cell atomics at 96 threads. The
        reference is the plain serial engine (no batching, no SoA); the
        full stack must reproduce it bit-for-bit — and when the random
        ticket-dependent barrier membership genuinely deadlocks, deadlock
        *identically* (same warp, same parked lanes)."""
        if not soa_available():
            pytest.skip("numpy not installed")
        module = lower_program(program)
        with _forced_soa_gate():
            compiled = compile_sr(module)
            try:
                serial = GPUMachine(
                    compiled.module, warp_batch=False, soa=False
                ).launch("k", 96)
            except DeadlockError as serial_exc:
                with pytest.raises(DeadlockError) as vector_exc:
                    GPUMachine(
                        compiled.module, warp_batch=True, soa=True
                    ).launch("k", 96)
                assert vector_exc.value.warp_id == serial_exc.warp_id
                assert sorted(vector_exc.value.waiting) == sorted(
                    serial_exc.waiting
                )
                return
            vector_batched = GPUMachine(
                compiled.module, warp_batch=True, soa=True
            ).launch("k", 96)
        assert _fingerprint(vector_batched) == _fingerprint(serial)

    @settings(max_examples=12, deadline=None)
    @given(random_kernel())
    def test_jit_matches_interpreted_segments(self, program):
        """Random kernels with tier-up forced: every compiled segment —
        whatever shapes the generator reaches (soft thresholds, calls,
        UNDEF operands, folded constants) — must match the interpreted
        segment engine bit-for-bit."""
        module = lower_program(program)
        with _forced_jit():
            compiled = compile_sr(module)
            interpreted = GPUMachine(compiled.module, jit=False).launch(
                "k", 32
            )
            jitted = GPUMachine(compiled.module, jit=True).launch("k", 32)
        assert _fingerprint(jitted) == _fingerprint(interpreted)

    @settings(max_examples=8, deadline=None)
    @given(random_kernel(allow_atomics=True))
    def test_jit_multiwarp_atomics_matches_serial(self, program):
        """JIT × warp batching × shared-cell atomics at 96 threads. The
        reference is the plain serial engine (no batching, no JIT); the
        full stack must reproduce it bit-for-bit — and when the random
        ticket-dependent barrier membership genuinely deadlocks, deadlock
        *identically* (same warp, same parked lanes)."""
        module = lower_program(program)
        with _forced_jit():
            compiled = compile_sr(module)
            try:
                serial = GPUMachine(
                    compiled.module, warp_batch=False, jit=False
                ).launch("k", 96)
            except DeadlockError as serial_exc:
                with pytest.raises(DeadlockError) as jit_exc:
                    GPUMachine(
                        compiled.module, warp_batch=True, jit=True
                    ).launch("k", 96)
                assert jit_exc.value.warp_id == serial_exc.warp_id
                assert sorted(jit_exc.value.waiting) == sorted(
                    serial_exc.waiting
                )
                return
            jit_batched = GPUMachine(
                compiled.module, warp_batch=True, jit=True
            ).launch("k", 96)
        assert _fingerprint(jit_batched) == _fingerprint(serial)

    @settings(max_examples=15, deadline=None)
    @given(random_kernel())
    def test_pipeline_string_matches_legacy_compiler(self, program):
        """Compiling through an explicit pipeline description must be
        bit-identical (IR and execution) to the mode-resolved legacy
        entry point, for every mode."""
        from repro.core.pipeline import (
            ReconvergenceCompiler,
            pipeline_for_mode,
        )
        from repro.ir.printer import format_module

        module = lower_program(program)
        for mode in MODES:
            legacy = ReconvergenceCompiler().compile(module, mode=mode)
            explicit = ReconvergenceCompiler(
                pipeline=pipeline_for_mode(mode)
            ).compile(module, mode=mode)
            assert format_module(explicit.module) == format_module(
                legacy.module
            ), mode
            legacy_run = GPUMachine(legacy.module).launch("k", 32)
            explicit_run = GPUMachine(explicit.module).launch("k", 32)
            assert _fingerprint(explicit_run) == _fingerprint(legacy_run), mode


RUNAWAY = """
kernel k() {
    let i = 0;
    while (i < 1000000) {
        i = i + 1;
    }
    store(tid(), i);
}
"""


class TestIssueBudget:
    """All engines share one default cap and fail with LaunchError."""

    def test_defaults_aligned(self):
        assert (
            inspect.signature(GPUMachine.__init__)
            .parameters["max_issues"].default
            == DEFAULT_MAX_ISSUES
        )
        assert (
            inspect.signature(StackGPUMachine.__init__)
            .parameters["max_issues"].default
            == DEFAULT_MAX_ISSUES
        )
        assert (
            inspect.signature(run_reference_thread)
            .parameters["max_issues"].default
            == DEFAULT_MAX_ISSUES
        )

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_gpu_machine_overrun_raises_launch_error(self, fastpath):
        module = compile_kernel_source(RUNAWAY)
        with pytest.raises(LaunchError, match="issue slots"):
            GPUMachine(module, max_issues=1000, fastpath=fastpath).launch(
                "k", 32
            )

    @pytest.mark.parametrize("fastpath", [False, True])
    def test_stack_machine_overrun_raises_launch_error(self, fastpath):
        module = compile_kernel_source(RUNAWAY)
        with pytest.raises(LaunchError, match="issue slots"):
            StackGPUMachine(module, max_issues=1000, fastpath=fastpath).launch(
                "k", 32
            )

    def test_reference_overrun_raises_launch_error(self):
        module = compile_kernel_source(RUNAWAY)
        with pytest.raises(LaunchError, match="issue slots"):
            run_reference_thread(module, "k", 0, 32, max_issues=1000)
