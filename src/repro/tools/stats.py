"""stats — engine-layer counter reports, snapshots, and diffs.

Renders the :mod:`repro.obs.counters` registry as a per-layer table so a
sweep answers "which engine layer did the work" (and, across two saved
snapshots, "which layer moved")::

    # one workload launch: per-launch + process counters
    python -m repro.tools.stats funccall --mode sr

    # a corpus sweep, optionally parallel; save the aggregate snapshot
    python -m repro.tools.stats --sweep --jobs 4 --json counters.json

    # the same sweep with per-worker event capture merged into one
    # chrome://tracing timeline (one process row per worker)
    python -m repro.tools.stats --sweep --jobs 4 --events \\
        --trace merged.json

    # the 10^5-thread grid corpus: per-SM occupancy + grid.* counters
    python -m repro.tools.stats --grid --jobs 4

    # the tiered segment JIT: force tier-up over the corpus and report
    # jit.* counters plus per-segment code-cache telemetry
    python -m repro.tools.stats --jit --json jit-counters.json

    # speculative rounds: the corpus multi-warp under every scheduler,
    # reporting where rounds engaged, committed, and conflicted
    python -m repro.tools.stats --spec --workloads mc-gpu mummer

    # which layer moved between two saved snapshots? (BENCH_*.json grid
    # records also diff their per-app sm_occupancy)
    python -m repro.tools.stats --diff before.json after.json

Counters describe the engine, not the simulated program: fusion coverage
and cache hit rates vary with knobs (``REPRO_FASTPATH``,
``REPRO_SEGMENTS``, ...) while results stay bit-identical. ``--events``
flips launches into observing mode, which disables segment fusion and
warp batching for the observed launches — use it for timelines, not for
representative fusion/batching counters.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.pipeline import MODES
from repro.harness.parallel import run_tasks_observed, task
from repro.harness.report import (
    counters_delta_table,
    counters_table,
    format_table,
    sm_occupancy_table,
)
from repro.obs import counters as obs_counters
from repro.obs.chrome_trace import write_merged_worker_trace
from repro.simt.scheduler import SCHEDULERS
from repro.workloads import get_workload, workload_names

#: Default sweep corpus: every registered workload in both compile modes.
_SWEEP_MODES = ("baseline", "sr")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.stats",
        description=(
            "Report per-layer engine counters for a launch, a corpus "
            "sweep, or the diff of two saved snapshots."
        ),
    )
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="workload name to run once (see python -m repro.tools.trace "
             "--list); or use --sweep / --diff",
    )
    parser.add_argument("--mode", default="sr", choices=MODES)
    parser.add_argument(
        "--threshold", type=int, default=None,
        help="soft-barrier threshold (default: workload's choice)",
    )
    parser.add_argument(
        "--scheduler", default="convergence", choices=sorted(SCHEDULERS)
    )
    parser.add_argument("--threads", type=int, default=None,
                        help="launch width (default: workload's)")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--sweep", action="store_true",
        help="run every workload in baseline and sr mode",
    )
    parser.add_argument(
        "--grid", action="store_true",
        help="run the 10^5-thread grid corpus as grid launches and report "
             "per-SM occupancy plus the grid.* counter layer",
    )
    parser.add_argument(
        "--jit", action="store_true",
        help="run the corpus in sr mode with JIT tier-up forced "
             "(threshold 0) and report the jit.* counter layer plus the "
             "compiled-segment telemetry from the tiered code cache",
    )
    parser.add_argument(
        "--spec", action="store_true",
        help="run the corpus multi-warp (128 threads) in sr mode under "
             "every scheduler with speculative rounds on and report the "
             "spec.* counter layer per workload",
    )
    parser.add_argument(
        "--jit-source", action="store_true",
        help="with --jit, also print the generated source of the hottest "
             "compiled segment",
    )
    parser.add_argument(
        "--sm-schedule", action="store_true",
        help="with --grid, also print the full per-SM schedule table "
             "for each app (one row per simulated SM)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="NAME",
        help="restrict --sweep to these workloads",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for --sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="capture simulator events per worker during --sweep "
             "(needed for --trace; disables fusion in observed launches)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the merged multi-worker Chrome trace (implies --events)",
    )
    parser.add_argument(
        "--per-worker", action="store_true",
        help="also print one counter-delta table per worker process",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="save the counter snapshot as JSON (for --diff / compare.py)",
    )
    parser.add_argument(
        "--diff", nargs=2, default=None, metavar=("A", "B"),
        help="print per-layer counter deltas between two saved snapshots",
    )
    return parser


def _save_snapshot(path, counters, meta):
    payload = {"kind": "repro.stats", "counters": counters}
    payload.update(meta)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    print(f"wrote {path}")


def _load_snapshot(path):
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise SystemExit(f"error: {path} is not a counter snapshot")
    return data


def _snapshot_counters(data):
    # Accept bare snapshots, tools.stats files, and BENCH_*.json records.
    if isinstance(data.get("counters"), dict):
        return data["counters"]
    # No counters block (a pre-telemetry BENCH record, a hand-built
    # file): keep only entries that look like namespaced counters so
    # metadata strings ("benchmark", "seed") never reach the delta and a
    # snapshot with newer layers diffs cleanly against this one.
    return {
        name: value
        for name, value in data.items()
        if isinstance(name, str)
        and "." in name
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def _run_diff(path_a, path_b):
    data_a = _load_snapshot(path_a)
    data_b = _load_snapshot(path_b)
    print(counters_delta_table(
        _snapshot_counters(data_b), _snapshot_counters(data_a),
        title=f"Engine counter deltas ({path_b} - {path_a})",
        skip_zero=True,
    ))
    # Grid sweep records and --grid snapshots carry per-app peak SM
    # occupancy; diff it when both sides have one.
    occ_a = data_a.get("sm_occupancy")
    occ_b = data_b.get("sm_occupancy")
    if isinstance(occ_a, dict) and isinstance(occ_b, dict):
        rows = []
        for name in sorted(set(occ_a) | set(occ_b)):
            old = int(occ_a.get(name, 0))
            new = int(occ_b.get(name, 0))
            rows.append((name, old, new, f"{new - old:+d}"))
        print()
        print(format_table(
            ["workload", path_a, path_b, "delta"], rows,
            title="Peak resident warps per SM",
        ))
    return 0


def _run_single(args):
    workload = get_workload(args.workload)
    if args.threads is not None:
        workload.n_threads = args.threads
    threshold = args.threshold if args.threshold is not None else "default"
    before = obs_counters.snapshot()
    result = workload.run(
        mode=args.mode, threshold=threshold, scheduler=args.scheduler,
        seed=args.seed,
    )
    moved = obs_counters.delta(obs_counters.snapshot(), before)
    launch = result.launch
    print(
        f"[{args.mode}] {launch.kernel}: SIMT efficiency "
        f"{launch.simt_efficiency:.1%}, cycles {launch.cycles}, "
        f"issued {launch.profiler.issued}"
    )
    print()
    print(counters_table(launch.counters, title="Launch counters"))
    print()
    print(counters_table(moved, title="Process counter delta (this run)"))
    if args.json:
        _save_snapshot(args.json, moved, {
            "workload": args.workload, "mode": args.mode, "seed": args.seed,
        })
    return 0


def _run_grid(args):
    """Grid-corpus sweep: each app as one :class:`GridLaunch` at the
    canonical grid shape. Reports per-app peak SM occupancy and the
    ``grid.*`` counter layer; the pool shards CTAs when the kernel's
    memory effects prove the CTAs disjoint."""
    from repro.simt import GridLaunch
    from repro.simt.memory import GlobalMemory
    from repro.workloads import GRID_CTA_DIM, GRID_GRID_DIM, grid_corpus

    n_threads = GRID_GRID_DIM * GRID_CTA_DIM
    before = obs_counters.snapshot()
    rows = []
    occupancy = {}
    schedules = {}
    for app in grid_corpus():
        memory = GlobalMemory()
        kernel_args = app.setup(memory, n_threads)
        result = GridLaunch(
            app.module(), GRID_GRID_DIM, GRID_CTA_DIM,
            jobs=args.jobs, seed=args.seed,
        ).launch(app.kernel_name, kernel_args, memory=memory)
        occupancy[app.name] = max(
            entry["resident_warps"] for entry in result.sm_schedule
        )
        schedules[app.name] = result.sm_schedule
        rows.append((
            app.name,
            f"{result.grid_dim}x{result.cta_dim}",
            "pool" if result.sharded else "serial",
            result.cycles,
            f"{result.simt_efficiency:.1%}",
            occupancy[app.name],
        ))
    moved = obs_counters.delta(obs_counters.snapshot(), before)

    print(format_table(
        ["app", "grid", "path", "cycles", "simt eff", "peak warps/SM"],
        rows,
        title=f"Grid corpus ({n_threads} threads per app)",
    ))
    if args.sm_schedule:
        for name, schedule in schedules.items():
            print()
            print(sm_occupancy_table(
                schedule, title=f"SM schedule: {name}"
            ))
    print()
    print(counters_table(moved, title="Process counter delta (grid sweep)"))
    if args.json:
        _save_snapshot(args.json, moved, {
            "grid": sorted(occupancy), "grid_dim": GRID_GRID_DIM,
            "cta_dim": GRID_CTA_DIM, "seed": args.seed, "jobs": args.jobs,
            "sm_occupancy": occupancy,
        })
    return 0


def _run_jit(args):
    """JIT-corpus sweep: every workload in sr mode with tier-up forced
    (threshold 0). Reports per-workload ``jit.*`` launch counters, the
    tiered code cache's per-segment telemetry (hotness, variant, deopt
    status), and the process counter delta."""
    from repro.simt import jit as jit_mod

    names = args.workloads or workload_names()
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        raise SystemExit(f"error: unknown workloads {unknown}")
    before = obs_counters.snapshot()
    rows = []
    was_enabled = jit_mod.set_jit(True)
    was_threshold = jit_mod.set_jit_threshold(0)
    try:
        for name in names:
            result = get_workload(name).run(mode="sr", seed=args.seed)
            counters = result.launch.counters
            rows.append((
                name,
                result.cycles,
                counters.get("jit.executed_segments", 0),
                counters.get("jit.tierups", 0),
                counters.get("jit.deopts", 0),
            ))
    finally:
        jit_mod.set_jit(was_enabled)
        jit_mod.set_jit_threshold(was_threshold)
    moved = obs_counters.delta(obs_counters.snapshot(), before)

    print(format_table(
        ["workload", "cycles", "jit segments", "tierups", "deopts"], rows,
        title=f"JIT corpus sweep ({len(rows)} workloads, threshold 0)",
    ))
    segments = jit_mod.compiled_segments()
    if segments:
        print()
        print(format_table(
            ["segment", "variant", "slots", "hits", "status"],
            [
                (r["segment"], r["variant"], r["slots"], r["hits"],
                 "deopt" if r["deopt"] else "compiled")
                for r in segments
            ],
            title="Code cache (hottest first)",
        ))
    if args.jit_source:
        hottest = next((r for r in segments if r["source"]), None)
        if hottest is not None:
            print()
            print(f"generated source ({hottest['segment']}):")
            print(hottest["source"])
    print()
    print(counters_table(moved, title="Process counter delta (JIT sweep)"))
    if args.json:
        _save_snapshot(args.json, moved, {
            "jit": names, "threshold": 0, "seed": args.seed,
            "code_cache": jit_mod.CODE_CACHE.stats(),
            "compiled_segments": [
                {k: v for k, v in record.items() if k != "source"}
                for record in segments
            ],
        })
    return 0


def _run_spec(args):
    """Spec-corpus sweep: every workload at a multi-warp width in sr mode
    under every scheduler, speculative rounds on. Reports per-(workload,
    scheduler) round telemetry — where speculation engaged, how much it
    committed, and what conflicted — plus the process counter delta."""
    names = args.workloads or workload_names()
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        raise SystemExit(f"error: unknown workloads {unknown}")
    n_threads = args.threads or 128
    before = obs_counters.snapshot()
    rows = []
    for name in names:
        for scheduler in sorted(SCHEDULERS):
            workload = get_workload(name)
            workload.n_threads = n_threads
            result = workload.run(
                mode="sr", scheduler=scheduler, seed=args.seed,
            )
            counters = result.launch.counters
            rows.append((
                name,
                scheduler,
                result.cycles,
                counters.get("spec.rounds", 0),
                counters.get("spec.committed", 0),
                counters.get("spec.retries", 0),
                counters.get("spec.backoffs", 0),
                counters.get("spec.peak_footprint", 0),
            ))
    moved = obs_counters.delta(obs_counters.snapshot(), before)

    print(format_table(
        ["workload", "scheduler", "cycles", "rounds", "committed",
         "retries", "backoffs", "peak fp"],
        rows,
        title=(
            f"Speculative round sweep ({len(names)} workloads, "
            f"{n_threads} threads)"
        ),
    ))
    print()
    print(counters_table(moved, title="Process counter delta (spec sweep)"))
    if args.json:
        _save_snapshot(args.json, moved, {
            "spec": names, "n_threads": n_threads, "seed": args.seed,
            "schedulers": sorted(SCHEDULERS),
        })
    return 0


def _sweep_point(name, mode, seed):
    """Module-level sweep task (workers import it by reference)."""
    result = get_workload(name).run(mode=mode, seed=seed)
    return {
        "workload": name,
        "mode": mode,
        "cycles": result.cycles,
        "simt_efficiency": result.simt_efficiency,
    }


def _run_sweep(args):
    names = args.workloads or workload_names()
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        raise SystemExit(f"error: unknown workloads {unknown}")
    events = args.events or args.trace is not None
    tasks = [
        task(_sweep_point, name, mode, args.seed)
        for name in names
        for mode in _SWEEP_MODES
    ]
    before = obs_counters.snapshot()
    results, reports = run_tasks_observed(
        tasks, jobs=args.jobs, events=events
    )
    aggregate = obs_counters.merge(rep["counters"] for rep in reports)

    rows = [
        (r["workload"], r["mode"], r["cycles"], f"{r['simt_efficiency']:.1%}")
        for r in results
    ]
    print(format_table(
        ["workload", "mode", "cycles", "simt eff"], rows,
        title=f"Corpus sweep ({len(results)} points)",
    ))
    print()
    print(counters_table(aggregate, title="Aggregate engine counters"))

    workers = sorted({rep["pid"] for rep in reports})
    print()
    print(f"workers: {len(workers)} (pids {workers})")
    if args.per_worker and len(workers) > 1:
        for pid in workers:
            per = obs_counters.merge(
                rep["counters"] for rep in reports if rep["pid"] == pid
            )
            print()
            print(counters_table(per, title=f"Worker pid {pid}"))

    if args.trace:
        # One event stream per worker pid, submission order within each.
        streams, labels = [], []
        for pid in workers:
            streams.append([
                event
                for rep in reports
                if rep["pid"] == pid
                for event in rep["events"]
            ])
            labels.append(f"worker pid {pid}")
        data = write_merged_worker_trace(args.trace, streams, labels=labels)
        print(f"wrote {args.trace} ({len(data['traceEvents'])} trace events)")

    if args.json:
        _save_snapshot(args.json, aggregate, {
            "sweep": names, "modes": list(_SWEEP_MODES), "seed": args.seed,
            "jobs": args.jobs, "events": events,
            "process_delta": obs_counters.delta(
                obs_counters.snapshot(), before
            ),
        })
    return 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.diff is not None:
        return _run_diff(*args.diff)
    if args.grid:
        return _run_grid(args)
    if args.jit:
        return _run_jit(args)
    if args.spec:
        return _run_spec(args)
    if args.sweep:
        return _run_sweep(args)
    if args.workload is None:
        build_parser().error(
            "give a WORKLOAD, --sweep, --grid, --jit, --spec, or "
            "--diff A B"
        )
    return _run_single(args)


if __name__ == "__main__":
    sys.exit(main())
