"""Soft barriers (Section 4.6).

A soft barrier guarantees "some minimum degree of convergence at the
specified location, while ensuring that newly serialized code regions have
their executions amortized across more threads": the wait at the predicted
reconvergence point releases its collected pool once ``threshold`` threads
have arrived, instead of waiting for every possible participant.

Mechanically this library lowers a soft prediction to ``bsync.soft b, k``
at the reconvergence point (the barrier subsystem releases the parked pool
at ``k``, or when the whole membership is parked — the paper's
"threshold is not satisfiable" escape in Figure 6). The barrier-register
indirection of Figure 6 (``bTemp = bCount`` via ``bmov``/``barcnt``) is
supported by the ISA and demonstrated in :func:`expand_fig6_style`, which
builds the counting variant explicitly for one wait.
"""

from __future__ import annotations

from repro.core.primitives import barrier_name_of, is_wait
from repro.errors import TransformError
from repro.ir.instructions import Barrier, Imm, Instruction, Opcode


def set_prediction_threshold(function, threshold, label=None):
    """Mark ``Predict`` directives in ``function`` with a soft threshold.

    Args:
        threshold: minimum collected threads before the pool proceeds.
            ``None`` restores a hard barrier.
        label: restrict to the directive predicting this label (default:
            every directive in the function).
    Returns the number of directives updated.
    """
    updated = 0
    for _, _, instr in function.instructions():
        if instr.opcode is not Opcode.PREDICT:
            continue
        if label is not None and instr.attrs.get("label") != label:
            continue
        if threshold is None:
            instr.attrs.pop("threshold", None)
        else:
            instr.attrs["threshold"] = int(threshold)
        updated += 1
    return updated


def soften_waits(function, barrier, threshold):
    """Post-compile: convert hard waits on ``barrier`` to soft waits.

    Lets the harness sweep thresholds (Figure 9) without re-running the
    whole pipeline. Returns the number of waits converted.
    """
    converted = 0
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            if instr.opcode is Opcode.BSYNC and barrier_name_of(instr) == barrier:
                block.instructions[index] = Instruction(
                    Opcode.BSYNCSOFT,
                    operands=[Barrier(barrier), Imm(int(threshold))],
                    attrs=dict(instr.attrs),
                )
                converted += 1
    return converted


def expand_fig6_style(function, block_name, wait_index, threshold):
    """Rewrite one hard wait into the explicit counting form of Figure 6.

    The wait ``bsync b`` at ``(block_name, wait_index)`` becomes::

        %cnt = barcnt $b          ; arrivedThreads(bCount)
        %p   = cmple %cnt, threshold
        bsync.soft $b, threshold  ; park while below threshold

    with the predicate left in a register for inspection — this variant
    exists to exercise the ``barcnt``/``bmov`` ISA surface the paper's
    Figure 6 relies on; the compact ``bsync.soft`` lowering above is what
    the pipeline emits.
    """
    block = function.block(block_name)
    instr = block.instructions[wait_index]
    if not is_wait(instr):
        raise TransformError(
            f"@{function.name}/{block_name}:{wait_index} is not a wait"
        )
    barrier = barrier_name_of(instr)
    cnt = function.new_reg("cnt")
    pred = function.new_reg("p")
    replacement = [
        Instruction(Opcode.BARCNT, dst=cnt, operands=[Barrier(barrier)]),
        Instruction(
            Opcode.CMPLE, dst=pred, operands=[cnt, Imm(int(threshold))]
        ),
        Instruction(
            Opcode.BSYNCSOFT,
            operands=[Barrier(barrier), Imm(int(threshold))],
            attrs=dict(instr.attrs),
        ),
    ]
    block.instructions[wait_index : wait_index + 1] = replacement
    return barrier, cnt, pred
