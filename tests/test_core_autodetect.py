"""Automatic detection heuristics (Section 4.5)."""

from repro.core import (
    ReconvergenceCompiler,
    detect_and_annotate,
    detect_candidates,
)
from repro.core.autodetect import KIND_ITERATION_DELAY, KIND_LOOP_MERGE
from repro.frontend import compile_kernel_source
from repro.ir import Opcode
from repro.simt import GPUMachine
from repro.workloads import get_workload
from tests.helpers import loop_merge_source

ITERATION_DELAY_SRC = """
kernel k() {
    let x = 0.0;
    let t = tid();
    for i in 0..16 {
        x = x * 0.99;
        if (hash01(t * 3.0 + i) < 0.2) {
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
        }
    }
    store(t, x);
}
"""

BALANCED_SRC = """
kernel k() {
    let x = 0.0;
    let y = 0.0;
    let t = tid();
    for i in 0..12 {
        if (hash01(t + i) < 0.5) {
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
        } else {
            y = fma(y, 1.01, 0.5); y = fma(y, 1.01, 0.5);
            y = fma(y, 1.01, 0.5); y = fma(y, 1.01, 0.5);
        }
    }
    store(t, x + y);
}
"""

WARPSYNC_SRC = """
kernel k() {
    let x = 0.0;
    let t = tid();
    while (t < 64) {
        let u = hash01(t * 1.1);
        let trips = floor(u * 20.0) + 1;
        let j = 0;
        while (j < trips) {
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            x = fma(x, 1.01, 0.5); x = fma(x, 1.01, 0.5);
            warpsync;
            j = j + 1;
        }
        t = t + 32;
    }
    store(tid(), x);
}
"""

UNIFORM_SRC = """
kernel k() {
    let x = 0.0;
    for i in 0..10 { x = fma(x, 1.01, 0.5); }
    store(tid(), x);
}
"""


class TestDetection:
    def test_loop_merge_detected(self):
        module = compile_kernel_source(loop_merge_source())
        candidates = detect_candidates(module.function("lm"))
        accepted = [c for c in candidates if c.accepted]
        assert any(c.kind == KIND_LOOP_MERGE for c in accepted)

    def test_iteration_delay_detected(self):
        module = compile_kernel_source(ITERATION_DELAY_SRC)
        candidates = detect_candidates(module.function("k"))
        accepted = [c for c in candidates if c.accepted]
        assert any(c.kind == KIND_ITERATION_DELAY for c in accepted)

    def test_balanced_branches_rejected(self):
        module = compile_kernel_source(BALANCED_SRC)
        candidates = detect_candidates(module.function("k"))
        assert not [c for c in candidates if c.accepted]
        assert any(c.rejected == "balanced-paths" for c in candidates)

    def test_warpsync_region_rejected(self):
        module = compile_kernel_source(WARPSYNC_SRC)
        candidates = detect_candidates(module.function("k"))
        assert not [c for c in candidates if c.accepted]
        assert any(c.rejected == "warpsync" for c in candidates)

    def test_uniform_kernel_no_candidates(self):
        module = compile_kernel_source(UNIFORM_SRC)
        assert detect_candidates(module.function("k")) == []

    def test_rsbench_loop_merge_found(self):
        module = get_workload("rsbench").module()
        candidates = detect_candidates(module.function("rsbench_lookup"))
        accepted = [c for c in candidates if c.accepted]
        assert accepted and accepted[0].kind == KIND_LOOP_MERGE
        # The label is the inner-loop body side.
        assert accepted[0].label_block.startswith(("while.body", "L."))

    def test_candidate_describe(self):
        module = compile_kernel_source(loop_merge_source())
        candidate = detect_candidates(module.function("lm"))[0]
        text = candidate.describe()
        assert candidate.kind in text and candidate.label_block in text


class TestProfileGuided:
    def test_profile_rejects_already_efficient_regions(self):
        module = compile_kernel_source(UNIFORM_SRC + loop_merge_source())
        prog = ReconvergenceCompiler().compile(module, mode="baseline")
        launch = GPUMachine(prog.module).launch("lm", 32, args=(32 * 4,))
        candidates = detect_candidates(
            module.function("lm"), profiler=launch.profiler
        )
        # The divergent inner loop really is inefficient: stays accepted.
        assert [c for c in candidates if c.accepted]

    def test_profile_costs_used(self):
        module = compile_kernel_source(loop_merge_source())
        prog = ReconvergenceCompiler().compile(module, mode="baseline")
        launch = GPUMachine(prog.module).launch("lm", 32, args=(32 * 4,))
        static = detect_candidates(module.function("lm"))[0]
        profiled = detect_candidates(
            module.function("lm"), profiler=launch.profiler
        )[0]
        assert profiled.common_cost != static.common_cost


def _unannotated_loop_merge():
    """loop_merge_source without the user's own predict directive."""
    return compile_kernel_source(
        loop_merge_source().replace("    predict L1;\n", "")
    )


class TestAnnotation:
    def test_detect_and_annotate_inserts_directive(self):
        module = _unannotated_loop_merge()
        candidates = detect_and_annotate(module)
        accepted = [c for c in candidates if c.accepted]
        assert accepted
        fn = module.function("lm")
        predicts = [
            i for _, _, i in fn.instructions() if i.opcode is Opcode.PREDICT
        ]
        assert len(predicts) == 1
        assert predicts[0].attrs["threshold"] == 16

    def test_per_function_limit(self):
        module = _unannotated_loop_merge()
        detect_and_annotate(module, max_per_function=0)
        fn = module.function("lm")
        predicts = [
            i for _, _, i in fn.instructions() if i.opcode is Opcode.PREDICT
        ]
        assert not predicts

    def test_auto_mode_end_to_end_matches_baseline_results(self):
        module = _unannotated_loop_merge()
        baseline = ReconvergenceCompiler().compile(module, mode="baseline")
        auto = ReconvergenceCompiler().compile(module, mode="auto")
        assert [c for c in auto.report.auto_candidates if c.accepted]
        a = GPUMachine(baseline.module).launch("lm", 32, args=(32 * 4,))
        b = GPUMachine(auto.module).launch("lm", 32, args=(32 * 4,))
        assert a.memory.snapshot() == b.memory.snapshot()
