"""Warp convergence-barrier state (Volta BSSY / BSYNC / BREAK semantics).

Each warp owns a :class:`BarrierFile` mapping barrier names to
:class:`ConvergenceBarrier` records. Semantics (Section 2 of the paper):

* ``join`` (BSSY): the thread becomes a member. Re-joining is idempotent.
* ``park`` (BSYNC): the thread waits. A *hard* wait releases the full
  membership when every member is parked.
* ``park`` with a threshold (``bsync.soft``, Section 4.6): the parked pool
  releases as soon as it reaches the threshold, or when the whole
  membership is parked (threshold unsatisfiable by more arrivals).
* ``withdraw`` (BREAK): removes a thread from the membership; removal can
  complete a release for the remaining parked members.
* thread exit withdraws from every barrier (hardware drains exited lanes).

Releases *clear the released threads' membership*: a thread that expects to
wait again must re-join (the paper's ``RejoinBarrier``).

Lane sets are stored as int bitmasks (lanes are 0..31, so membership tests,
emptiness checks, and counts are single machine ops instead of hashed set
operations — this state is touched on every issue slot's release drain).
``members`` / ``parked`` remain available as set views for callers and
tests that reason about lane sets.
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Sentinel threshold meaning "wait for all members" (hard barrier).
ALL_MEMBERS = None


#: Shared empty result for the no-release case — ``releasable`` runs on
#: every issue slot's drain, so the common miss must not allocate.
_EMPTY_LANES = frozenset()


def _mask_lanes(mask):
    """The set of lane ids whose bits are set in ``mask``."""
    lanes = set()
    while mask:
        low = mask & -mask
        lanes.add(low.bit_length() - 1)
        mask ^= low
    return lanes


class ConvergenceBarrier:
    """Membership and parked lane bitmasks for one named barrier."""

    __slots__ = ("name", "members_mask", "parked_mask", "thresholds",
                 "_soft_count")

    def __init__(self, name):
        self.name = name
        self.members_mask = 0     # lanes that joined and have not cleared
        self.parked_mask = 0      # subset of members currently waiting
        self.thresholds = {}      # lane -> threshold (None for hard waits)
        self._soft_count = 0      # parked lanes carrying a soft threshold

    # Set views kept for observability and tests; the hot paths use the
    # masks directly.
    @property
    def members(self):
        return _mask_lanes(self.members_mask)

    @property
    def parked(self):
        return _mask_lanes(self.parked_mask)

    def join(self, lane):
        self.members_mask |= 1 << lane

    def withdraw(self, lane):
        keep = ~(1 << lane)
        self.members_mask &= keep
        self.parked_mask &= keep
        if self.thresholds.pop(lane, ALL_MEMBERS) is not ALL_MEMBERS:
            self._soft_count -= 1

    def park(self, lane, threshold=ALL_MEMBERS):
        if not (self.members_mask >> lane) & 1:
            # Waiting on a barrier you are not part of is a no-op in
            # hardware; the caller treats this as pass-through.
            return False
        self.parked_mask |= 1 << lane
        if self.thresholds.get(lane, ALL_MEMBERS) is not ALL_MEMBERS:
            self._soft_count -= 1
        self.thresholds[lane] = threshold
        if threshold is not ALL_MEMBERS:
            self._soft_count += 1
        return True

    def releasable(self):
        """The set of lanes to release now, or empty set."""
        parked = self.parked_mask
        if not parked:
            return _EMPTY_LANES
        if parked == self.members_mask:
            return _mask_lanes(parked)
        # Hard waits only (the overwhelmingly common case): an incomplete
        # parked set cannot release, so skip the soft-threshold scan.
        if self._soft_count:
            soft = [
                t for t in self.thresholds.values() if t is not ALL_MEMBERS
            ]
            if parked.bit_count() >= min(soft):
                return _mask_lanes(parked)
        return _EMPTY_LANES

    def release(self, lanes):
        """Clear ``lanes`` out of the barrier (they proceed past their wait)."""
        for lane in lanes:
            bit = 1 << lane
            if not self.parked_mask & bit:
                raise SimulationError(
                    f"releasing lane {lane} not parked on barrier {self.name}"
                )
            self.members_mask &= ~bit
            self.parked_mask &= ~bit
            if self.thresholds.pop(lane, ALL_MEMBERS) is not ALL_MEMBERS:
                self._soft_count -= 1

    @property
    def arrived_count(self):
        """arrivedThreads() of Figure 6: members that have joined."""
        return self.members_mask.bit_count()

    def __repr__(self):
        return (
            f"<Barrier {self.name} members={sorted(self.members)} "
            f"parked={sorted(self.parked)}>"
        )


class BarrierFile:
    """All convergence barriers of one warp, created on first use."""

    def __init__(self):
        self._barriers = {}

    def get(self, name):
        barrier = self._barriers.get(name)
        if barrier is None:
            barrier = ConvergenceBarrier(name)
            self._barriers[name] = barrier
        return barrier

    def withdraw_from_all(self, lane):
        """Remove an exiting thread from every barrier; returns barriers
        whose release condition may have newly become true."""
        touched = []
        bit = 1 << lane
        for barrier in self._barriers.values():
            if (barrier.members_mask | barrier.parked_mask) & bit:
                barrier.withdraw(lane)
                touched.append(barrier)
        return touched

    def all_releasable(self):
        """(barrier, lanes) pairs whose release condition currently holds."""
        result = []
        for barrier in self._barriers.values():
            if barrier.parked_mask:
                lanes = barrier.releasable()
                if lanes:
                    result.append((barrier, lanes))
        return result

    def parked_anywhere(self):
        """All lanes parked on any barrier."""
        mask = 0
        for barrier in self._barriers.values():
            mask |= barrier.parked_mask
        return _mask_lanes(mask)

    def barriers(self):
        return list(self._barriers.values())

    def barriers_dict(self):
        """The live name -> barrier mapping (read-only use)."""
        return self._barriers

    def __contains__(self, name):
        return name in self._barriers
