"""srkc CLI driver tests."""

import pytest

from repro.tools.srkc import build_parser, main

KERNEL = """
kernel axpy(n) {
    let i = tid();
    if (i < n) {
        store(100 + i, i * 2.0 + 1.0);
    }
}
"""

DIVERGENT = """
kernel d() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..16 {
        if (hash01(t * 9.0 + i) < 0.2) {
            label L1: acc = acc + 1.0;
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
        }
    }
    store(t, acc);
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "axpy.srk"
    path.write_text(KERNEL)
    return str(path)


@pytest.fixture
def divergent_file(tmp_path):
    path = tmp_path / "d.srk"
    path.write_text(DIVERGENT)
    return str(path)


class TestCLI:
    def test_compile_only(self, kernel_file, capsys):
        assert main([kernel_file]) == 0
        assert capsys.readouterr().out == ""

    def test_emit_ir(self, kernel_file, capsys):
        main([kernel_file, "--emit-ir"])
        out = capsys.readouterr().out
        assert "func @axpy" in out and "kernel" in out

    def test_run_with_args(self, kernel_file, capsys):
        assert main([kernel_file, "--run", "--args", "8", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "SIMT efficiency" in out

    def test_dump_memory(self, kernel_file, capsys):
        main([kernel_file, "--run", "--args", "4", "--dump-memory"])
        out = capsys.readouterr().out
        assert "mem[100]" in out and "mem[103]" in out

    def test_compare_baseline(self, divergent_file, capsys):
        main([divergent_file, "--run", "--compare-baseline", "--threshold", "8"])
        out = capsys.readouterr().out
        assert "[sr]" in out and "[baseline]" in out and "speedup" in out

    def test_report(self, divergent_file, capsys):
        main([divergent_file, "--report"])
        out = capsys.readouterr().out
        assert "Predict" in out

    def test_optimize_flag(self, divergent_file, capsys):
        main([divergent_file, "--report", "--optimize"])
        out = capsys.readouterr().out
        assert "opt:" in out

    def test_mode_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["x.srk", "--mode", "hyperdrive"])

    def test_float_args(self, tmp_path, capsys):
        path = tmp_path / "f.srk"
        path.write_text("kernel f(x) { store(tid(), x * 2.0); }")
        main([str(path), "--run", "--args", "1.5", "--dump-memory", "--threads", "1"])
        out = capsys.readouterr().out
        assert "3.0" in out

    def test_example_kernels_compile_and_run(self, capsys):
        for path, args in (
            ("examples/kernels/iteration_delay.srk", ["--args", "16"]),
            ("examples/kernels/loop_merge.srk", ["--args", "64"]),
        ):
            assert main([path, "--run"] + args) == 0
