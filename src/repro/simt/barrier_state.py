"""Warp convergence-barrier state (Volta BSSY / BSYNC / BREAK semantics).

Each warp owns a :class:`BarrierFile` mapping barrier names to
:class:`ConvergenceBarrier` records. Semantics (Section 2 of the paper):

* ``join`` (BSSY): the thread becomes a member. Re-joining is idempotent.
* ``park`` (BSYNC): the thread waits. A *hard* wait releases the full
  membership when every member is parked.
* ``park`` with a threshold (``bsync.soft``, Section 4.6): the parked pool
  releases as soon as it reaches the threshold, or when the whole
  membership is parked (threshold unsatisfiable by more arrivals).
* ``withdraw`` (BREAK): removes a thread from the membership; removal can
  complete a release for the remaining parked members.
* thread exit withdraws from every barrier (hardware drains exited lanes).

Releases *clear the released threads' membership*: a thread that expects to
wait again must re-join (the paper's ``RejoinBarrier``).
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Sentinel threshold meaning "wait for all members" (hard barrier).
ALL_MEMBERS = None


class ConvergenceBarrier:
    """Membership and parked sets for one named barrier."""

    __slots__ = ("name", "members", "parked", "thresholds")

    def __init__(self, name):
        self.name = name
        self.members = set()      # lane ids that joined and have not cleared
        self.parked = set()       # subset of members currently waiting
        self.thresholds = {}      # lane -> threshold (None for hard waits)

    def join(self, lane):
        self.members.add(lane)

    def withdraw(self, lane):
        self.members.discard(lane)
        self.parked.discard(lane)
        self.thresholds.pop(lane, None)

    def park(self, lane, threshold=ALL_MEMBERS):
        if lane not in self.members:
            # Waiting on a barrier you are not part of is a no-op in
            # hardware; the caller treats this as pass-through.
            return False
        self.parked.add(lane)
        self.thresholds[lane] = threshold
        return True

    def releasable(self):
        """The set of lanes to release now, or empty set."""
        if not self.parked:
            return set()
        if self.parked == self.members:
            return set(self.parked)
        soft = [t for t in self.thresholds.values() if t is not ALL_MEMBERS]
        if soft and len(self.parked) >= min(soft):
            return set(self.parked)
        return set()

    def release(self, lanes):
        """Clear ``lanes`` out of the barrier (they proceed past their wait)."""
        for lane in lanes:
            if lane not in self.parked:
                raise SimulationError(
                    f"releasing lane {lane} not parked on barrier {self.name}"
                )
            self.members.discard(lane)
            self.parked.discard(lane)
            self.thresholds.pop(lane, None)

    @property
    def arrived_count(self):
        """arrivedThreads() of Figure 6: members that have joined."""
        return len(self.members)

    def __repr__(self):
        return (
            f"<Barrier {self.name} members={sorted(self.members)} "
            f"parked={sorted(self.parked)}>"
        )


class BarrierFile:
    """All convergence barriers of one warp, created on first use."""

    def __init__(self):
        self._barriers = {}

    def get(self, name):
        barrier = self._barriers.get(name)
        if barrier is None:
            barrier = ConvergenceBarrier(name)
            self._barriers[name] = barrier
        return barrier

    def withdraw_from_all(self, lane):
        """Remove an exiting thread from every barrier; returns barriers
        whose release condition may have newly become true."""
        touched = []
        for barrier in self._barriers.values():
            if lane in barrier.members or lane in barrier.parked:
                barrier.withdraw(lane)
                touched.append(barrier)
        return touched

    def all_releasable(self):
        """(barrier, lanes) pairs whose release condition currently holds."""
        result = []
        for barrier in self._barriers.values():
            lanes = barrier.releasable()
            if lanes:
                result.append((barrier, lanes))
        return result

    def parked_anywhere(self):
        """All lanes parked on any barrier."""
        lanes = set()
        for barrier in self._barriers.values():
            lanes |= barrier.parked
        return lanes

    def barriers(self):
        return list(self._barriers.values())

    def barriers_dict(self):
        """The live name -> barrier mapping (read-only use)."""
        return self._barriers

    def __contains__(self, name):
        return name in self._barriers
