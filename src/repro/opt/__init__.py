"""Classic IR optimizations, safe around reconvergence annotations."""

from repro.opt.constfold import fold_function, fold_module
from repro.opt.dce import dce_module, eliminate_dead_code
from repro.opt.pass_manager import (
    STANDARD_PASSES,
    OptReport,
    PassManager,
    optimize_module,
)
from repro.opt.simplify_cfg import simplify_function, simplify_module

__all__ = [
    "OptReport",
    "PassManager",
    "STANDARD_PASSES",
    "dce_module",
    "eliminate_dead_code",
    "fold_function",
    "fold_module",
    "optimize_module",
    "simplify_function",
    "simplify_module",
]
