"""Unit tests for the segment-fused execution engine (repro.simt.segments).

The conformance matrix (tests/test_conformance.py) pins fused-vs-unfused
bit-identity over the corpus; this file tests the machinery directly:
segment partitioning, the forced-pick contract, every fallback trigger,
the slot-indexed register files, and the UNDEF sentinel.
"""

import pytest

from repro.errors import SimulationError
from repro.frontend import compile_kernel_source
from repro.ir.instructions import Opcode
from repro.obs.sinks import ListSink
from repro.simt import (
    DEFAULT_COST_MODEL,
    GPUMachine,
    decode_program,
    segments_disabled,
    segments_enabled,
    set_segments,
)
from repro.simt.scheduler import (
    ConvergenceScheduler,
    OldestFirstScheduler,
    RoundRobinScheduler,
)
from repro.simt.warp import UNDEF

STRAIGHT = """
kernel k() {
    let a = tid();
    let b = a * 2;
    let c = b + 1;
    store(a, c);
}
"""

LOOPED = """
kernel k() {
    let i = 0;
    let acc = 0;
    while (i < 8) {
        acc = acc + i * 3;
        i = i + 1;
    }
    store(tid(), acc);
}
"""

DIVERGENT = """
kernel k() {
    let x = 0;
    if (tid() % 2 == 0) {
        x = tid() * 2;
    } else {
        x = tid() * 3 + 1;
    }
    store(tid(), x);
}
"""


def _fingerprint(result):
    return (
        result.store_traces(),
        result.retired_per_thread(),
        result.profiler.issued,
        result.profiler.total_cycles,
        result.profiler.simt_efficiency,
    )


def _run(module, **kwargs):
    n_threads = kwargs.pop("n_threads", 32)
    return GPUMachine(module, **kwargs).launch("k", n_threads)


# ---------------------------------------------------------------------------
# Fusion fires, and every escape hatch falls back with identical results
# ---------------------------------------------------------------------------
class TestFusionAndFallback:
    def test_fusion_fires_on_straight_line_code(self):
        module = compile_kernel_source(LOOPED)
        fused = _run(module, segments=True)
        assert fused.profiler.fused_issues > 0
        assert fused.profiler.fused_segments > 0
        assert fused.profiler.fused_issues <= fused.profiler.issued

    def test_machine_kwarg_off_is_bit_identical(self):
        module = compile_kernel_source(LOOPED)
        fused = _run(module, segments=True)
        unfused = _run(module, segments=False)
        assert unfused.profiler.fused_issues == 0
        assert _fingerprint(fused) == _fingerprint(unfused)

    def test_global_toggle_and_context_manager(self):
        module = compile_kernel_source(STRAIGHT)
        assert segments_enabled()  # repo default
        with segments_disabled():
            assert not segments_enabled()
            off = _run(module)  # segments=None defers to the global
            assert off.profiler.fused_issues == 0
        assert segments_enabled()
        on = _run(module)
        assert on.profiler.fused_issues > 0
        assert _fingerprint(on) == _fingerprint(off)

    def test_set_segments_returns_previous(self):
        previous = set_segments(False)
        try:
            assert previous is True
            assert set_segments(True) is False
        finally:
            set_segments(previous)

    @staticmethod
    def _event_key(event):
        return tuple(
            getattr(event, field)
            for field in ("kind", "warp_id", "ts")
        ) + tuple(
            getattr(event, field, None)
            for field in ("function", "block", "index", "opcode", "lanes",
                          "dur", "active", "barrier", "targets", "parked")
        )

    def test_trace_disables_fusion_with_identical_trace(self):
        module = compile_kernel_source(LOOPED)
        traced = _run(module, trace=True, segments=True)
        assert traced.profiler.fused_issues == 0
        reference = _run(module, trace=True, segments=False)
        assert (
            [self._event_key(e) for e in traced.profiler.trace]
            == [self._event_key(e) for e in reference.profiler.trace]
        )

    def test_sink_disables_fusion_with_identical_events(self):
        module = compile_kernel_source(LOOPED)
        sink = ListSink()
        observed = _run(module, sink=sink, segments=True)
        assert observed.profiler.fused_issues == 0
        reference_sink = ListSink()
        reference = _run(module, sink=reference_sink, segments=False)
        assert (
            [self._event_key(e) for e in sink.events]
            == [self._event_key(e) for e in reference_sink.events]
        )
        assert _fingerprint(observed) == _fingerprint(reference)

    def test_fastpath_off_disables_fusion(self):
        module = compile_kernel_source(LOOPED)
        result = _run(module, fastpath=False, segments=True)
        assert result.profiler.fused_issues == 0

    def test_multi_warp_launch_is_bit_identical(self):
        """With several live warps only the surviving tail may fuse; the
        interleaved phase must stay per-instruction and results must not
        move either way."""
        module = compile_kernel_source(DIVERGENT)
        fused = _run(module, segments=True, n_threads=96)
        unfused = _run(module, segments=False, n_threads=96)
        assert _fingerprint(fused) == _fingerprint(unfused)

    def test_divergent_kernel_still_fuses_forced_picks(self):
        module = compile_kernel_source(DIVERGENT)
        fused = _run(module, segments=True)
        unfused = _run(module, segments=False)
        assert _fingerprint(fused) == _fingerprint(unfused)

    def test_runaway_kernel_still_hits_issue_budget(self):
        from repro.errors import LaunchError

        runaway = """
        kernel k() {
            let i = 0;
            while (i < 1000000) {
                i = i + 1;
            }
            store(tid(), i);
        }
        """
        module = compile_kernel_source(runaway)
        with pytest.raises(LaunchError, match="issue slots"):
            _run(module, segments=True, max_issues=1000)

    def test_summary_has_no_fused_counters(self):
        """Fused diagnostics must not leak into the pinned summary shape."""
        module = compile_kernel_source(STRAIGHT)
        summary = _run(module, segments=True).profiler.summary()
        assert "fused_issues" not in summary
        assert "fused_segments" not in summary


# ---------------------------------------------------------------------------
# Segment partitioning
# ---------------------------------------------------------------------------
class TestSegmentTable:
    def _decoded(self, source):
        module = compile_kernel_source(source)
        # Force-decode by touching segment_at once.
        return module, decode_program(module, DEFAULT_COST_MODEL)

    def test_straight_line_block_is_one_segment(self):
        module, decoded = self._decoded(STRAIGHT)
        kernel = module.function("k")
        entry = kernel.entry
        segment = decoded.segment_at(("k", entry.name, 0))
        assert segment is not None
        # The run stops at the first non-fusable instruction (EXIT/CBR/...).
        fusable_prefix = 0
        from repro.simt.segments import FUSABLE_OPS

        for instr in entry.instructions:
            if instr.opcode not in FUSABLE_OPS:
                break
            fusable_prefix += 1
        assert segment.n == fusable_prefix
        assert segment.n >= 2

    def test_mid_run_entry_gets_suffix_segment(self):
        module, decoded = self._decoded(STRAIGHT)
        entry = module.function("k").entry
        whole = decoded.segment_at(("k", entry.name, 0))
        suffix = decoded.segment_at(("k", entry.name, 1))
        assert suffix is not None
        assert suffix.start == 1
        assert suffix.n == whole.n - 1
        assert suffix.end_pc == whole.end_pc

    def test_short_runs_are_not_segments(self):
        module, decoded = self._decoded(STRAIGHT)
        entry = module.function("k").entry
        whole = decoded.segment_at(("k", entry.name, 0))
        # One instruction before the run's end: length 1, never fused.
        assert decoded.segment_at(("k", entry.name, whole.n - 1)) is None

    def test_bra_terminated_segment_ends_at_target(self):
        module, decoded = self._decoded(LOOPED)
        bra_blocks = [
            (block, instr)
            for block in module.function("k").blocks
            for instr in block.instructions
            if instr.opcode is Opcode.BRA
        ]
        assert bra_blocks, "loop lowering should emit BRA terminators"
        found = False
        for block, bra in bra_blocks:
            segment = decoded.segment_at(("k", block.name, 0))
            if segment is None:
                continue
            if segment.start + segment.n == len(block.instructions):
                target = bra.operands[0].name
                assert segment.end_pc == ("k", target, 0)
                found = True
        assert found, "no BRA-terminated segment found"

    def test_non_bra_segment_ends_in_block(self):
        module, decoded = self._decoded(STRAIGHT)
        entry = module.function("k").entry
        segment = decoded.segment_at(("k", entry.name, 0))
        if entry.instructions[segment.n - 1].opcode is not Opcode.BRA:
            assert segment.end_pc == ("k", entry.name, segment.n)

    def test_conflicts_detects_interior_group(self):
        module, decoded = self._decoded(STRAIGHT)
        entry = module.function("k").entry
        segment = decoded.segment_at(("k", entry.name, 0))
        inside = ("k", entry.name, 1)
        at_end = segment.end_pc
        elsewhere = ("k", "no.such.block", 0)
        assert segment.conflicts({inside: []})
        assert not segment.conflicts({at_end: []})
        assert not segment.conflicts({elsewhere: []})
        assert not segment.conflicts({("k", entry.name, 0): []})

    def test_segment_lookup_is_cached(self):
        module, decoded = self._decoded(STRAIGHT)
        entry = module.function("k").entry
        pc = ("k", entry.name, 0)
        assert decoded.segment_at(pc) is decoded.segment_at(pc)


# ---------------------------------------------------------------------------
# Forced-pick contract
# ---------------------------------------------------------------------------
class _FakeThread:
    __slots__ = ("lane",)

    def __init__(self, lane):
        self.lane = lane


def _lanes(n, base=0):
    return [_FakeThread(base + i) for i in range(n)]


class TestForcedPick:
    def _order(self, pc):
        return pc

    def test_singleton_forced_for_every_policy(self):
        groups = {("k", "bb", 0): _lanes(4)}
        for scheduler in (
            ConvergenceScheduler(),
            OldestFirstScheduler(),
            RoundRobinScheduler(),
        ):
            assert scheduler.forced_pick(groups, self._order) == ("k", "bb", 0)

    def test_convergence_strict_largest_is_forced(self):
        groups = {("k", "a", 0): _lanes(5), ("k", "b", 0): _lanes(3, base=5)}
        scheduler = ConvergenceScheduler()
        assert scheduler.forced_pick(groups, self._order) == ("k", "a", 0)
        assert scheduler.pick(groups, self._order) == ("k", "a", 0)

    def test_convergence_size_tie_is_not_forced(self):
        groups = {("k", "a", 0): _lanes(3), ("k", "b", 0): _lanes(3, base=3)}
        assert ConvergenceScheduler().forced_pick(groups, self._order) is None

    def test_other_policies_never_force_multi_group(self):
        groups = {("k", "a", 0): _lanes(5), ("k", "b", 0): _lanes(3, base=5)}
        assert OldestFirstScheduler().forced_pick(groups, self._order) is None
        assert RoundRobinScheduler().forced_pick(groups, self._order) is None

    def test_round_robin_consume_matches_repeated_picks(self):
        """A fused run of n slots must leave the rotation exactly where n
        singleton pick() calls would have."""
        groups = {("k", "bb", 0): _lanes(1)}
        picked = RoundRobinScheduler()
        for _ in range(7):
            picked.pick(groups, self._order)
        consumed = RoundRobinScheduler()
        consumed.consume(7)
        assert picked._counter == consumed._counter

    def test_base_consume_is_a_noop(self):
        ConvergenceScheduler().consume(100)
        OldestFirstScheduler().consume(100)


# ---------------------------------------------------------------------------
# Slot register files and the UNDEF sentinel
# ---------------------------------------------------------------------------
class TestRegisterSlots:
    def test_params_get_the_first_slots(self):
        module = compile_kernel_source("kernel k(n) { store(tid(), n); }")
        kernel = module.function("k")
        slots = kernel.reg_slots()
        assert slots[kernel.params[0].name] == 0
        assert sorted(slots.values()) == list(range(len(slots)))

    def test_cache_invalidates_on_new_register(self):
        module = compile_kernel_source(STRAIGHT)
        kernel = module.function("k")
        first = kernel.reg_slots()
        assert kernel.reg_slots() is first  # cached
        kernel.new_reg("fresh")  # bumps the counter -> token changes
        assert kernel.reg_slots() is not first

    def test_undef_read_raises_through_frame(self):
        from repro.ir.instructions import Reg
        from repro.simt.warp import Frame

        module = compile_kernel_source(STRAIGHT)
        kernel = module.function("k")
        frame = Frame(kernel, kernel.entry.name)
        some_reg = next(iter(kernel.reg_slots()))
        with pytest.raises(SimulationError, match="undefined register"):
            frame.read(Reg(some_reg))

    def test_undef_arithmetic_raises(self):
        for operation in (
            lambda: UNDEF + 1,
            lambda: 1 + UNDEF,
            lambda: UNDEF * 2,
            lambda: UNDEF < 3,
            lambda: int(UNDEF),
            lambda: bool(UNDEF),
            lambda: -UNDEF,
        ):
            with pytest.raises(SimulationError, match="undefined register"):
                operation()

    def test_undef_is_unhashable(self):
        with pytest.raises(TypeError):
            hash(UNDEF)
