"""Warp schedulers.

The default :class:`ConvergenceScheduler` models Volta's convergence
optimizer: among the groups of runnable threads that share a PC, it issues
the largest group, "grouping together threads that execute the same code in
parallel for maximum convergence" (Section 2). Ties break deterministically
by program order, so simulations are reproducible.

:class:`RoundRobinScheduler` and :class:`OldestFirstScheduler` are
alternative policies used by the simulator tests and the scheduling
ablation bench — the correctness property (per-thread results are
schedule-invariant) is verified across all of them.
"""

from __future__ import annotations


class SchedulerBase:
    """Picks which PC-group a warp issues next."""

    name = "base"

    def pick(self, groups, program_order):
        """Return the chosen PC key.

        ``groups`` maps pc -> list of threads; ``program_order`` maps pc to a
        sortable program-position tuple.
        """
        raise NotImplementedError


class ConvergenceScheduler(SchedulerBase):
    """Largest group first; ties broken by program order then lowest lane."""

    name = "convergence"

    def pick(self, groups, program_order):
        if len(groups) == 1:
            # Fully converged warp (the common case): min of a singleton.
            return next(iter(groups))

        def key(pc):
            threads = groups[pc]
            return (-len(threads), program_order(pc), threads[0].lane)

        return min(groups, key=key)


class OldestFirstScheduler(SchedulerBase):
    """Earliest program position first (depth-first serialization)."""

    name = "oldest-first"

    def pick(self, groups, program_order):
        if len(groups) == 1:
            return next(iter(groups))
        return min(groups, key=lambda pc: (program_order(pc), -len(groups[pc])))


class RoundRobinScheduler(SchedulerBase):
    """Rotates across groups; exists to stress schedule-invariance tests."""

    name = "round-robin"

    def __init__(self):
        self._counter = 0

    def pick(self, groups, program_order):
        ordered = sorted(groups, key=program_order)
        choice = ordered[self._counter % len(ordered)]
        self._counter += 1
        return choice


SCHEDULERS = {
    cls.name: cls
    for cls in (ConvergenceScheduler, OldestFirstScheduler, RoundRobinScheduler)
}


def make_scheduler(name="convergence"):
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
