"""trace — run a kernel or workload under full observability.

Runs one launch with structured events, stall-reason metrics, and compiler
pass spans enabled, then reports where the cycles went::

    python -m repro.tools.trace funccall --summary
    python -m repro.tools.trace funccall -o funccall.json   # chrome://tracing
    python -m repro.tools.trace pathtracer --timeline --width 100
    python -m repro.tools.trace --source examples/kernels/loop_merge.srk \\
        --args 64 --summary
    python -m repro.tools.trace --list

The exported JSON loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev and shows the compiler pipeline (process 0) next
to the simulator's per-warp issue slices, divergence/barrier instants,
and active-lane counters (process 1). See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.pipeline import MODES, ReconvergenceCompiler
from repro.frontend.parser import compile_kernel_source
from repro.harness.report import (
    counters_table,
    format_table,
    opcode_table,
    stall_table,
    summary_table,
)
from repro.harness.timeline import render_timeline
from repro.obs.chrome_trace import write_chrome_trace
from repro.obs.sinks import ListSink
from repro.simt.machine import GPUMachine
from repro.simt.memory import GlobalMemory
from repro.simt.scheduler import SCHEDULERS
from repro.workloads import get_workload, workload_names


def _parse_number(text):
    try:
        return int(text)
    except ValueError:
        return float(text)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace",
        description=(
            "Run a workload or kernel with full observability (events, "
            "stall metrics, pass spans) and export/report the results."
        ),
    )
    parser.add_argument(
        "workload", nargs="?", default=None,
        help="workload name (see --list); or use --source",
    )
    parser.add_argument(
        "--source", default=None, help="a .srk kernel source file instead"
    )
    parser.add_argument(
        "--list", action="store_true", help="list workload names and exit"
    )
    parser.add_argument("--mode", default="sr", choices=MODES)
    parser.add_argument(
        "--threshold", type=int, default=None,
        help="soft-barrier threshold (default: workload/source choice)",
    )
    parser.add_argument(
        "--scheduler", default="convergence", choices=sorted(SCHEDULERS)
    )
    parser.add_argument("--threads", type=int, default=None,
                        help="launch width (default: workload's, or 32)")
    parser.add_argument("--args", nargs="*", default=[],
                        help="kernel arguments (with --source)")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "-o", "--output", default=None,
        help="write a Chrome Trace Event JSON file (chrome://tracing)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print stall attribution, barrier, and opcode tables",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="print the compiler pass-pipeline spans",
    )
    parser.add_argument(
        "--timeline", action="store_true",
        help="print the ASCII lane-by-time diagram",
    )
    parser.add_argument("--width", type=int, default=96,
                        help="timeline columns (default 96)")
    parser.add_argument("--highlight", default=None,
                        help="timeline block to draw as '#'")
    parser.add_argument("--warp", type=int, default=0,
                        help="warp to render in the timeline")
    return parser


def _run_workload(args, sink):
    workload = get_workload(args.workload)
    threshold = args.threshold if args.threshold is not None else "default"
    compiled = workload.compile(mode=args.mode, threshold=threshold)
    if args.threads is not None:
        workload.n_threads = args.threads
    result = workload.run(
        mode=args.mode,
        threshold=threshold,
        scheduler=args.scheduler,
        seed=args.seed,
        compiled=compiled,
        trace=True,
        sink=sink,
        metrics=True,
    )
    return result.launch, compiled.report


def _run_source(args, sink):
    with open(args.source) as handle:
        module = compile_kernel_source(handle.read(), module_name=args.source)
    compiler = ReconvergenceCompiler()
    compiled = compiler.compile(
        module, mode=args.mode, threshold=args.threshold
    )
    kernels = compiled.module.kernels()
    if not kernels:
        raise SystemExit("error: no kernel in module")
    machine = GPUMachine(
        compiled.module, scheduler=args.scheduler, seed=args.seed,
        trace=True, sink=sink, metrics=True,
    )
    launch = machine.launch(
        kernels[0].name,
        args.threads or 32,
        args=tuple(_parse_number(a) for a in args.args),
        memory=GlobalMemory(),
    )
    return launch, compiled.report


def _companion_counters(args):
    """Engine-layer counters from an *un-instrumented* re-run.

    The traced launch runs in observing mode, which disables segment
    fusion and warp batching — its engine counters would read zero. A
    second launch without observability shows what the engine actually
    does for this kernel in production configuration (results are
    bit-identical either way; only the engine telemetry differs).
    """
    if args.workload is not None:
        workload = get_workload(args.workload)
        threshold = (
            args.threshold if args.threshold is not None else "default"
        )
        if args.threads is not None:
            workload.n_threads = args.threads
        result = workload.run(
            mode=args.mode, threshold=threshold, scheduler=args.scheduler,
            seed=args.seed,
        )
        return result.launch.counters
    with open(args.source) as handle:
        module = compile_kernel_source(handle.read(), module_name=args.source)
    compiled = ReconvergenceCompiler().compile(
        module, mode=args.mode, threshold=args.threshold
    )
    machine = GPUMachine(
        compiled.module, scheduler=args.scheduler, seed=args.seed
    )
    launch = machine.launch(
        compiled.module.kernels()[0].name,
        args.threads or 32,
        args=tuple(_parse_number(a) for a in args.args),
        memory=GlobalMemory(),
    )
    return launch.counters


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.list:
        for name in workload_names():
            print(name)
        return 0
    if (args.workload is None) == (args.source is None):
        build_parser().error("give exactly one of WORKLOAD or --source")

    sink = ListSink()
    if args.workload is not None:
        launch, report = _run_workload(args, sink)
    else:
        launch, report = _run_source(args, sink)

    profiler = launch.profiler
    print(
        f"[{args.mode}] {launch.kernel}: SIMT efficiency "
        f"{launch.simt_efficiency:.1%}, cycles {launch.cycles}, "
        f"issued {profiler.issued}, events {len(sink.events)}"
    )

    if args.summary:
        summary = profiler.summary()
        print()
        print(summary_table(
            {k: v for k, v in summary.items() if k != "stall_cycles"}
        ))
        metrics = launch.metrics
        print()
        print(stall_table(metrics.stall_cycles(), metrics.active_cycles()))
        if metrics.barrier_occupancy:
            print()
            rows = [
                (
                    name,
                    metrics.barrier_occupancy[name].count,
                    f"{metrics.barrier_occupancy[name].mean:.1f}",
                    f"{metrics.barrier_wait[name].mean:.1f}"
                    if name in metrics.barrier_wait else "-",
                    metrics.barrier_wait[name].max
                    if name in metrics.barrier_wait else "-",
                )
                for name in sorted(metrics.barrier_occupancy)
            ]
            print(format_table(
                ["barrier", "arrivals", "avg parked", "avg wait", "max wait"],
                rows,
                title="Barriers",
            ))
        print()
        print(opcode_table(summary["opcode_issues"]))
        print()
        print(counters_table(
            _companion_counters(args),
            title="Engine counters (un-instrumented companion run)",
        ))

    if args.spans:
        print()
        print("Compiler pipeline:")
        for span in report.spans:
            print("  " + span.describe())

    if args.timeline:
        print()
        print(render_timeline(
            launch,
            warp_id=args.warp,
            width=args.width,
            highlight=args.highlight,
        ))

    if args.output:
        data = write_chrome_trace(
            args.output, events=sink.events, report=report
        )
        print(f"wrote {args.output} ({len(data['traceEvents'])} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
