"""Flat global memory shared by all warps of a launch.

Addresses are word indices (not bytes). A simple bump allocator hands out
array regions so workloads can build lookup tables; the coalescing cost is
computed by the :class:`repro.simt.costs.CostModel`, not here.
"""

from __future__ import annotations

from repro.errors import SimulationError


class GlobalMemory:
    """Word-addressed global memory with a bump allocator."""

    def __init__(self):
        self._cells = {}
        self._next_free = 0
        self._regions = {}

    def alloc(self, size, name=None, fill=0):
        """Reserve ``size`` words; returns the base address."""
        if size < 0:
            raise SimulationError(f"negative allocation size {size}")
        base = self._next_free
        self._next_free += size
        if fill != 0:
            for offset in range(size):
                self._cells[base + offset] = fill
        if name is not None:
            self._regions[name] = (base, size)
        return base

    def alloc_array(self, values, name=None):
        """Allocate and initialize a region from ``values``."""
        base = self.alloc(len(values), name=name)
        for offset, value in enumerate(values):
            self._cells[base + offset] = value
        return base

    def region(self, name):
        """(base, size) of a named region."""
        try:
            return self._regions[name]
        except KeyError:
            raise SimulationError(f"no memory region named {name!r}") from None

    def read_region(self, name):
        base, size = self.region(name)
        return [self.load(base + i) for i in range(size)]

    def load(self, addr):
        return self._cells.get(int(addr), 0)

    def store(self, addr, value):
        self._cells[int(addr)] = value

    def atom_add(self, addr, value):
        """Atomic fetch-and-add; returns the old value."""
        key = int(addr)
        old = self._cells.get(key, 0)
        self._cells[key] = old + value
        return old

    def snapshot(self):
        """Copy of all written cells (for result comparison in tests)."""
        return dict(self._cells)

    def __len__(self):
        return len(self._cells)


class SharedMemory:
    """Per-CTA on-chip scratchpad: fixed size, word-addressed, bounds-checked.

    Unlike :class:`GlobalMemory` there is no allocator and no sparse address
    space — a CTA declares ``shared_words`` up front (the grid launch's
    analogue of the kernel's static smem footprint) and every access must
    land inside ``[0, shared_words)``. Out-of-bounds accesses raise
    :class:`SimulationError` immediately: shared memory is CTA-private by
    construction, so an OOB index is always a kernel bug, never an aliasing
    question for the mem-effects analysis.
    """

    __slots__ = ("_words", "_cells")

    def __init__(self, words):
        if words < 0:
            raise SimulationError(f"negative shared memory size {words}")
        self._words = words
        self._cells = {}

    def _check(self, addr):
        key = int(addr)
        if key < 0 or key >= self._words:
            raise SimulationError(
                f"shared memory access out of bounds: address {key} "
                f"not in [0, {self._words})"
            )
        return key

    @property
    def words(self):
        return self._words

    def load(self, addr):
        return self._cells.get(self._check(addr), 0)

    def store(self, addr, value):
        self._cells[self._check(addr)] = value

    def atom_add(self, addr, value):
        """Atomic fetch-and-add; returns the old value."""
        key = self._check(addr)
        old = self._cells.get(key, 0)
        self._cells[key] = old + value
        return old

    def snapshot(self):
        """Copy of all written cells (for result comparison in tests)."""
        return dict(self._cells)

    def __len__(self):
        return len(self._cells)


class FootprintOverflow(Exception):
    """A guarded burst touched more addresses than the footprint cap."""


#: Absent-cell marker for the undo log (a popped key must be removed, not
#: restored to 0, so ``snapshot()`` stays bit-identical after rollback).
_ABSENT = object()


class FootprintMemory:
    """Optimistic-execution guard wrapped around a :class:`GlobalMemory`.

    While a warp runs a fused segment optimistically, the executor's
    memory reference is swapped to one of these. It applies every access
    to the real cells with identical semantics (so a conflict-free epoch
    commits for free) while recording:

    * per-burst **read/write address sets** (``take()`` drains them) —
      an ``atom_add`` address lands in the write set, which the
      batcher's conflict rule checks against both prior sets, covering
      its read half too;
    * an epoch-wide **undo log** of ``(addr, old value)`` pairs so a
      conflicting epoch can be rolled back exactly (``rollback()``
      replays it in reverse, distinguishing cells that did not exist).

    The footprint is capped: a burst touching more than ``limit``
    distinct addresses raises :class:`FootprintOverflow`, which the
    batcher treats as a conflict (roll back, replay per-slot).
    """

    __slots__ = ("_cells", "reads", "writes", "_undo", "_limit", "peak")

    def __init__(self, memory, limit=4096):
        self._cells = memory._cells
        self.reads = set()
        self.writes = set()
        self._undo = []
        self._limit = limit
        #: largest single-burst footprint drained so far (distinct words
        #: read + written between two ``take()`` calls) — round-size
        #: tuning telemetry, surfaced as ``batch.*``/``spec.*`` counters.
        self.peak = 0

    def take(self):
        """Drain and return this burst's ``(reads, writes)`` sets."""
        reads, writes = self.reads, self.writes
        footprint = len(reads) + len(writes)
        if footprint > self.peak:
            self.peak = footprint
        self.reads, self.writes = set(), set()
        return reads, writes

    def load(self, addr):
        key = int(addr)
        reads = self.reads
        if key not in reads:
            reads.add(key)
            if len(reads) + len(self.writes) > self._limit:
                raise FootprintOverflow
        return self._cells.get(key, 0)

    def store(self, addr, value):
        key = int(addr)
        cells = self._cells
        writes = self.writes
        if key not in writes:
            writes.add(key)
            if len(writes) + len(self.reads) > self._limit:
                raise FootprintOverflow
        self._undo.append((key, cells.get(key, _ABSENT)))
        cells[key] = value

    def atom_add(self, addr, value):
        key = int(addr)
        cells = self._cells
        writes = self.writes
        if key not in writes:
            writes.add(key)
            if len(writes) + len(self.reads) > self._limit:
                raise FootprintOverflow
        old = cells.get(key, 0)
        self._undo.append((key, old if key in cells else _ABSENT))
        cells[key] = old + value
        return old

    def rollback(self):
        """Undo every write of the epoch, newest first."""
        cells = self._cells
        for key, old in reversed(self._undo):
            if old is _ABSENT:
                cells.pop(key, None)
            else:
                cells[key] = old
        self._undo.clear()

    def commit(self):
        """Accept the epoch's writes (drops the undo log)."""
        self._undo.clear()
