"""AST → IR lowering.

Variables are non-SSA: each source variable maps to one virtual register,
and assignments compile to ``mov``. Control flow lowers to the obvious CFG
shapes; ``Label`` starts a fresh block carrying the ``label`` attribute;
``Predict`` lowers to the ``predict`` pseudo-instruction at its program
point. Loop conditions are evaluated in the loop header, so a divergent
trip count shows up as a divergent header branch — the shape the detection
heuristics look for.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.frontend import ast_nodes as A
from repro.ir import Function, IRBuilder, Module, Opcode

_BIN_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "<": Opcode.CMPLT,
    "<=": Opcode.CMPLE,
    ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE,
    "==": Opcode.CMPEQ,
    "!=": Opcode.CMPNE,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    # call-syntax aliases for bitwise ops ('and'/'or' are keywords)
    "bitand": Opcode.AND,
    "bitor": Opcode.OR,
}

_UN_OPS = {
    "-": Opcode.NEG,
    "!": Opcode.NOT,
    "floor": Opcode.FLOOR,
    "sqrt": Opcode.SQRT,
    "sin": Opcode.SIN,
    "cos": Opcode.COS,
    "exp": Opcode.EXP,
    "log": Opcode.LOG,
    "abs": Opcode.ABS,
}

_NULLARY_INTRINSICS = {
    "tid": Opcode.TID,
    "lane": Opcode.LANE,
    "warpid": Opcode.WARPID,
    "rand": Opcode.RAND,
    "ctaid": Opcode.CTAID,
    "ctadim": Opcode.CTADIM,
    "nctas": Opcode.NCTA,
}


class _FunctionLowerer:
    """Lowers one FuncDecl into an IR Function."""

    def __init__(self, decl, program, module):
        self.decl = decl
        self.program = program
        self.module = module
        self.function = Function(decl.name, is_kernel=decl.is_kernel)
        self.builder = IRBuilder(self.function)
        self.env = {}
        self.loop_stack = []   # (continue_block, break_block)
        self.pending_label = None

    # ------------------------------------------------------------------
    def lower(self):
        self.builder.new_block("entry", switch=True)
        for name in self.decl.params:
            reg = self.function.new_reg(name)
            self.function.params.append(reg)
            self.env[name] = reg
        self.lower_block(self.decl.body)
        current = self.builder.block
        if current.terminator is None:
            if self.decl.is_kernel:
                self.builder.exit()
            else:
                self.builder.ret()
        self._prune_unterminated()
        return self.function

    def _prune_unterminated(self):
        """Give any unterminated block (e.g. after a Break) a terminator."""
        for block in self.function.blocks:
            if block.terminator is None:
                saved = self.builder.block
                self.builder.block = block
                if self.decl.is_kernel:
                    self.builder.exit()
                else:
                    self.builder.ret()
                self.builder.block = saved

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def lower_expr(self, expr):
        if isinstance(expr, A.Num):
            return self.builder.const(expr.value)
        if isinstance(expr, A.Var):
            reg = self.env.get(expr.name)
            if reg is None:
                raise TransformError(
                    f"@{self.decl.name}: undefined variable {expr.name!r}"
                )
            return reg
        if isinstance(expr, A.Bin):
            opcode = _BIN_OPS.get(expr.op)
            if opcode is None:
                raise TransformError(f"unknown binary op {expr.op!r}")
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            return self.builder.binop(opcode, left, right)
        if isinstance(expr, A.Un):
            opcode = _UN_OPS.get(expr.op)
            if opcode is None:
                raise TransformError(f"unknown unary op {expr.op!r}")
            return self.builder.unop(opcode, self.lower_expr(expr.operand))
        if isinstance(expr, A.CallExpr):
            return self.lower_call(expr)
        raise TransformError(f"cannot lower expression {expr!r}")

    def lower_call(self, expr):
        name, args = expr.name, expr.args
        if name in _NULLARY_INTRINSICS:
            return self.builder._emit_value(_NULLARY_INTRINSICS[name], [], name)
        if name in _UN_OPS and len(args) == 1:
            return self.builder.unop(_UN_OPS[name], self.lower_expr(args[0]))
        if name in _BIN_OPS and len(args) == 2:
            # Named binary ops usable in call syntax: min(a,b), max(a,b),
            # xor(a,b), shl(a,b), shr(a,b), and(a,b), or(a,b), mod(a,b)...
            return self.builder.binop(
                _BIN_OPS[name],
                self.lower_expr(args[0]),
                self.lower_expr(args[1]),
            )
        if name == "ld":
            return self.builder.load(self.lower_expr(args[0]))
        if name == "atomadd":
            return self.builder.atom_add(
                self.lower_expr(args[0]), self.lower_expr(args[1])
            )
        if name == "shld":
            return self.builder.shared_load(self.lower_expr(args[0]))
        if name == "shatom":
            return self.builder.shared_atom_add(
                self.lower_expr(args[0]), self.lower_expr(args[1])
            )
        if name == "fma":
            return self.builder.fma(*[self.lower_expr(a) for a in args])
        if name == "hash01":
            # Stateless pseudo-random in [0, 1) derived from the argument:
            # frac(sin(x * 12.9898 + 78.233) * 43758.5453). Deterministic in
            # its input, so task-keyed workloads are schedule-invariant.
            x = self.lower_expr(args[0])
            t = self.builder.fma(x, 12.9898, 78.233)
            s = self.builder.mul(self.builder.unop(Opcode.SIN, t), 43758.5453)
            f = self.builder.unop(Opcode.FLOOR, s)
            return self.builder.unop(Opcode.ABS, self.builder.sub(s, f))
        # User function call.
        if name.startswith("@"):
            name = name[1:]
        try:
            self.program.function(name)
        except KeyError:
            raise TransformError(
                f"@{self.decl.name}: call to unknown function {name!r}"
            ) from None
        values = [self.lower_expr(a) for a in args]
        return self.builder.call(name, values)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_block(self, blk):
        for stmt in blk.statements:
            self.lower_stmt(stmt)

    def _start_labeled_block(self, label_name, hint):
        """Break the current block so the next statement starts a labeled one."""
        target = self.builder.new_block(hint, attrs={"label": label_name})
        if self.builder.block.terminator is None:
            self.builder.bra(target)
        self.builder.set_block(target)

    def lower_stmt(self, stmt):
        if isinstance(stmt, A.Label):
            self._start_labeled_block(stmt.name, f"L.{stmt.name}")
            self.lower_stmt(stmt.statement)
            return
        if isinstance(stmt, A.Block):
            self.lower_block(stmt)
            return
        if isinstance(stmt, A.Let):
            value = self.lower_expr(stmt.value)
            reg = self.function.new_reg(stmt.name)
            self.env[stmt.name] = reg
            self.builder.mov_to(reg, value)
            return
        if isinstance(stmt, A.Assign):
            reg = self.env.get(stmt.name)
            if reg is None:
                raise TransformError(
                    f"@{self.decl.name}: assignment to undeclared "
                    f"variable {stmt.name!r}"
                )
            self.builder.mov_to(reg, self.lower_expr(stmt.value))
            return
        if isinstance(stmt, A.Store):
            self.builder.store(
                self.lower_expr(stmt.address), self.lower_expr(stmt.value)
            )
            return
        if isinstance(stmt, A.ExprStmt):
            # shst is statement-only, like the 'store' keyword: it produces
            # no value, so it cannot appear inside an expression.
            expr = stmt.expr
            if isinstance(expr, A.CallExpr) and expr.name == "shst":
                self.builder.shared_store(
                    self.lower_expr(expr.args[0]),
                    self.lower_expr(expr.args[1]),
                )
                return
            self.lower_expr(stmt.expr)
            return
        if isinstance(stmt, A.If):
            self._lower_if(stmt)
            return
        if isinstance(stmt, A.While):
            self._lower_while(stmt)
            return
        if isinstance(stmt, A.For):
            self._lower_for(stmt)
            return
        if isinstance(stmt, A.Break):
            if not self.loop_stack:
                raise TransformError("break outside a loop")
            self.builder.bra(self.loop_stack[-1][1])
            self.builder.new_block("after.break", switch=True)
            return
        if isinstance(stmt, A.Continue):
            if not self.loop_stack:
                raise TransformError("continue outside a loop")
            self.builder.bra(self.loop_stack[-1][0])
            self.builder.new_block("after.continue", switch=True)
            return
        if isinstance(stmt, A.Return):
            if self.decl.is_kernel:
                self.builder.exit()
            else:
                value = (
                    self.lower_expr(stmt.value) if stmt.value is not None else None
                )
                self.builder.ret(value)
            self.builder.new_block("after.return", switch=True)
            return
        if isinstance(stmt, A.Predict):
            if stmt.target.startswith("@"):
                self.builder.predict_call(stmt.target[1:])
            else:
                self.builder.predict(stmt.target)
            if stmt.threshold is not None:
                self.builder.block.instructions[-1].attrs["threshold"] = int(
                    stmt.threshold
                )
            return
        if isinstance(stmt, A.Warpsync):
            self.builder.warpsync()
            return
        if isinstance(stmt, A.Ctasync):
            self.builder.ctasync()
            return
        if isinstance(stmt, A.DelayStmt):
            self.builder.delay(stmt.cycles)
            return
        raise TransformError(f"cannot lower statement {stmt!r}")

    def _lower_if(self, stmt):
        cond = self.lower_expr(stmt.cond)
        then_block = self.builder.new_block("then")
        join_block = self.builder.new_block("join")
        if stmt.else_body is not None:
            else_block = self.builder.new_block("else")
            self.builder.cbr(cond, then_block, else_block)
        else:
            self.builder.cbr(cond, then_block, join_block)
        self.builder.set_block(then_block)
        self.lower_block(stmt.then_body)
        if self.builder.block.terminator is None:
            self.builder.bra(join_block)
        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            self.lower_block(stmt.else_body)
            if self.builder.block.terminator is None:
                self.builder.bra(join_block)
        self.builder.set_block(join_block)

    def _lower_while(self, stmt):
        header = self.builder.new_block("while.head")
        body = self.builder.new_block("while.body")
        exit_block = self.builder.new_block("while.exit")
        self.builder.bra(header)
        self.builder.set_block(header)
        cond = self.lower_expr(stmt.cond)
        self.builder.cbr(cond, body, exit_block)
        self.builder.set_block(body)
        self.loop_stack.append((header, exit_block))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.bra(header)
        self.builder.set_block(exit_block)

    def _lower_for(self, stmt):
        start = self.lower_expr(stmt.start)
        induction = self.function.new_reg(stmt.var)
        self.env[stmt.var] = induction
        self.builder.mov_to(induction, start)
        header = self.builder.new_block("for.head")
        body = self.builder.new_block("for.body")
        latch = self.builder.new_block("for.latch")
        exit_block = self.builder.new_block("for.exit")
        self.builder.bra(header)
        self.builder.set_block(header)
        stop = self.lower_expr(stmt.stop)
        self.builder.cbr(self.builder.lt(induction, stop), body, exit_block)
        self.builder.set_block(body)
        self.loop_stack.append((latch, exit_block))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.bra(latch)
        self.builder.set_block(latch)
        self.builder.mov_to(induction, self.builder.add(induction, 1))
        self.builder.bra(header)
        self.builder.set_block(exit_block)


def lower_program(program, module_name="program"):
    """Lower a full AST Program to an IR Module."""
    module = Module(module_name)
    for decl in program.functions:
        module.add(_FunctionLowerer(decl, program, module).lower())
    _remove_unreachable_blocks(module)
    return module


def _remove_unreachable_blocks(module):
    """Drop blocks with no path from entry (break/return leftovers)."""
    from repro.analysis.cfg_utils import CFGView, reachable_from

    for function in module:
        view = CFGView.of_function(function)
        keep = reachable_from(view)
        for block in list(function.blocks):
            if block.name not in keep:
                function.remove_block(block.name)


def lower_kernel(decl, program=None, module_name="program"):
    """Lower one kernel declaration (plus helper functions) to a Module."""
    program = program or A.Program(functions=[decl])
    if decl not in program.functions:
        program.functions.append(decl)
    return lower_program(program, module_name=module_name)
