"""Engine-wide layered counters: always-on, near-zero-overhead telemetry.

Every performance layer the engine grew since PR 1 — fastpath pre-decode,
the pass manager, segment fusion, warp batching, the compile cache, the
persistent worker pool — kept its own ad-hoc diagnostics. This module
unifies them behind one process-global registry, :data:`ENGINE_COUNTERS`,
in the style of hardware performance counters: each counter is a **plain
int attribute** on one shared object, so a hot-site increment is a single
``+= 1`` with no allocation, no dict lookup, and no string hashing.

Counters are namespaced ``layer.name`` (see :data:`COUNTERS` for the
registry with descriptions) and are *cumulative per process*. Consumers
snapshot and diff::

    from repro.obs.counters import ENGINE_COUNTERS, snapshot, delta

    before = snapshot()
    ...                       # run launches, sweeps, compiles
    moved = delta(snapshot(), before)

Per-launch values (segment fusion coverage, batch epochs/rollbacks) come
from the launch's own profiler via ``Profiler.engine_counters()`` and are
folded into the global registry when the launch returns, so both views —
"this launch" and "this process so far" — stay consistent.

Cross-process aggregation (``repro.harness.parallel`` workers) serializes
snapshots back to the parent, which merges them via :func:`merge`;
snapshots are
plain ``{name: int}`` dicts for exactly that reason. The ``tools.stats``
CLI renders either view as a per-layer table and diffs saved snapshots.

Counters describe the **engine**, never the simulated program — results
are bit-identical with any mix of counter consumers attached (the
conformance matrix pins this).
"""

from __future__ import annotations

__all__ = [
    "COUNTERS",
    "ENGINE_COUNTERS",
    "EngineCounters",
    "counter_layers",
    "delta",
    "merge",
    "reset",
    "snapshot",
]

#: Registry of every namespaced counter: ``"layer.name" -> description``.
#: The attribute on :class:`EngineCounters` is the name with dots
#: replaced by underscores (``fastpath.decode_cache_hit`` ->
#: ``fastpath_decode_cache_hit``).
COUNTERS = {
    # --- fastpath: pre-decoded program cache (repro.simt.fastpath) ----
    "fastpath.decode_cache_hit":
        "decode_program() served a cached DecodedProgram",
    "fastpath.decode_cache_miss":
        "decode_program() built (or rebuilt) a DecodedProgram",
    # --- segments: fused straight-line execution (repro.simt.segments)
    "segments.fused_instrs":
        "issue slots retired through fused segments",
    "segments.fallback_instrs":
        "issue slots retired one instruction at a time",
    "segments.fused_segments":
        "fused segment executions (bursts)",
    # --- soa: vectorized chunk execution (repro.simt.soa) -------------
    "soa.vector_chunks":
        "pure chunks executed as numpy SoA vector columns",
    "soa.fallback_chunks":
        "pure chunks run thread-major while SoA was enabled",
    # --- jit: tiered segment codegen (repro.simt.jit) -----------------
    "jit.compiled_segments":
        "segment variants lowered to Python and compiled",
    "jit.cache_hits":
        "tier-ups served by the SegmentCodeCache (no codegen)",
    "jit.tierups":
        "hot segments promoted from interpreted steps to compiled code",
    "jit.deopts":
        "tier-ups vetoed by codegen (segment runs interpreted forever)",
    "jit.executed_segments":
        "fused segment executions dispatched to compiled code",
    # --- batch: lockstep multi-warp epochs (repro.simt.batch) ---------
    "batch.epochs":
        "lockstep epochs attempted across live warps",
    "batch.rollbacks":
        "epochs undone by the write-set guard and replayed per slot",
    "batch.disjoint_launches":
        "launches whose memory footprints were proven disjoint",
    "batch.guarded_launches":
        "launches batched optimistically under the write-set guard",
    "batch.guard_disables":
        "launches where a conflict streak switched batching off",
    "batch.replayed_slots":
        "slots replayed per-slot after a conflicted lockstep epoch",
    "batch.peak_footprint":
        "largest single-burst guarded footprint in words (max, not sum)",
    # --- spec: speculative round scheduling (repro.simt.spec) ---------
    "spec.rounds":
        "speculative rounds attempted beyond forced picks",
    "spec.committed":
        "warp bursts committed by speculative rounds",
    "spec.rolled_back":
        "warp bursts rolled back by round conflicts",
    "spec.retries":
        "rounds aborted on conflict and re-run through the serial loop",
    "spec.backoffs":
        "adaptive round-size halvings after conflict streaks",
    "spec.disables":
        "launches where speculation switched off at the minimum round size",
    "spec.replayed_slots":
        "speculative slots discarded by rollbacks and re-run serially",
    "spec.peak_footprint":
        "largest per-warp speculative footprint in words (max, not sum)",
    "spec.nonforced_tie":
        "serial slots whose pick tied under the convergence policy",
    "spec.nonforced_multi_group":
        "serial slots with multiple groups under a singleton-only policy",
    "spec.nonforced_observed":
        "serial slots issued with no segment engine (observers attached)",
    # --- program_cache: compile memoization (repro.core.program_cache)
    "program_cache.hit":
        "compile_cached() served a shared CompiledProgram",
    "program_cache.miss":
        "compile_cached() ran the full pass pipeline",
    # --- passmgr: analysis caching (repro.core.passmgr) ---------------
    "passmgr.analysis_hit":
        "AnalysisManager.get() served a cached analysis",
    "passmgr.analysis_recompute":
        "AnalysisManager.get() recomputed an analysis",
    # --- pool: persistent worker pool (repro.harness.parallel) --------
    "pool.tasks":
        "tasks submitted to the persistent worker pool",
    "pool.reuses":
        "parallel runs that reused the live pool (no refork)",
    "pool.teardowns":
        "pool teardowns (knob change, error, or shutdown)",
    # --- launch: top-level machine activity (repro.simt.machine) ------
    "launch.count":
        "kernel launches completed",
    "launch.errors":
        "launches aborted by LaunchError/DeadlockError",
    # --- grid: CTA hierarchy and simulated SMs (repro.simt.grid) ------
    "grid.ctas_launched":
        "CTAs executed by grid launches",
    "grid.sm_occupancy":
        "peak resident warps on any simulated SM (max, not sum)",
    "grid.shared_bytes":
        "per-CTA shared-memory bytes allocated (8 bytes/word)",
    "grid.pool_sharded_ctas":
        "CTAs executed on the persistent worker pool",
}

#: Layer prefixes in display order (the per-layer tables follow this).
LAYERS = (
    "fastpath", "segments", "soa", "jit", "batch", "spec", "program_cache",
    "passmgr", "pool", "launch", "grid",
)


def _attr(name):
    return name.replace(".", "_")


def _numeric(value):
    """Numeric view of a snapshot value; anything else counts as 0.

    Snapshots fed to :func:`delta`/:func:`merge` are not always pristine
    counter dicts — ``tools.stats --diff`` accepts BENCH records and
    hand-built files whose entries can be strings, bools, or lists. A
    layer absent from one side (a ``jit.*`` row diffed against a pre-JIT
    snapshot) must render as a plain delta, and a metadata string must
    never raise ``ValueError`` deep inside the diff.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    return value


class EngineCounters:
    """The shared counter object. Hot sites increment attributes directly
    (``ENGINE_COUNTERS.fastpath_decode_cache_hit += 1``); everything else
    goes through :meth:`snapshot`/:meth:`merge`/:meth:`reset`."""

    __slots__ = tuple(_attr(name) for name in COUNTERS)

    def __init__(self):
        self.reset()

    def reset(self):
        """Zero every counter (tests and long-lived servers)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self):
        """A plain ``{namespaced name: int}`` dict (picklable, JSON-safe)."""
        return {name: getattr(self, _attr(name)) for name in COUNTERS}

    def merge(self, snap):
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Unknown keys are ignored so snapshots from newer/older processes
        merge without raising.
        """
        for name, value in snap.items():
            attr = _attr(name)
            if attr in self.__slots__:
                setattr(self, attr, getattr(self, attr) + int(_numeric(value)))


#: The process-global registry every engine layer increments.
ENGINE_COUNTERS = EngineCounters()


def snapshot():
    """Snapshot of :data:`ENGINE_COUNTERS` as a plain dict."""
    return ENGINE_COUNTERS.snapshot()


def reset():
    """Zero the global registry (tests; never needed for correctness)."""
    ENGINE_COUNTERS.reset()


def delta(after, before):
    """``after - before`` per counter over the union of keys.

    Keys missing from either side count as 0 (a layer that did not exist
    when the older snapshot was saved still diffs cleanly), and
    non-numeric values are treated as 0 rather than raising.
    """
    keys = set(after) | set(before)
    return {
        name: _numeric(after.get(name, 0)) - _numeric(before.get(name, 0))
        for name in sorted(keys)
    }


def merge(snapshots):
    """Sum an iterable of snapshots into one aggregate dict."""
    total = {}
    for snap in snapshots:
        for name, value in snap.items():
            total[name] = total.get(name, 0) + _numeric(value)
    return total


def counter_layers(snap=None):
    """Group a snapshot by layer prefix: ``{layer: {name: value}}``.

    Layers appear in :data:`LAYERS` order first, then any unknown
    prefixes alphabetically (forward compatibility with merged
    snapshots from newer processes). Derived ratios (segment fusion
    coverage) are computed here, not stored, so raw snapshots stay
    integer-valued and mergeable.
    """
    snap = snapshot() if snap is None else snap
    layers = {}
    for name, value in snap.items():
        layer, _, _ = name.partition(".")
        layers.setdefault(layer, {})[name] = value
    fused = snap.get("segments.fused_instrs", 0)
    fallback = snap.get("segments.fallback_instrs", 0)
    if fused or fallback:
        layers.setdefault("segments", {})["segments.coverage"] = (
            fused / (fused + fallback)
        )
    ordered = {}
    for layer in LAYERS:
        if layer in layers:
            ordered[layer] = dict(sorted(layers.pop(layer).items()))
    for layer in sorted(layers):
        ordered[layer] = dict(sorted(layers[layer].items()))
    return ordered
