"""Segment-fused execution: straight-line superinstructions for converged warps.

The fast path (:mod:`repro.simt.fastpath`) removes per-issue *decode* cost,
but a converged warp still pays the full machine loop — scheduler pick,
release drain, profiler record, groups-cache patch — for every single
instruction of a straight-line run. Profiling the Table 2 corpus shows that
per-slot loop overhead, not instruction semantics, dominates runtime, and
that ~99% of issue slots are *forced*: the scheduler's pick is uniquely
determined before looking at the instruction.

This module fuses each maximal straight-line **segment** of a basic block
into one superinstruction. A segment is a run of instructions that cannot
park, release, diverge, call, exit, or emit per-lane observability events
(``FUSABLE_OPS``); executing one therefore cannot change the warp's group
structure or barrier state mid-run, so the machine may legally charge the
whole run in one step. Within a segment, runs of *register-pure*
instructions (no memory traffic, no branch) touch only thread-private state
— registers, the RNG stream, the frame index — so they execute
**thread-major** (threads outer, instructions inner) with a single frame
index write per thread, while memory operations and the terminating branch
run instruction-major through their existing decoded handlers, preserving
lane-ordered memory semantics and dynamic coalescing costs bit-for-bit.

Fusion only fires when the machine can *prove* the scheduler's picks were
forced for the whole run (``SchedulerBase.forced_pick``) and no other group
could merge into the segment's interior (``Segment.conflicts``); anything
else — an attached sink, stall metrics, an issue trace, a disabled
fastpath, multiple live warps — falls back to per-instruction issue with
identical results. ``REPRO_SEGMENTS=0`` (or :func:`set_segments` /
:func:`segments_disabled`) turns fusion off globally; the conformance suite
pins segments-on against segments-off over the full corpus.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.ir.instructions import Imm, Opcode, Reg
from repro.simt import jit as _jit
from repro.simt import soa as _soa
from repro.simt.executor import _BINARY_EVAL, _UNARY_EVAL, _UNIFORM_OPS

__all__ = [
    "FUSABLE_OPS",
    "Segment",
    "SegmentTable",
    "segments_disabled",
    "segments_enabled",
    "set_segments",
]

#: Global default for new machines/executors. Flip with ``set_segments`` or
#: the ``REPRO_SEGMENTS`` environment variable (0/false/off disables).
SEGMENTS_ENABLED = os.environ.get("REPRO_SEGMENTS", "1").lower() not in (
    "0",
    "false",
    "off",
)


def segments_enabled():
    """The current global segment-fusion default."""
    return SEGMENTS_ENABLED


def set_segments(enabled):
    """Set the global segment-fusion default; returns the previous value."""
    global SEGMENTS_ENABLED
    previous = SEGMENTS_ENABLED
    SEGMENTS_ENABLED = bool(enabled)
    return previous


@contextmanager
def segments_disabled():
    """Run a block with per-instruction issue (fusion off)."""
    previous = set_segments(False)
    try:
        yield
    finally:
        set_segments(previous)


#: Opcodes legal inside a segment. Uniform ops keep the group intact and
#: cannot park/exit/release; CALL is excluded because it pushes a frame
#: (the callee's blocks issue at different PCs, ending the straight line).
FUSABLE_OPS = _UNIFORM_OPS - {Opcode.CALL}

#: Fusable ops whose effects are *thread-private*: registers, the RNG
#: stream, and the frame index only. These reorder freely across threads,
#: so a run of them executes thread-major. LD/ST/ATOMADD touch shared
#: memory (lane order and dynamic coalescing cost matter) and BRA rewrites
#: the PC, so they stay instruction-major via their decoded handlers.
#: DELAY is pure here: it only charges static cycles and advances the PC.
_PURE_OPS = FUSABLE_OPS - {Opcode.LD, Opcode.ST, Opcode.ATOMADD, Opcode.BRA}


# ---------------------------------------------------------------------------
# Micro-ops: (thread, regs) closures for register-pure instructions
# ---------------------------------------------------------------------------
def _value_getter(operand, slots):
    """A ``(thread, regs) -> value`` accessor for pure-op operands."""
    if isinstance(operand, Imm):
        value = operand.value
        return lambda thread, regs: value
    slot = slots[operand.name]
    return lambda thread, regs: regs[slot]


def _pure_micro(entry, slots):
    """The (thread, regs) micro-op for one pure instruction.

    Returns None for instructions with no register effect (NOP, PREDICT,
    DELAY) — their only action, advancing the frame index, is folded into
    the chunk's single end-of-run index write.
    """
    instr = entry.instr
    opcode = instr.opcode
    if opcode in (Opcode.NOP, Opcode.PREDICT, Opcode.DELAY):
        return None

    if opcode in _BINARY_EVAL:
        fn = _BINARY_EVAL[opcode]
        dst = slots[instr.dst.name]
        a, b = instr.operands
        if isinstance(a, Reg) and isinstance(b, Reg):
            sa, sb = slots[a.name], slots[b.name]

            def op(thread, regs):
                regs[dst] = fn(regs[sa], regs[sb])

        elif isinstance(a, Reg) and isinstance(b, Imm):
            sa, bv = slots[a.name], b.value

            def op(thread, regs):
                regs[dst] = fn(regs[sa], bv)

        elif isinstance(a, Imm) and isinstance(b, Reg):
            av, sb = a.value, slots[b.name]

            def op(thread, regs):
                regs[dst] = fn(av, regs[sb])

        else:
            get_a = _value_getter(a, slots)
            get_b = _value_getter(b, slots)

            def op(thread, regs):
                regs[dst] = fn(get_a(thread, regs), get_b(thread, regs))

        return op

    if opcode in _UNARY_EVAL:
        fn = _UNARY_EVAL[opcode]
        dst = slots[instr.dst.name]
        operand = instr.operands[0]
        if isinstance(operand, Reg):
            src = slots[operand.name]

            def op(thread, regs):
                regs[dst] = fn(regs[src])

        else:
            value = operand.value

            def op(thread, regs):
                regs[dst] = fn(value)

        return op

    if opcode is Opcode.CONST:
        dst = slots[instr.dst.name]
        value = instr.operands[0].value

        def op(thread, regs):
            regs[dst] = value

        return op

    if opcode is Opcode.SEL:
        dst = slots[instr.dst.name]
        get_pred = _value_getter(instr.operands[0], slots)
        get_true = _value_getter(instr.operands[1], slots)
        get_false = _value_getter(instr.operands[2], slots)

        def op(thread, regs):
            regs[dst] = (
                get_true(thread, regs)
                if get_pred(thread, regs) != 0
                else get_false(thread, regs)
            )

        return op

    if opcode is Opcode.FMA:
        dst = slots[instr.dst.name]
        a, b, c = instr.operands
        if isinstance(a, Reg) and isinstance(b, Imm) and isinstance(c, Imm):
            sa, bv, cv = slots[a.name], b.value, c.value

            def op(thread, regs):
                regs[dst] = regs[sa] * bv + cv

        elif isinstance(a, Reg) and isinstance(b, Reg) and isinstance(c, Reg):
            sa, sb, sc = slots[a.name], slots[b.name], slots[c.name]

            def op(thread, regs):
                regs[dst] = regs[sa] * regs[sb] + regs[sc]

        else:
            get_a = _value_getter(a, slots)
            get_b = _value_getter(b, slots)
            get_c = _value_getter(c, slots)

            def op(thread, regs):
                regs[dst] = get_a(thread, regs) * get_b(thread, regs) + get_c(
                    thread, regs
                )

        return op

    if opcode is Opcode.TID:
        dst = slots[instr.dst.name]

        def op(thread, regs):
            regs[dst] = thread.tid

        return op

    if opcode is Opcode.LANE:
        dst = slots[instr.dst.name]

        def op(thread, regs):
            regs[dst] = thread.lane

        return op

    if opcode is Opcode.WARPID:
        dst = slots[instr.dst.name]

        def op(thread, regs):
            regs[dst] = thread.warp_id

        return op

    if opcode is Opcode.RAND:
        dst = slots[instr.dst.name]

        def op(thread, regs):
            regs[dst] = thread.rng.uniform()

        return op

    raise AssertionError(f"no micro-op for pure opcode {opcode.value}")


def _static_cycles(entry):
    """The fixed issue cost of a pure instruction (DELAY carries its own)."""
    if entry.opcode is Opcode.DELAY:
        return int(entry.instr.operands[0].value)
    return entry.latency


def _make_chunk(micro_ops, end_index):
    """Compile a run of pure micro-ops into one thread-major closure.

    The slow path advances ``frame.index`` once per instruction; the end
    index after the run is statically known, so the chunk writes it once
    per thread instead.
    """
    ops = tuple(micro_ops)
    if not ops:

        def chunk(group):
            for thread in group:
                thread.frames[-1].index = end_index

    elif len(ops) == 1:
        op = ops[0]

        def chunk(group):
            for thread in group:
                frame = thread.frames[-1]
                op(thread, frame.regs)
                frame.index = end_index

    else:

        def chunk(group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                for op in ops:
                    op(thread, regs)
                frame.index = end_index

    return chunk


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------
class Segment:
    """One fused straight-line run of ``n`` instructions at one PC.

    ``steps`` alternates thread-major pure chunks (pre-summed static
    cycles) with instruction-major decoded handlers for memory ops and the
    terminating branch (dynamic cycles). ``end_pc`` is where every thread
    of the group sits after execution.
    """

    __slots__ = ("fname", "bname", "start", "n", "steps", "soa_steps",
                 "n_chunks", "n_soa_chunks", "end_pc", "opcode_counts",
                 "touches_memory", "jit_ir", "jit_hits", "jit_fns",
                 "__weakref__")

    def __init__(self, fname, bname, start, entries, slots, kinds=None):
        self.fname = fname
        self.bname = bname
        self.start = start
        self.n = len(entries)
        self.touches_memory = any(
            entry.opcode in (Opcode.LD, Opcode.ST, Opcode.ATOMADD)
            for entry in entries
        )

        steps = []
        soa_steps = []  # same shape, vector chunks substituted where compiled
        jit_records = []  # per-step lowering IR for the segment JIT
        n_chunks = 0
        n_soa_chunks = 0
        micro = []
        items = []  # (entry, micro-op) pairs for the SoA chunk compiler
        static = 0
        pending = 0  # pure instructions accumulated since the last flush
        index = start

        def flush_chunk():
            nonlocal n_chunks, n_soa_chunks
            chunk = _make_chunk(micro, index)
            steps.append((True, chunk, static))
            vector = _soa.compile_chunk(items, slots, kinds, index)
            soa_steps.append((True, vector if vector is not None else chunk,
                              static))
            jit_records.append((True, tuple(e for e, _op in items), index))
            n_chunks += 1
            if vector is not None:
                n_soa_chunks += 1

        for entry in entries:
            if entry.opcode in _PURE_OPS:
                op = _pure_micro(entry, slots)
                if op is not None:
                    micro.append(op)
                items.append((entry, op))
                static += _static_cycles(entry)
                pending += 1
                index += 1
            else:
                if pending:
                    # Even an op-free chunk (all NOPs) must advance the
                    # frame index, so flush on pending count, not on ops.
                    flush_chunk()
                    micro = []
                    items = []
                    static = 0
                    pending = 0
                step = (False, entry.run, 0)
                steps.append(step)
                soa_steps.append(step)
                jit_records.append((False, entry.run))
                index += 1
        if pending:
            flush_chunk()
        self.steps = tuple(steps)
        # Lowering IR for the segment JIT (repro.simt.jit): the decoded
        # entries of each pure chunk plus each handler step, aligned
        # one-to-one with ``steps``, and the function's slot map.
        self.jit_ir = (tuple(jit_records), slots)
        self.jit_hits = 0
        self.jit_fns = {}  # variant -> (knob fingerprint, fn or False)
        # None when no chunk compiled a vector variant: execute() then
        # skips the SoA dispatch entirely for this segment.
        self.soa_steps = tuple(soa_steps) if n_soa_chunks else None
        self.n_chunks = n_chunks
        self.n_soa_chunks = n_soa_chunks

        last = entries[-1]
        if last.opcode is Opcode.BRA:
            self.end_pc = (fname, last.instr.operands[0].name, 0)
        else:
            self.end_pc = (fname, bname, start + self.n)

        counts = {}
        for entry in entries:
            counts[entry.opcode] = counts.get(entry.opcode, 0) + 1
        self.opcode_counts = tuple(counts.items())

    def execute(self, executor, warp, group):
        """Apply the whole segment to ``group``; returns total cycles."""
        # SoA dispatch happens per segment, never per chunk: the vector
        # variants were substituted into ``soa_steps`` at build time, so
        # the execution loop below stays identical either way.
        steps = self.steps
        variant = 0
        lanes = executor.soa_lanes
        if lanes is not None:
            if self.soa_steps is not None and len(group) >= lanes:
                steps = self.soa_steps
                variant = 1
                executor.profiler.soa_chunks += self.n_soa_chunks
                executor.profiler.soa_fallback_chunks += (
                    self.n_chunks - self.n_soa_chunks
                )
            else:
                executor.profiler.soa_fallback_chunks += self.n_chunks
        # Tiered JIT dispatch (repro.simt.jit): below the hotness
        # threshold (or after a deopt) the interpreted step loop runs;
        # past it, the generated function replaces the whole loop. The
        # knob fingerprint is computed once at launch setup (like the
        # threshold) and checked against the segment's memo here, so
        # compiled code can never outlive the engine configuration it
        # was built for while the steady state pays one tuple compare.
        threshold = executor.jit_threshold
        if threshold is not None:
            cached = self.jit_fns.get(variant)
            fingerprint = executor.jit_fingerprint
            if cached is not None and cached[0] == fingerprint:
                fn = cached[1]
            else:
                fn = None
                if cached is not None:
                    # Knobs changed under previously-compiled code: the
                    # segment is already proven hot, re-tier immediately.
                    fn = _jit.tier_up(self, variant, fingerprint, executor)
                else:
                    self.jit_hits += 1
                    if self.jit_hits > threshold:
                        fn = _jit.tier_up(
                            self, variant, fingerprint, executor
                        )
            if fn:
                executor.profiler.jit_segments += 1
                _jit.LAST_EXECUTED = fn
                return fn(executor, warp, group)
        total = 0
        for is_chunk, payload, cycles in steps:
            if is_chunk:
                payload(group)
                total += cycles
            else:
                total += payload(executor, warp, group)
        return total

    def conflicts(self, groups):
        """True if another group sits strictly inside this segment's range.

        The slow path would merge that group with the fused one mid-run
        (uniform carry-over lands on an already-populated PC); fusing past
        the merge point would charge the merged lanes' issues separately.
        A group exactly at ``end_pc`` is fine — the machine's carry-over
        patch merges there, as the slow path would.
        """
        fname = self.fname
        bname = self.bname
        start = self.start
        end = start + self.n
        for pc in groups:
            if pc[0] == fname and pc[1] == bname and start < pc[2] < end:
                return True
        return False

    def __repr__(self):
        return (
            f"<Segment @{self.fname}/{self.bname}:{self.start} "
            f"n={self.n} -> {self.end_pc}>"
        )


#: Cache sentinel for "no segment starts at this index".
_NO_SEGMENT = object()


class SegmentTable:
    """Per-block segment lookup: ``at(index)`` -> Segment or None.

    Segments are maximal: ``at(i)`` covers from ``i`` to the end of the
    fusable run containing ``i`` (a warp can enter a run mid-way, e.g. the
    resume point after a barrier release). Runs shorter than two
    instructions are not worth a fused dispatch and return None.
    """

    def __init__(self, fname, bname, entries, slots, kinds=None):
        self.fname = fname
        self.bname = bname
        self.entries = entries
        self.slots = slots
        # Per-slot value kinds from repro.simt.soa.classify_slots; None
        # disables SoA chunk compilation for this table's segments.
        self.kinds = kinds
        # _run_end[i]: end index (exclusive) of the maximal fusable run
        # containing i, or -1 when entries[i] is not fusable.
        n = len(entries)
        run_end = [-1] * n
        end = -1
        for i in range(n - 1, -1, -1):
            if entries[i].opcode in FUSABLE_OPS:
                if end < 0:
                    end = i + 1
                run_end[i] = end
            else:
                end = -1
        self._run_end = run_end
        self._cache = {}

    def at(self, index):
        segment = self._cache.get(index, _NO_SEGMENT)
        if segment is not _NO_SEGMENT:
            return segment
        end = self._run_end[index] if index < len(self._run_end) else -1
        if end - index < 2:
            self._cache[index] = None
            return None
        segment = Segment(
            self.fname,
            self.bname,
            index,
            self.entries[index:end],
            self.slots,
            self.kinds,
        )
        self._cache[index] = segment
        return segment

    def at_bounded(self, index, length):
        """Like :meth:`at`, truncated to at most ``length`` instructions.

        The warp batcher runs every live warp the *same* number of slots
        per lockstep epoch, so it needs sub-segments cut to the epoch
        length. Lengths shorter than two are not worth fusing and return
        None; a length covering the whole run returns the maximal
        (shared) segment object.
        """
        if length < 2:
            return None
        end = self._run_end[index] if index < len(self._run_end) else -1
        if end - index < 2:
            return None
        if length >= end - index:
            return self.at(index)
        key = (index, length)
        segment = self._cache.get(key, _NO_SEGMENT)
        if segment is not _NO_SEGMENT:
            return segment
        segment = Segment(
            self.fname,
            self.bname,
            index,
            self.entries[index:index + length],
            self.slots,
            self.kinds,
        )
        self._cache[key] = segment
        return segment
