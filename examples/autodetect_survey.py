#!/usr/bin/env python
"""Automatic detection survey (Section 4.5 / 5.4) on a mini corpus.

Generates a scaled-down version of the paper's 520-application corpus,
runs the automatic reconvergence-point detector over it, and reports the
funnel: how many apps have low SIMT efficiency, how many the heuristics
flag, and how many actually improve. (The full-size corpus runs via
``python -m repro.harness funnel``.)

Run: ``python examples/autodetect_survey.py``
"""

from repro.core import detect_candidates
from repro.workloads import get_workload
from repro.workloads.corpus import generate_corpus, run_funnel

MINI_COUNTS = {"uniform": 15, "mild": 8, "disjoint": 6, "detectable": 16}


def main():
    print("Detector dry-run on rsbench (should find the Loop Merge):")
    module = get_workload("rsbench").module()
    for function in module:
        for candidate in detect_candidates(function):
            print(f"  {candidate.describe()}")
    print()

    apps = generate_corpus(counts=MINI_COUNTS)
    funnel = run_funnel(apps)
    print(f"mini corpus funnel: {funnel.describe()}")
    print("(paper, full scale: 520 apps -> 75 below 80% -> 16 detected -> "
          "5 significant)\n")

    print("Auto-detected applications:")
    for row in funnel.rows:
        if not row["detected"]:
            continue
        tag = "significant" if row["speedup"] and row["speedup"] >= 1.10 else (
            "regression" if row["speedup"] and row["speedup"] < 0.95 else "neutral")
        print(f"  {row['name']:24s} eff {row['baseline_eff']:.2f} -> "
              f"{row['auto_eff']:.2f}  speedup {row['speedup']:.2f}x  [{tag}]")


if __name__ == "__main__":
    main()
