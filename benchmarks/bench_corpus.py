"""Section 5.4: the full 520-application funnel.

Paper: "Of the 520 CUDA applications we studied, 75 had a SIMT efficiency
of less than about 80%. Our implementation detected non-trivial opportunity
in 16 applications, and 5 showed significant improvement."

This is the slowest benchmark (several minutes); a scaled-down funnel runs
in the regular test suite.
"""

from repro.harness import corpus_funnel


def test_corpus_funnel_full(once):
    result = once(corpus_funnel)
    funnel = result.data
    assert funnel.total == 520
    assert funnel.low_efficiency == 75
    assert funnel.detected == 16
    assert funnel.significant == 5
    print("\n" + result.text)
