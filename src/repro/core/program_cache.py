"""Compile caching: one :class:`CompiledProgram` per (module, options).

Threshold sweeps, scheduler ablations, figure regeneration, and the
benchmark suite all compile the *same* lowered module under the *same*
options over and over — ``compare_all`` alone compiles every Table 2
workload twice, and Figures 7 and 8 both call it. The
:class:`ProgramCache` memoizes :meth:`ReconvergenceCompiler.compile`
keyed by module identity plus the full option tuple
``(mode, threshold, auto_options, pipeline, compiler options)``. The
pipeline component is the *effective* description — an explicit
``pipeline=`` argument or the ``REPRO_PIPELINE`` override — so compiles
of the same module under different pass pipelines (or the same pipeline
with different pass options) occupy distinct entries; debug stops
(``REPRO_STOP_AFTER``) key separately too, so a truncated debug compile
never poisons the cache.

Modules are held weakly, so a cache entry dies with its module. Because
modules are mutable, each entry also stores the module's
:func:`~repro.ir.function.structure_token`; a hit with a stale token
recompiles. Callers get the *shared* :class:`CompiledProgram` — the
compiler clones its input, the machines never mutate a compiled module,
and launches carry their own memory/threads, so sharing is safe. Anything
that intends to mutate a compiled module must compile uncached (or clone).

``REPRO_COMPILE_CACHE=0`` (or :func:`cache_disabled` /
:func:`set_compile_cache`) turns the cache off globally; benchmarks use
that to measure the uncached path.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager

from repro.core.passmgr import default_pipeline
from repro.core.pipeline import ReconvergenceCompiler
from repro.ir.function import structure_token
from repro.obs.counters import ENGINE_COUNTERS

__all__ = [
    "PROGRAM_CACHE",
    "ProgramCache",
    "cache_disabled",
    "compile_cached",
    "compile_cache_enabled",
    "freeze_options",
    "set_compile_cache",
]

#: Global default, mirrored by the ``REPRO_COMPILE_CACHE`` env variable.
CACHE_ENABLED = os.environ.get("REPRO_COMPILE_CACHE", "1").lower() not in (
    "0",
    "false",
    "off",
)


def compile_cache_enabled():
    """The current global compile-cache default."""
    return CACHE_ENABLED


def set_compile_cache(enabled):
    """Set the global compile-cache default; returns the previous value."""
    global CACHE_ENABLED
    previous = CACHE_ENABLED
    CACHE_ENABLED = bool(enabled)
    return previous


@contextmanager
def cache_disabled():
    """Run a block with compile caching off (every compile runs the pipeline)."""
    previous = set_compile_cache(False)
    try:
        yield
    finally:
        set_compile_cache(previous)


def _freeze(value):
    """A hashable snapshot of an options value (dicts become sorted tuples).

    Raises TypeError for unhashable leaves; callers fall back to an
    uncached compile.
    """
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    hash(value)
    return value


#: Public name for the option-freezing helper: every engine cache keyed
#: by a knob fingerprint (this one, the segment JIT's SegmentCodeCache)
#: freezes its options through the same machinery.
freeze_options = _freeze


class ProgramCache:
    """Weakly module-keyed memo of compiled programs."""

    def __init__(self):
        # module -> {options key: (structure token, CompiledProgram)}
        self._programs = weakref.WeakKeyDictionary()
        self.hits = 0
        self.misses = 0

    def compile(self, module, mode="sr", threshold=None, auto_options=None,
                pipeline=None, **compiler_options):
        """The cached compile of ``module`` under exactly these options."""
        try:
            per_module = self._programs.setdefault(module, {})
            key = (
                mode,
                _freeze(threshold),
                _freeze(auto_options),
                _freeze(pipeline or default_pipeline()),
                os.environ.get("REPRO_STOP_AFTER") or None,
                _freeze(compiler_options),
            )
        except TypeError:
            # Unhashable option or non-weak-referenceable module: compile
            # directly, no caching.
            ENGINE_COUNTERS.program_cache_miss += 1
            return self._compile(
                module, mode, threshold, auto_options, pipeline,
                compiler_options,
            )
        token = structure_token(module)
        entry = per_module.get(key)
        if entry is not None and entry[0] == token:
            self.hits += 1
            ENGINE_COUNTERS.program_cache_hit += 1
            return entry[1]
        self.misses += 1
        ENGINE_COUNTERS.program_cache_miss += 1
        program = self._compile(
            module, mode, threshold, auto_options, pipeline, compiler_options
        )
        per_module[key] = (token, program)
        return program

    @staticmethod
    def _compile(module, mode, threshold, auto_options, pipeline,
                 compiler_options):
        compiler = ReconvergenceCompiler(**compiler_options)
        return compiler.compile(
            module, mode=mode, threshold=threshold, auto_options=auto_options,
            pipeline=pipeline,
        )

    def clear(self):
        self._programs.clear()
        self.hits = 0
        self.misses = 0

    def stats(self):
        return {"hits": self.hits, "misses": self.misses}


#: The process-wide cache used by :func:`compile_cached` and the workloads.
PROGRAM_CACHE = ProgramCache()


def compile_cached(module, mode="sr", threshold=None, auto_options=None,
                   pipeline=None, **compiler_options):
    """Compile through :data:`PROGRAM_CACHE` (or directly when disabled)."""
    if not CACHE_ENABLED:
        ENGINE_COUNTERS.program_cache_miss += 1
        return ProgramCache._compile(
            module, mode, threshold, auto_options, pipeline, compiler_options
        )
    return PROGRAM_CACHE.compile(
        module, mode=mode, threshold=threshold, auto_options=auto_options,
        pipeline=pipeline, **compiler_options,
    )
