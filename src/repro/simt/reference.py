"""Single-thread reference execution.

Runs one thread of a kernel *alone*, with every convergence-barrier
instruction treated as a no-op. Because barriers only affect scheduling,
a thread's observable behavior (its store trace and retired non-barrier
instructions) must be identical under warp execution with any
synchronization whatsoever — the library's central correctness invariant,
checked differentially in ``tests/test_reference_diff.py``.

Only valid for kernels whose threads do not communicate (no atomics used
for cross-thread data flow, loads only from launch-time memory); the
Table 2 workloads with static coarsening qualify.
"""

from __future__ import annotations

from repro.errors import LaunchError
from repro.simt.costs import DEFAULT_COST_MODEL
from repro.simt.executor import Executor
from repro.simt.machine import DEFAULT_MAX_ISSUES
from repro.simt.memory import GlobalMemory
from repro.simt.profiler import Profiler
from repro.simt.warp import WARP_SIZE, Thread, Warp


def run_reference_thread(
    module, kernel_name, tid, n_threads, args=(), memory=None, seed=2020,
    max_issues=DEFAULT_MAX_ISSUES, fastpath=None,
):
    """Execute thread ``tid`` of a launch in isolation.

    Returns the :class:`~repro.simt.warp.Thread` after completion (its
    ``store_trace`` is the observable result). ``memory`` is mutated the
    same way the thread alone would mutate it.
    """
    kernel = module.function(kernel_name)
    if not kernel.is_kernel:
        raise LaunchError(f"@{kernel_name} is not a kernel")
    if not 0 <= tid < n_threads:
        raise LaunchError(f"tid {tid} outside launch of {n_threads}")
    memory = memory if memory is not None else GlobalMemory()
    profiler = Profiler()
    executor = Executor(
        module, memory, DEFAULT_COST_MODEL, profiler, fastpath=fastpath
    )
    warp_id = tid // WARP_SIZE
    thread = Thread(tid, tid % WARP_SIZE, warp_id, kernel, args, seed)
    # A warp containing just this thread; barrier releases are handled
    # below (never through Warp.release, which indexes lanes positionally).
    warp = Warp(warp_id, [thread])

    issues = 0
    while not thread.is_exited:
        if not thread.is_runnable:
            # Alone in the warp, any barrier the thread parks on is
            # immediately releasable (it is the only member).
            released = 0
            for barrier in warp.barriers.barriers():
                lanes = barrier.releasable()
                if lanes:
                    barrier.release(lanes)
                    thread.unpark()
                    released += 1
            if not released:
                # Soft barriers with threshold > 1: force the release (no
                # other participant can ever arrive).
                for barrier in warp.barriers.barriers():
                    if thread.lane in barrier.parked:
                        barrier.withdraw(thread.lane)
                        thread.unpark()
            if not thread.is_runnable:
                raise LaunchError("reference thread wedged on a barrier")
        pc = thread.pc()
        executor.execute(warp, pc, [thread])
        issues += 1
        if issues > max_issues:
            raise LaunchError(
                f"reference thread {tid} exceeded {max_issues} issue slots; "
                "likely an infinite loop"
            )
    return thread


def run_reference_launch(module, kernel_name, n_threads, args=(), seed=2020,
                         fastpath=None):
    """Reference store traces for every thread, each run in isolation on a
    private copy of the initial memory."""
    traces = {}
    for tid in range(n_threads):
        thread = run_reference_thread(
            module, kernel_name, tid, n_threads, args=args,
            memory=GlobalMemory(), seed=seed, fastpath=fastpath,
        )
        traces[tid] = list(thread.store_trace)
    return traces
