"""Figure 7: SIMT efficiency, default vs Speculative Reconvergence."""

from repro.harness import figure7
from repro.workloads import FIGURE7_WORKLOADS


def test_figure7(once):
    result = once(figure7)
    rows = {row.workload: row for row in result.data}
    assert set(rows) == set(FIGURE7_WORKLOADS)
    for name, row in rows.items():
        assert row.sr_eff > row.baseline_eff, name
        assert row.checksum_ok, name
    print("\n" + result.text)
