"""Compiler pipeline tests: modes, reports, immutability, determinism."""

import pytest

from repro.core import MODES, ReconvergenceCompiler, compile_baseline, compile_sr
from repro.errors import TransformError
from repro.ir import Opcode, format_module, verify_module
from repro.simt import GPUMachine
from tests.helpers import listing1_module


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(TransformError):
            ReconvergenceCompiler().compile(listing1_module(), mode="warp9")

    def test_all_modes_compile_and_verify(self):
        for mode in MODES:
            prog = ReconvergenceCompiler().compile(listing1_module(), mode=mode)
            assert verify_module(prog.module)

    def test_input_module_never_mutated(self):
        module = listing1_module()
        before = format_module(module)
        ReconvergenceCompiler().compile(module, mode="sr")
        assert format_module(module) == before

    def test_baseline_has_pdom_only(self):
        prog = compile_baseline(listing1_module())
        origins = {
            i.attrs.get("origin")
            for _, _, i in prog.module.function("k").instructions()
            if i.is_barrier_op
        }
        assert origins == {"pdom"}

    def test_none_mode_has_no_barriers(self):
        prog = ReconvergenceCompiler().compile(listing1_module(), mode="none")
        assert not [
            i
            for _, _, i in prog.module.function("k").instructions()
            if i.is_barrier_op
        ]

    def test_sr_mode_has_both(self):
        prog = compile_sr(listing1_module())
        origins = {
            i.attrs.get("origin")
            for _, _, i in prog.module.function("k").instructions()
            if i.is_barrier_op
        }
        assert {"pdom", "sr"} <= origins

    def test_predict_stripped_in_every_mode(self):
        for mode in MODES:
            prog = ReconvergenceCompiler().compile(listing1_module(), mode=mode)
            assert not [
                i
                for _, _, i in prog.module.function("k").instructions()
                if i.opcode is Opcode.PREDICT
            ]


class TestReports:
    def test_report_contents(self):
        prog = compile_sr(listing1_module())
        report = prog.report
        assert report.mode == "sr"
        assert len(report.predictions) == 1
        assert len(report.sr_reports) == 1
        assert report.deconfliction_reports
        assert report.allocation["k"]
        assert "Predict" in report.describe()

    def test_baseline_report_skips_sr(self):
        prog = compile_baseline(listing1_module())
        assert prog.report.predictions == []
        assert prog.report.sr_reports == []


class TestDeterminism:
    def test_compilation_is_deterministic(self):
        a = compile_sr(listing1_module())
        b = compile_sr(listing1_module())
        assert format_module(a.module) == format_module(b.module)

    def test_none_mode_correctness(self):
        # Even with NO synchronization, per-thread results are identical —
        # barriers are a performance feature, never a correctness one.
        base = compile_baseline(listing1_module())
        none = ReconvergenceCompiler().compile(listing1_module(), mode="none")
        a = GPUMachine(base.module).launch("k", 32)
        b = GPUMachine(none.module).launch("k", 32)
        assert a.memory.snapshot() == b.memory.snapshot()
