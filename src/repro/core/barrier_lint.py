"""Barrier-discipline lint.

Static checks on compiled synchronization, catching the hazards the paper
warns about before simulation does:

* **stranding** — a barrier may be joined on some path into a function
  exit without an intervening wait or cancel. Hardware drains exiting
  lanes, but a strand on a *loop* path (joined-out of a latch whose header
  has no wait ahead) indicates a missing ``CancelBarrier``.
* **orphan wait** — a wait that no path can reach while joined: the
  barrier will always pass through, so the hint does nothing.
* **unresolved conflict** — two barriers whose live ranges overlap
  non-inclusively with no deconfliction cancel before either wait
  (the Section 4.3 deadlock hazard).

Returns :class:`LintFinding` records rather than raising: the pipeline's
output should always be clean, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.barrier_liveness import BarrierLiveness
from repro.core.conflicts import ConflictAnalysis, literal_barriers
from repro.core.joined_barriers import JoinedBarriers
from repro.core.primitives import barrier_name_of, is_cancel, is_wait
from repro.ir.instructions import Opcode

SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"


@dataclass(frozen=True)
class LintFinding:
    severity: str
    kind: str        # "stranded" | "orphan-wait" | "unresolved-conflict"
    barrier: str
    where: str
    message: str

    def describe(self):
        return f"[{self.severity}] {self.kind} {self.barrier} at {self.where}: {self.message}"


def _orphan_waits(function, joined):
    findings = []
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            if not is_wait(instr):
                continue
            name = barrier_name_of(instr)
            if name is None:
                continue
            if name not in joined.joined_before(block, index):
                findings.append(
                    LintFinding(
                        severity=SEVERITY_WARNING,
                        kind="orphan-wait",
                        barrier=name,
                        where=f"{function.name}/{block.name}:{index}",
                        message="no path reaches this wait while joined; "
                        "it always passes through",
                    )
                )
    return findings


def _stranded_barriers(function, joined, liveness):
    """Joined at a latch (back edge) while dead: the thread loops forever
    carrying membership no wait will ever clear — waiters strand."""
    findings = []
    for block in function.blocks:
        for name in joined.joined_out(block.name):
            for succ in block.successor_names():
                # back edge heuristic: successor appears earlier in layout
                blocks_order = [b.name for b in function.blocks]
                if blocks_order.index(succ) <= blocks_order.index(block.name):
                    if name not in liveness.live_in(succ) and name in joined.joined_in(succ):
                        findings.append(
                            LintFinding(
                                severity=SEVERITY_WARNING,
                                kind="stranded",
                                barrier=name,
                                where=f"{function.name}/{block.name}->{succ}",
                                message="joined around a loop with no wait "
                                "or cancel ahead",
                            )
                        )
    return findings


def _barrier_origins(function):
    origins = {}
    for _, _, instr in function.instructions():
        if instr.is_barrier_op and instr.opcode is not Opcode.BMOV:
            name = barrier_name_of(instr)
            origin = instr.attrs.get("origin")
            if name is not None and origin:
                origins.setdefault(name, set()).add(origin)
    return origins


def _unresolved_conflicts(function, analysis):
    """Conflicting pair with no deconfliction cancel guarding either wait.

    A conflict involving an SR barrier is the Section 4.3 deadlock hazard
    (error). Conflicts purely among compiler PDOM barriers arise as a side
    effect of deconfliction breaks punching holes in live ranges; their
    waits cannot block each other, so they are only warnings.
    """
    findings = []
    origins = _barrier_origins(function)
    for conflict in analysis.conflicts:
        guarded = False
        for block in function.blocks:
            for index, instr in enumerate(block.instructions):
                if is_wait(instr) and barrier_name_of(instr) in (
                    conflict.first,
                    conflict.second,
                ):
                    other = conflict.other(barrier_name_of(instr))
                    for previous in block.instructions[:index]:
                        if is_cancel(previous) and barrier_name_of(previous) == other:
                            guarded = True
        if not guarded:
            involves_sr = any(
                origin.startswith("sr")
                for name in (conflict.first, conflict.second)
                for origin in origins.get(name, ())
            )
            findings.append(
                LintFinding(
                    severity=SEVERITY_ERROR if involves_sr else SEVERITY_WARNING,
                    kind="unresolved-conflict",
                    barrier=f"{conflict.first}x{conflict.second}",
                    where=function.name,
                    message="conflicting live ranges with no deconfliction "
                    "cancel; threads may wait on each other (Section 4.3)",
                )
            )
    return findings


def lint_function(function):
    """All findings for one function."""
    if not literal_barriers(function):
        return []
    joined = JoinedBarriers(function)
    liveness = BarrierLiveness(function)
    analysis = ConflictAnalysis(function, joined=joined)
    findings = []
    findings.extend(_orphan_waits(function, joined))
    findings.extend(_stranded_barriers(function, joined, liveness))
    findings.extend(_unresolved_conflicts(function, analysis))
    return findings


def lint_module(module, errors_only=False):
    """All findings across a module."""
    findings = []
    for function in module:
        findings.extend(lint_function(function))
    if errors_only:
        findings = [f for f in findings if f.severity == SEVERITY_ERROR]
    return findings
