"""Setup shim: this environment lacks the `wheel` package (offline), so
`pip install -e .` cannot build an editable wheel. `python setup.py develop`
installs the package in editable mode with plain setuptools."""
from setuptools import setup

setup()
