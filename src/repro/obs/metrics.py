"""Stall-reason metrics: where do the cycles actually go?

The profiler says *how many* cycles a launch took; this registry says
*why*. Every issue of duration ``c`` attributes ``c`` cycles to exactly one
bucket per lane of the issuing warp:

* ``active`` — the lane was in the issuing PC-group,
* ``barrier_wait`` — the lane was parked on a convergence barrier,
* ``diverged_inactive`` — the lane was runnable but at a different PC
  (divergence serialization, the paper's lost SIMT efficiency),
* ``finished`` — the lane had exited the kernel.

That makes the attribution *exactly conservative*: for every warp and
every lane, the buckets sum to the warp's total cycles
(:meth:`LaunchMetrics.check_attribution`), so "cycles lost to barrier
waits" and "cycles lost to divergence" are directly comparable to the
runtime the profiler reports.

On top of the attribution, the registry keeps per-barrier occupancy and
wait-time distributions and a divergence-depth histogram (number of
distinct PC-groups per issue).

Metrics are off by default; ``GPUMachine(..., metrics=True)`` turns them
on, and ``launch.metrics`` exposes the populated registry.
"""

from __future__ import annotations

__all__ = [
    "ACTIVE",
    "STALL_BARRIER",
    "STALL_DIVERGED",
    "STALL_FINISHED",
    "STALL_REASONS",
    "Histogram",
    "LaunchMetrics",
]

ACTIVE = "active"
STALL_BARRIER = "barrier_wait"
STALL_DIVERGED = "diverged_inactive"
STALL_FINISHED = "finished"
STALL_REASONS = (STALL_BARRIER, STALL_DIVERGED, STALL_FINISHED)


class Histogram:
    """A sparse integer-valued histogram (value -> count)."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts = {}

    def add(self, value, weight=1):
        self.counts[value] = self.counts.get(value, 0) + weight

    @property
    def count(self):
        return sum(self.counts.values())

    @property
    def total(self):
        return sum(v * c for v, c in self.counts.items())

    @property
    def mean(self):
        n = self.count
        return self.total / n if n else 0.0

    @property
    def min(self):
        return min(self.counts) if self.counts else 0

    @property
    def max(self):
        return max(self.counts) if self.counts else 0

    def to_dict(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "values": {str(k): v for k, v in sorted(self.counts.items())},
        }

    def __repr__(self):
        return (f"<Histogram n={self.count} mean={self.mean:.2f} "
                f"min={self.min} max={self.max}>")


class LaunchMetrics:
    """Cycle attribution + barrier/divergence distributions for one launch."""

    def __init__(self):
        #: warp_id -> total cycles the warp spent (mirrors the profiler)
        self.warp_cycles = {}
        #: warp_id -> lane -> {bucket: cycles}; buckets are ACTIVE + stalls
        self.lane_attribution = {}
        #: distinct runnable PC-groups per issue
        self.divergence_depth = Histogram()
        #: barrier name -> Histogram of parked-lane count at each arrival
        self.barrier_occupancy = {}
        #: barrier name -> Histogram of park-to-release wait durations
        self.barrier_wait = {}
        self._park_ts = {}  # (warp_id, barrier, lane) -> park cycle

    # ------------------------------------------------------------------
    # Hooks driven by the executor / machine (slow path only)
    # ------------------------------------------------------------------
    def on_issue(self, warp, pc, opcode, group, cycles):
        """Attribute ``cycles`` for every lane of ``warp`` for one issue."""
        wid = warp.warp_id
        lanes = self.lane_attribution.get(wid)
        if lanes is None:
            lanes = self.lane_attribution[wid] = {
                t.lane: {} for t in warp.threads
            }
        active_lanes = {t.lane for t in group}
        pcs = set()
        for thread in warp.threads:
            if thread.lane in active_lanes:
                bucket = ACTIVE
            elif thread.is_exited:
                bucket = STALL_FINISHED
            elif thread.is_runnable:
                bucket = STALL_DIVERGED
                pcs.add(thread.pc())
            else:
                bucket = STALL_BARRIER
            attr = lanes[thread.lane]
            attr[bucket] = attr.get(bucket, 0) + cycles
        # Active lanes share one PC; runnable-but-inactive lanes add theirs.
        self.divergence_depth.add(len(pcs) + 1)
        self.warp_cycles[wid] = self.warp_cycles.get(wid, 0) + cycles

    def on_park(self, warp_id, barrier, lanes, ts, parked):
        hist = self.barrier_occupancy.get(barrier)
        if hist is None:
            hist = self.barrier_occupancy[barrier] = Histogram()
        hist.add(parked)
        for lane in lanes:
            self._park_ts[(warp_id, barrier, lane)] = ts

    def on_release(self, warp_id, barrier, lanes, ts):
        hist = self.barrier_wait.get(barrier)
        if hist is None:
            hist = self.barrier_wait[barrier] = Histogram()
        for lane in lanes:
            start = self._park_ts.pop((warp_id, barrier, lane), ts)
            hist.add(ts - start)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def warp_attribution(self, warp_id):
        """{bucket: cycles} summed over the warp's lanes."""
        totals = {}
        for attr in self.lane_attribution.get(warp_id, {}).values():
            for bucket, cycles in attr.items():
                totals[bucket] = totals.get(bucket, 0) + cycles
        return totals

    def stall_cycles(self):
        """Launch-wide {reason: lane-cycles} over the three stall reasons."""
        totals = {reason: 0 for reason in STALL_REASONS}
        for wid in self.lane_attribution:
            for bucket, cycles in self.warp_attribution(wid).items():
                if bucket != ACTIVE:
                    totals[bucket] = totals.get(bucket, 0) + cycles
        return totals

    def active_cycles(self):
        """Launch-wide lane-cycles spent issuing."""
        return sum(
            self.warp_attribution(wid).get(ACTIVE, 0)
            for wid in self.lane_attribution
        )

    def check_attribution(self):
        """Verify the conservation law: per warp, per lane, the buckets sum
        to the warp's total cycles. Returns the checked warp ids."""
        checked = []
        for wid, lanes in self.lane_attribution.items():
            expected = self.warp_cycles.get(wid, 0)
            for lane, attr in lanes.items():
                got = sum(attr.values())
                if got != expected:
                    raise AssertionError(
                        f"warp {wid} lane {lane}: attribution {got} != "
                        f"warp cycles {expected} ({attr})"
                    )
            checked.append(wid)
        return checked

    def summary(self):
        """JSON-ready digest used by ``Profiler.summary()`` and the CLI."""
        return {
            "stall_cycles": self.stall_cycles(),
            "active_lane_cycles": self.active_cycles(),
            "divergence_depth": self.divergence_depth.to_dict(),
            "barriers": {
                name: {
                    "occupancy": self.barrier_occupancy[name].to_dict(),
                    "wait": self.barrier_wait.get(name, Histogram()).to_dict(),
                }
                for name in sorted(self.barrier_occupancy)
            },
        }
