"""Speculative round scheduling: optimistic lockstep progress beyond forced picks.

Segment fusion (PR 4) and warp batching (PR 5) only engage when every
scheduler pick is *forced* — uniquely determined and stable for a whole
straight-line run. Divergent multi-warp phases break that precondition
(size ties under the convergence policy, multi-group warps under
round-robin), so the paper's hardest region still runs one instruction
per warp per slot through the serial loop. This module generalizes the
``FootprintMemory`` reservation machinery into PBBS-style
``speculative_for`` rounds that tolerate *non-forced* picks.

One **speculative round** works in three phases:

1. **Plan** — snapshot each live warp's pick order without executing or
   mutating scheduler state. Fusable ops (``FUSABLE_OPS``) cannot park,
   exit, diverge, call, or release barriers, so a warp's group
   *structure* — which PCs hold how many threads, and each bucket's
   lowest lane — evolves deterministically and independently of register
   values. ``SchedulerBase.spec_cursor`` exposes each policy's pick as a
   pure function of that structure (round-robin's shared counter is
   virtualized: all live warps issue one slot per rotation, so this
   warp's k-th pick sees ``counter + k * n_warps + warp_index``). The
   planner advances a tiny virtual-group automaton per warp, recording
   the pick sequence until a non-fusable opcode or the round-size cap
   cuts it. The round length ``L`` is the minimum over warps, keeping
   every warp's issued-slot count aligned with the serial rotation.

2. **Execute** — each warp runs its planned ``L`` slots in its private
   sandbox, warp-major, with the executor's memory swapped to one shared
   :class:`~repro.simt.memory.FootprintMemory`. Consecutive picks of the
   same group through contiguous PCs coalesce into bounded fused
   segments (``DecodedProgram.segment_bounded``) — the planner's merge
   tracking guarantees no other group sits inside a coalesced run — and
   everything else issues through the decoded per-instruction handlers.
   Accounting (retire counts, profiler records, warp cycles, scheduler
   consumption) is deferred to commit, so rollback only restores thread
   state and memory.

3. **Commit or roll back** — after each warp the guard's read/write sets
   are drained and checked against the accumulated sets of
   earlier-committed warps in serial-schedule order. While all sets stay
   disjoint, warp-major execution is observationally identical to the
   serial rotation-major interleaving (no warp can see another's round
   writes), so the round commits: scheduler counters advance by
   ``consume(L)`` per warp exactly as ``L`` real picks would have, and
   deferred accounting lands (all of it sum-commutative across warps).
   The first conflict — or a footprint overflow — aborts the *whole*
   round: memory is undone newest-first, every warp's thread state is
   restored from its checkpoint, and the machine falls back to ordinary
   per-slot rounds. Partial (prefix) commits would be unsound: a
   replayed warp would observe the committed warps' full-round writes
   where the serial schedule interleaves them slot by slot.

Rounds therefore never change an observable value — commit order *is*
the serial order; speculation only overlaps the work.

Conflict streaks shrink the round adaptively (halving down to
``_MIN_ROUND_SLOTS``) instead of the batcher's hard 8-streak disable;
only persistent conflicts at the minimum size switch speculation off for
the launch. ``REPRO_SPEC=0`` (or :func:`set_spec` /
:func:`spec_disabled`, or ``GPUMachine(spec=False)``) disables the layer
globally; metrics, sinks, traces, and disabled fastpath/segments disable
it implicitly because no segment engine exists then (the same gate as
the batcher).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from math import lcm

from repro.analysis.memeffects import classify_launch
from repro.errors import SimulationError
from repro.ir.instructions import Opcode
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.recorder import dump_post_mortem
from repro.simt.batch import _checkpoint, _restore
from repro.simt.memory import FootprintMemory, FootprintOverflow
from repro.simt.segments import FUSABLE_OPS
from repro.simt.warp import WARP_SIZE

__all__ = [
    "SpecRounds",
    "make_spec",
    "set_spec",
    "spec_disabled",
    "spec_enabled",
]

#: Global default for new machines. Flip with ``set_spec`` or the
#: ``REPRO_SPEC`` environment variable (0/false/off disables).
SPEC_ENABLED = os.environ.get("REPRO_SPEC", "1").lower() not in (
    "0",
    "false",
    "off",
)

#: Adaptive round size (slots per warp per round): start in the middle,
#: double after ``_GROW_AFTER`` clean commits, halve after
#: ``_BACKOFF_AFTER`` consecutive conflicts, and give up on the launch
#: only after ``_DISABLE_AFTER`` consecutive conflicts at the floor.
_MIN_ROUND_SLOTS = 4
_MAX_ROUND_SLOTS = 64
_START_ROUND_SLOTS = 16
_GROW_AFTER = 4
_BACKOFF_AFTER = 2
_DISABLE_AFTER = 8

#: Shortest round worth running, in slots per warp. A round's fixed
#: cost — planning every uncached warp, and on guarded launches the
#: thread checkpoints and per-access footprint tracking — is paid per
#: round, while its benefit scales with the slots it absorbs; below
#: this length the fixed cost exceeds the serial slots it replaces.
#: Guarded rounds carry the bigger fixed cost, so they need more slots
#: to clear it.
_MIN_COMMIT_SLOTS = 8
_MIN_GUARDED_SLOTS = 16

#: Decline a planned round unless fused segments cover at least half of
#: its slots (per-slot steps times this weight must not exceed the round
#: total). Per-slot steps run at serial speed inside a round, so a round
#: they dominate pays round overhead for nothing — round-robin alternating
#: two groups every slot coalesces to nothing and would run the whole
#: round at serial speed. Tests pin this to 0 to exercise commit paths
#: regardless of profitability.
_PER_SLOT_WEIGHT = 2

#: Footprint cap per round (addresses); overflow counts as a conflict.
_FOOTPRINT_LIMIT = 4096

#: Serial slots to skip after a failed attempt. Planning is the round's
#: fixed cost, and a warp sitting at (or about to reach) a non-fusable
#: op keeps failing the plan for every serial slot it takes to clear it;
#: retrying each slot would pay the planner O(round-size) per failure.
#: The same holds after a conflicted round: the sharing pattern that
#: collided rarely disappears within a slot or two. Consecutive failures
#: double the cooldown (up to the cap) — a warp grinding through a long
#: non-fusable phase fails every attempt, and the planner's probe cost
#: must not be paid per serial slot for the whole phase.
_PLAN_COOLDOWN = 8
_MAX_COOLDOWN = 512

#: Per-launch plan-cache entries before a wholesale clear (loop-resident
#: warps revisit a handful of structures; the cap only guards pathological
#: programs that never repeat one).
_PLAN_CACHE_LIMIT = 4096


def spec_enabled():
    """The current global speculative-rounds default."""
    return SPEC_ENABLED


def set_spec(enabled):
    """Set the global speculative-rounds default; returns the previous."""
    global SPEC_ENABLED
    previous = SPEC_ENABLED
    SPEC_ENABLED = bool(enabled)
    return previous


@contextmanager
def spec_disabled():
    """Run a block with speculative rounds off (serial non-forced picks)."""
    previous = set_spec(False)
    try:
        yield
    finally:
        set_spec(previous)


def make_spec(machine, executor, scheduler, kernel_name, args, n_threads):
    """A :class:`SpecRounds` for this launch, or None when speculation
    cannot engage (knob off, no fused segments available, single warp,
    or a scheduler whose picks cannot be snapshotted)."""
    enabled = machine.spec if machine.spec is not None else SPEC_ENABLED
    if not enabled or n_threads <= WARP_SIZE:
        return None
    if executor.segment_at is None:
        # Observability sink, metrics, issue trace, fastpath off, or
        # segments off: no segment engine, nothing worth speculating.
        return None
    if scheduler.spec_cursor(2, 0) is None:
        # Policy cannot be modelled without execution (a probe cursor;
        # nothing is executed, so nothing is perturbed).
        return None
    # The batcher's static footprint proof carries over verbatim: when
    # every warp's reads and writes are disjoint by construction, round
    # conflicts are impossible and the guard machinery (footprint
    # tracking, thread checkpoints, deferred accounting) would be pure
    # overhead. classify_launch memoizes per launch shape, so this is a
    # cache hit whenever the batcher already classified the launch.
    classification = classify_launch(
        machine.module, kernel_name, tuple(args), n_threads
    )
    return SpecRounds(
        machine, executor, scheduler,
        guarded=classification != "disjoint",
    )


def _plan_warp(groups, cursor, program_order, entry_at, limit):
    """Snapshot one warp's next picks by advancing a virtual-group
    automaton: ``{pc: (size, min_lane, group_id)}``. Fusable ops move a
    whole bucket to one statically-known next PC (fall-through or the
    BRA target) and can merge it with a resident bucket — exactly the
    machine's uniform carry-over patch — so the structure, and with it
    every pick, is known without touching thread state. Returns the
    ``(pc, entry, group_id)`` pick list, cut at the first non-fusable
    opcode or at ``limit``.
    """
    vgroups = {}
    next_id = 0
    for pc, threads in groups.items():
        vgroups[pc] = (len(threads), threads[0].lane, next_id)
        next_id += 1
    picks = []
    for slot in range(limit):
        if len(vgroups) == 1:
            # Converged (or re-converged) structure: every policy picks
            # the only candidate; skip the cursor call on the hot path.
            pc = next(iter(vgroups))
        else:
            pc = cursor(vgroups, program_order, slot)
        try:
            entry = entry_at(pc)
        except SimulationError:
            # Malformed PC (missing terminator): cut the plan here so the
            # serial loop raises at the exact slot it always did.
            break
        if entry.opcode not in FUSABLE_OPS:
            break
        size, lane, gid = vgroups.pop(pc)
        picks.append((pc, entry, gid))
        if entry.opcode is Opcode.BRA:
            new_pc = (pc[0], entry.instr.operands[0].name, 0)
        else:
            new_pc = (pc[0], pc[1], pc[2] + 1)
        resident = vgroups.get(new_pc)
        if resident is None:
            vgroups[new_pc] = (size, lane, gid)
        else:
            # Merge: a fresh id so coalescing cannot fuse across the
            # boundary where the serial path re-sorts the bucket.
            vgroups[new_pc] = (
                size + resident[0], min(lane, resident[1]), next_id
            )
            next_id += 1
    return picks


def _coalesce(picks, length, segment_bounded):
    """Fold a pick prefix into execution steps: ``(segment, pc, entry)``
    with ``segment`` set for a fused run of the same group through
    contiguous PCs (entry None), or ``entry`` set for one per-slot issue
    (segment None). A group-id change — another bucket merged in, or a
    different group was picked — ends a run, so a coalesced segment's
    interior can never contain another group."""
    steps = []
    i = 0
    while i < length:
        pc, entry, gid = picks[i]
        k = i + 1
        expect = pc[2] + 1
        while k < length:
            npc, _nentry, ngid = picks[k]
            if (
                ngid != gid
                or npc[0] != pc[0]
                or npc[1] != pc[1]
                or npc[2] != expect
            ):
                break
            k += 1
            expect += 1
        run = k - i
        segment = segment_bounded(pc, run) if run >= 2 else None
        if segment is not None:
            steps.append((segment, pc, None))
            i += segment.n
        else:
            steps.append((None, pc, entry))
            i += 1
    return steps


class SpecRounds:
    """Runs optimistic lockstep rounds whenever forced picks fail."""

    __slots__ = (
        "machine", "executor", "scheduler", "profiler", "enabled",
        "guarded", "round_size", "_conflicts", "_commits", "_cooldown",
        "_fail_streak", "_plan_cache", "_segment_bounded", "_entry_at",
    )

    def __init__(self, machine, executor, scheduler, guarded=True):
        self.machine = machine
        self.executor = executor
        self.scheduler = scheduler
        self.profiler = executor.profiler
        self.enabled = True
        self.guarded = guarded
        self.round_size = _START_ROUND_SLOTS
        self._conflicts = 0   # consecutive conflicted rounds
        self._commits = 0     # consecutive committed rounds
        self._cooldown = 0    # serial slots left before the next attempt
        self._fail_streak = 0  # consecutive failed plans (drives cooldown)
        # Plans are pure functions of (group structure, warp count, the
        # policy's plan token modulo the lcm of the group counts the
        # trajectory visits) — constant token for stateless policies,
        # counter phase for round-robin — so loop-resident warps that
        # revisit a structure reuse the pick list instead of replanning.
        # Rows are ``(sig, n_warps) -> (lcm, {token % lcm: (picks, to)})``.
        self._plan_cache = {}
        self._segment_bounded = executor._decoded.segment_bounded
        self._entry_at = executor._decoded.entry

    # ------------------------------------------------------------------
    def try_round(self, live_warps, issues):
        """Run one speculative round across ``live_warps``.

        Returns the updated issue count, or None when the round cannot
        engage or conflicted — the caller then runs ordinary per-slot
        rounds, after which speculation may re-engage.
        """
        if not self.enabled:
            return None
        if self._cooldown:
            self._cooldown -= 1
            return None
        executor = self.executor
        scheduler = self.scheduler
        program_order = executor.program_order
        entry_at = self._entry_at
        n_warps = len(live_warps)
        cap = self.round_size

        # ---- plan: snapshot every warp's pick order ------------------
        # A round shorter than this is declined: its fixed cost (planning
        # every uncached warp; checkpoints and footprint tracking when
        # guarded) exceeds the serial slots it would replace. Clamped to
        # the adaptive cap so conflict backoff keeps retrying at the
        # granularity it chose.
        floor = min(
            _MIN_GUARDED_SLOTS if self.guarded else _MIN_COMMIT_SLOTS,
            cap,
        )

        cache = self._plan_cache
        plans = [None] * n_warps
        pending = []  # (j, warp, groups, sig) not resolved by the cache
        length = cap
        for j, warp in enumerate(live_warps):
            groups = warp.groups_cache
            if groups is None:
                groups = warp.groups()
                warp.groups_cache = groups
            if not groups:
                # Parked or finished warp: drain/done/deadlock handling
                # belongs to the serial loop, and the state rarely clears
                # within a slot.
                return self._plan_failed()
            sig = tuple(
                (pc, len(bucket), bucket[0].lane)
                for pc, bucket in groups.items()
            )
            row = cache.get((sig, n_warps))
            if row is not None:
                hit = row[1].get(
                    scheduler.spec_plan_token(n_warps, j) % row[0]
                )
                if hit is not None and (
                    len(hit[0]) < hit[1] or len(hit[0]) >= cap
                ):
                    # A structure-cut plan (shorter than its limit) is
                    # valid at any cap; a limit-cut one only when it
                    # already covers the current cap.
                    picks = hit[0]
                    if len(picks) < floor:
                        return self._plan_failed()
                    if len(picks) < length:
                        length = len(picks)
                    plans[j] = picks
                    continue
            pending.append((j, warp, groups, sig))

        # Fail-fast probe: one warp cut short sinks the whole attempt,
        # and finding that out *after* planning a deep warp to the cap is
        # the dominant cost of failed attempts. Probing each unresolved
        # warp to the profitability floor settles both engagement and
        # round length before any deep plan.
        probed = []
        for j, warp, groups, sig in pending:
            cursor = scheduler.spec_cursor(n_warps, j)
            probe = _plan_warp(groups, cursor, program_order, entry_at, floor)
            if len(probe) < floor:
                # A warp about to leave the fusable region, or a fusable
                # run too short to clear the round's fixed cost.
                return self._plan_failed()
            probed.append((j, groups, sig, cursor))

        stateless = getattr(scheduler, "spec_stateless", False)
        for j, groups, sig, cursor in probed:
            # Stateless policies plan to the cap: one plan per structure
            # serves every future round, so overplanning amortizes. A
            # stateful policy's plan mostly serves this round (reuse
            # needs a congruent counter phase), so clamp it to the
            # running minimum — the round can never be longer. Plans cut
            # by structure (the common case: a conditional branch ends
            # the fusable run) cache identically either way.
            limit = cap if stateless else length
            picks = _plan_warp(groups, cursor, program_order, entry_at, limit)
            # A stateful cursor reports the group counts its trajectory
            # visited (see RoundRobinScheduler.spec_cursor); tokens
            # congruent modulo their lcm replay the identical plan. A
            # stateless cursor reports nothing: lcm() == 1, one plan per
            # structure.
            modulus = lcm(*getattr(cursor, "lens", ()))
            if len(cache) >= _PLAN_CACHE_LIMIT:
                cache.clear()
            key = (sig, n_warps)
            row = cache.get(key)
            if row is None or row[0] != modulus:
                # A replan (a limit-cut entry invalidated by cap growth)
                # can walk further and visit new group counts; entries
                # keyed under the old modulus are not comparable.
                row = (modulus, {})
                cache[key] = row
            row[1][scheduler.spec_plan_token(n_warps, j) % modulus] = (
                picks, limit,
            )
            if len(picks) < floor:
                # Unreachable for fresh plans (the probe walked the same
                # deterministic trajectory to the floor), kept for the
                # invariant's sake.
                return self._plan_failed()
            if len(picks) < length:
                length = len(picks)
            plans[j] = picks
        self._fail_streak = 0

        total = length * n_warps
        if issues + total > self.machine.max_issues:
            # Let the per-slot loop raise LaunchError at the exact slot
            # the serial schedule would have.
            return None

        segment_bounded = self._segment_bounded
        warp_steps = [
            _coalesce(picks, length, segment_bounded) for picks in plans
        ]

        # Price the round before running it: per-slot steps cost what the
        # serial loop would have paid anyway, so a round only wins when
        # fused segments cover most of it. Policies that alternate groups
        # every slot (round-robin across a divergent phase) coalesce to
        # nothing — decline rather than pay round overhead for serial-
        # speed execution. Nothing has been executed yet, so declining
        # here is just another failed plan.
        per_slot = sum(
            1 for steps in warp_steps
            for segment, _pc, _entry in steps if segment is None
        )
        if per_slot * _PER_SLOT_WEIGHT > total:
            return self._plan_failed()

        committed = self._execute_round(live_warps, warp_steps, length)

        profiler = self.profiler
        profiler.spec_rounds += 1
        recorder = self.machine._recorder
        if committed:
            self._conflicts = 0
            self._commits += 1
            profiler.spec_committed += n_warps
            if self._commits >= _GROW_AFTER and self.round_size < _MAX_ROUND_SLOTS:
                self.round_size = min(self.round_size * 2, _MAX_ROUND_SLOTS)
                self._commits = 0
            if recorder is not None and recorder.verbose:
                recorder.record(
                    "spec-commit", {"warps": n_warps, "slots": length}
                )
            return issues + total

        # ---- conflicted round: everything was rolled back ------------
        self._commits = 0
        self._conflicts += 1
        self._cooldown = _PLAN_COOLDOWN
        profiler.spec_retries += 1
        if recorder is not None:
            recorder.record(
                "spec-rollback",
                {"warps": n_warps, "slots": length,
                 "streak": self._conflicts},
            )
        if self._conflicts >= _BACKOFF_AFTER:
            if self.round_size > _MIN_ROUND_SLOTS:
                # Adaptive backoff: smaller rounds touch fewer addresses
                # per warp, so sharing workloads get another chance at a
                # finer granularity instead of a hard disable.
                self.round_size = max(self.round_size // 2, _MIN_ROUND_SLOTS)
                self._conflicts = 0
                profiler.spec_backoffs += 1
                if recorder is not None:
                    recorder.record(
                        "spec-backoff", {"round_size": self.round_size}
                    )
            elif self._conflicts >= _DISABLE_AFTER:
                # Persistent sharing at the finest granularity: stop
                # speculating for this launch.
                self.enabled = False
                ENGINE_COUNTERS.spec_disables += 1
                if recorder is not None:
                    recorder.record(
                        "spec-disable", {"streak": self._conflicts}
                    )
                    dump_post_mortem(recorder, "spec-disable")
        return None

    # ------------------------------------------------------------------
    def _plan_failed(self):
        """Schedule the next attempt after a failed plan. The skip doubles
        with each consecutive failure (a warp grinding through a long
        non-fusable phase fails every attempt, and the planner probe must
        not be paid per serial slot for the whole phase); any successful
        plan resets the streak."""
        self._cooldown = min(
            _PLAN_COOLDOWN << self._fail_streak, _MAX_COOLDOWN
        )
        if self._cooldown < _MAX_COOLDOWN:
            self._fail_streak += 1
        return None

    # ------------------------------------------------------------------
    def _execute_round(self, live_warps, warp_steps, length):
        """Run every warp's planned slots under the shared guard;
        returns True when the whole round committed, False when it
        conflicted and was rolled back exactly."""
        if not self.guarded:
            self._run_disjoint(live_warps, warp_steps, length)
            return True
        executor = self.executor
        profiler = self.profiler
        guard = FootprintMemory(executor.memory, limit=_FOOTPRINT_LIMIT)
        real = executor.memory
        acc_reads = set()
        acc_writes = set()
        done = []      # (warp, new groups dict, deferred records)
        restore = []   # (threads, checkpoint) per optimistically-run warp
        conflict = False
        for warp, steps in zip(live_warps, warp_steps):
            # Work on a copy of the groups cache so a rollback leaves the
            # original dict valid (thread state is restored to match).
            cache = warp.groups_cache
            groups = {pc: list(bucket) for pc, bucket in cache.items()}
            threads = [t for bucket in cache.values() for t in bucket]
            restore.append((threads, _checkpoint(threads)))
            records = []
            executor.memory = guard
            overflow = False
            try:
                for segment, pc, entry in steps:
                    group = groups.pop(pc)
                    if segment is not None:
                        cycles = segment.execute(executor, warp, group)
                        end_pc = segment.end_pc
                    else:
                        cycles = entry.run(executor, warp, group)
                        frame = group[0].frames[-1]
                        end_pc = (frame.fname, frame.block_name, frame.index)
                    # Snapshot the bucket: a later slot merging into this
                    # group's landing PC extends and re-sorts the live
                    # list, and the deferred accounting must see the
                    # group as it issued, not as it later merged.
                    records.append((segment, pc, group[:], cycles, entry))
                    resident = groups.get(end_pc)
                    if resident is None:
                        groups[end_pc] = group
                    else:
                        resident.extend(group)
                        resident.sort(key=_by_lane)
            except FootprintOverflow:
                overflow = True
            finally:
                executor.memory = real
            reads, writes = guard.take()
            if (
                overflow
                or not writes.isdisjoint(acc_writes)
                or not writes.isdisjoint(acc_reads)
                or not reads.isdisjoint(acc_writes)
            ):
                conflict = True
                break
            acc_reads |= reads
            acc_writes |= writes
            done.append((warp, groups, records))
        if guard.peak > profiler.spec_peak_footprint:
            profiler.spec_peak_footprint = guard.peak

        if not conflict:
            guard.commit()
            scheduler = self.scheduler
            for warp, groups, records in done:
                scheduler.consume(length)
                warp_id = warp.warp_id
                for segment, pc, group, cycles, entry in records:
                    if segment is not None:
                        n = segment.n
                        for thread in group:
                            thread.retired += n
                        profiler.record_segment(
                            warp_id, pc, segment, len(group), cycles
                        )
                    else:
                        for thread in group:
                            thread.retired += 1
                        profiler.record(
                            warp_id, pc, entry.opcode, len(group), cycles
                        )
                    warp.cycles += cycles
                warp.groups_cache = groups
            return True

        # All-or-nothing: roll back memory (newest write first) and every
        # optimistically-run warp's thread state. Committing a prefix
        # would desynchronize the rest of the rotation, and nothing was
        # accounted yet, so the caches and counters need no repair.
        guard.rollback()
        for threads, saved in restore:
            _restore(threads, saved)
        profiler.spec_rolled_back += len(restore)
        profiler.spec_replayed_slots += length * len(restore)
        return False

    # ------------------------------------------------------------------
    def _run_disjoint(self, live_warps, warp_steps, length):
        """Run a round whose launch the static footprint analysis proved
        conflict-free: no guard, no checkpoints, and accounting lands
        inline because a rollback can never happen. Warp-major order is
        observationally serial here by the same proof the batcher's
        unguarded epochs rely on."""
        executor = self.executor
        profiler = self.profiler
        scheduler = self.scheduler
        for warp, steps in zip(live_warps, warp_steps):
            groups = warp.groups_cache
            warp_id = warp.warp_id
            for segment, pc, entry in steps:
                group = groups.pop(pc)
                if segment is not None:
                    cycles = segment.execute(executor, warp, group)
                    end_pc = segment.end_pc
                    n = segment.n
                    for thread in group:
                        thread.retired += n
                    profiler.record_segment(
                        warp_id, pc, segment, len(group), cycles
                    )
                else:
                    cycles = entry.run(executor, warp, group)
                    frame = group[0].frames[-1]
                    end_pc = (frame.fname, frame.block_name, frame.index)
                    for thread in group:
                        thread.retired += 1
                    profiler.record(
                        warp_id, pc, entry.opcode, len(group), cycles
                    )
                warp.cycles += cycles
                resident = groups.get(end_pc)
                if resident is None:
                    groups[end_pc] = group
                else:
                    resident.extend(group)
                    resident.sort(key=_by_lane)
            scheduler.consume(length)


def _by_lane(thread):
    return thread.lane
