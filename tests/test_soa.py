"""Property and unit tests for the SoA vector layer (:mod:`repro.simt.soa`).

The conformance matrix (``tests/test_conformance.py``) pins whole-launch
bit-identity; this file pins the *mechanisms* that identity rests on:

* the int-bitmask <-> numpy bool mask bridge is exact for every pattern,
* masked partial-group execution never leaks into inactive lanes,
* UNDEF (read-before-write) raises identically under vector execution,
* the decode-time slot classifier proves exactly what it claims,
* value-level guard semantics (div by zero, sqrt of non-positives,
  min/max with NaN and signed zeros, inf overflow) match the scalar
  engine on the edge cases where numpy's defaults would diverge,
* the knobs (``soa=``, lane gate, global default) actually gate.

Everything vector-specific is skipped when numpy is unavailable — the
numpy-absent CI job runs this file too and must stay green.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.frontend import compile_kernel_source
from repro.ir import parse_module
from repro.simt import (
    GPUMachine,
    classify_slots,
    set_soa,
    soa_available,
    soa_disabled,
    soa_enabled,
)
from repro.simt import soa
from tests.test_conformance import _fingerprint, _forced_soa_gate

requires_numpy = pytest.mark.skipif(
    not soa_available(), reason="numpy not installed"
)

#: Bit patterns at the 2**32 boundary where a float detour (or an off-by-
#: one in the bit loop) would corrupt a lane mask.
BOUNDARY_MASKS = (
    0,
    1,
    2 ** 31,
    2 ** 32 - 1,
    2 ** 31 - 1,
    2 ** 31 + 1,
    0x55555555,
    0xAAAAAAAA,
    0xFFFF0000,
    0x0000FFFF,
    0x80000001,
)


class _FakeThread:
    def __init__(self, lane):
        self.lane = lane


@requires_numpy
class TestBitmaskBridge:
    """bitmask <-> numpy bool mask, exact for every 32-bit pattern."""

    @pytest.mark.parametrize("mask", BOUNDARY_MASKS)
    def test_boundary_patterns_round_trip(self, mask):
        arr = soa.bitmask_to_bool(mask, 32)
        assert arr.dtype == bool and len(arr) == 32
        for lane in range(32):
            assert bool(arr[lane]) == bool((mask >> lane) & 1)
        assert soa.bool_to_bitmask(arr) == mask

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2 ** 32 - 1))
    def test_random_masks_round_trip(self, mask):
        assert soa.bool_to_bitmask(soa.bitmask_to_bool(mask, 32)) == mask

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_narrow_widths_round_trip(self, data):
        width = data.draw(st.integers(1, 32))
        mask = data.draw(st.integers(0, 2 ** width - 1))
        arr = soa.bitmask_to_bool(mask, width)
        assert len(arr) == width
        assert soa.bool_to_bitmask(arr) == mask

    @settings(max_examples=100, deadline=None)
    @given(st.sets(st.integers(0, 31)))
    def test_group_bitmask_matches_lane_set(self, lanes):
        group = [_FakeThread(lane) for lane in sorted(lanes)]
        mask = soa.group_bitmask(group)
        assert mask == sum(1 << lane for lane in lanes)
        arr = soa.bitmask_to_bool(mask, 32)
        assert {lane for lane in range(32) if arr[lane]} == lanes


class TestSlotClassification:
    """The decode-time fixpoint must prove float/int-ness, never guess."""

    IR = """
func @f(%p) {
entry:
  %t = tid
  %fa = const 1.5
  %fb = mul %fa, %fa
  %fc = add %fb, 1.0
  %ia = const 2
  %ib = add %ia, %t
  %mix = add %fa, %ia
  %obj = mov %p
  %pick = sel %t, %fa, %ia
  %undef_read = add %never_written, 1.0
  exit
}
"""

    def _kinds(self):
        module = parse_module(self.IR)
        function = module.function("f")
        slots = function.reg_slots()
        kinds = classify_slots(function)
        return {name: kinds[slot] for name, slot in slots.items()}

    def test_float_chains_classify_float(self):
        kinds = self._kinds()
        assert kinds["fa"] == soa.KIND_FLOAT
        assert kinds["fb"] == soa.KIND_FLOAT
        assert kinds["fc"] == soa.KIND_FLOAT

    def test_int_results_classify_int(self):
        kinds = self._kinds()
        assert kinds["t"] == soa.KIND_INT
        assert kinds["ia"] == soa.KIND_INT
        assert kinds["ib"] == soa.KIND_INT

    def test_promotion_and_params_and_picks(self):
        kinds = self._kinds()
        # int + float promotes to float, exactly like Python.
        assert kinds["mix"] == soa.KIND_FLOAT
        # Params are opaque, and anything copied from them.
        assert kinds["p"] == soa.KIND_OBJECT
        assert kinds["obj"] == soa.KIND_OBJECT
        # A pick between a float and an int preserves the operand: object.
        assert kinds["pick"] == soa.KIND_OBJECT
        # Never-written slots read as UNDEF; classification must not
        # pretend to know them.
        assert kinds["never_written"] == soa.KIND_OBJECT

    def test_disagreeing_writes_lower_to_object(self):
        module = parse_module(
            """
func @g() {
entry:
  %x = const 1.5
  %x = const 2
  exit
}
"""
        )
        function = module.function("g")
        kinds = classify_slots(function)
        assert kinds[function.reg_slots()["x"]] == soa.KIND_OBJECT


MASKED_KERNEL = """
kernel k() {
    let t = tid();
    let x = 1.0 * t;
    if (t < 11) {
        x = fma(x, 1.25, 3.0);
        x = fma(x, 0.5, -1.0);
        x = x * x + 0.125;
    }
    store(t, x);
}
"""


@requires_numpy
class TestMaskedPartialGroups:
    """A divergent chunk executes on a *subset* of the warp; scatters and
    finish writes must touch exactly the member lanes."""

    def test_masked_partial_group_stores_do_not_leak(self):
        with _forced_soa_gate():
            module = compile_kernel_source(MASKED_KERNEL)
            launch = GPUMachine(module, soa=True).launch("k", 32)
            assert launch.profiler.soa_chunks > 0
        expected = {}
        for t in range(32):
            x = 1.0 * t
            if t < 11:
                x = x * 1.25 + 3.0
                x = x * 0.5 + -1.0
                x = x * x + 0.125
            expected[t] = [(float(t), x)]
        assert launch.store_traces() == expected

    def test_partial_group_matches_thread_major(self):
        with _forced_soa_gate():
            module = compile_kernel_source(MASKED_KERNEL)
            vector = GPUMachine(module, soa=True).launch("k", 32)
            thread_major = GPUMachine(module, soa=False).launch("k", 32)
        assert _fingerprint(vector) == _fingerprint(thread_major)


#: On the untaken path %x stays UNDEF, and the reconverged add reads it.
UNDEF_IR = """
func @k() kernel {
entry:
  %t = tid
  %lim = const 16
  %p = cmplt %t, %lim
  cbr %p, ^then, ^join
then:
  %x = const 1.5
  bra ^join
join:
  %bias = const 2.0
  %y = add %x, %bias
  st %t, %y
  exit
}
"""


@requires_numpy
class TestUndefUnderSoA:
    """Read-before-write must stay a hard error with the identical
    exception, raised by the column gather's float() conversion."""

    def test_undef_raises_identically(self):
        module = parse_module(UNDEF_IR)
        with _forced_soa_gate():
            with pytest.raises(SimulationError) as thread_major:
                GPUMachine(module, soa=False).launch("k", 32)
            with pytest.raises(SimulationError) as vector:
                GPUMachine(module, soa=True).launch("k", 32)
        assert str(vector.value) == str(thread_major.value)

    def test_defined_lanes_only_is_clean(self):
        """The same kernel at 16 threads (every lane takes the branch)
        must complete — proof the UNDEF error above comes from the
        untaken path, not from the vector machinery itself."""
        module = parse_module(UNDEF_IR)
        with _forced_soa_gate():
            launch = GPUMachine(module, soa=True).launch("k", 16)
        assert launch.store_traces() == {
            t: [(t, 3.5)] for t in range(16)
        }


EDGE_KERNEL = """
kernel k() {
    let t = tid();
    let a = 1.0 * t;
    let denom = a - 8.0;
    let q = 1.0 / denom;
    let r = a / 0.0;
    let s = sqrt(a - 4.0);
    let neg = 0.0 - 0.0;
    let m = min(neg, 0.0);
    let big = 1.0e308 + 1.0e308;
    let n = big - big;
    let w = max(n, a);
    store(t, q + r + s + m);
    store(t + 100, w);
}
"""


@requires_numpy
class TestValueGuardEdges:
    """div-by-zero, sqrt guards, signed zero, inf overflow, and NaN
    propagation — where numpy's defaults (warnings, nan) differ from the
    scalar engine's guards and Python's silent inf arithmetic."""

    def test_edge_values_match_thread_major(self):
        with _forced_soa_gate():
            module = compile_kernel_source(EDGE_KERNEL)
            vector = GPUMachine(module, soa=True).launch("k", 32)
            thread_major = GPUMachine(module, soa=False).launch("k", 32)
            assert vector.profiler.soa_chunks > 0
        # NaN != NaN, so compare the serialized traces (repr-exact,
        # including -0.0 vs 0.0 and inf).
        def dump(launch):
            return json.dumps(
                {
                    str(tid): [repr(v) for _, v in trace]
                    for tid, trace in sorted(launch.store_traces().items())
                }
            )

        assert dump(vector) == dump(thread_major)

    def test_guard_semantics_are_the_scalar_engine_s(self):
        with _forced_soa_gate():
            module = compile_kernel_source(EDGE_KERNEL)
            launch = GPUMachine(module, soa=True).launch("k", 32)
        traces = launch.store_traces()
        # The low stores hold q + r + s + m.  r (a / 0.0) is guarded to
        # 0.0 for every lane and m is 0.0, so:
        # t=4: q = 1/(4-8) = -0.25, sqrt(4-4=0) is guarded (only a > 0
        # roots) -> s = 0.0.
        assert traces[4][0][1] == pytest.approx(-0.25)
        # t=8: denom == 0 -> q guarded to 0.0, s = sqrt(8-4) = 2.0.
        assert traces[8][0][1] == pytest.approx(2.0)
        # max(NaN, a) is Python max: ``a if a > NaN else NaN`` -> NaN
        # (every comparison with NaN is False, so the first operand wins).
        assert all(math.isnan(trace[0][1]) for tid, trace in traces.items()
                   if tid >= 100)


@requires_numpy
class TestSoAKnobs:
    """The gates must actually gate (and restore)."""

    KERNEL = """
kernel k() {
    let t = tid();
    let x = 1.0 * t;
    x = fma(x, 1.0001, 0.5);
    x = fma(x, 1.0001, 0.5);
    x = fma(x, 1.0001, 0.5);
    store(t, x);
}
"""

    def test_soa_false_machine_is_inert(self):
        with _forced_soa_gate():
            module = compile_kernel_source(self.KERNEL)
            launch = GPUMachine(module, soa=False).launch("k", 32)
        assert launch.profiler.soa_chunks == 0
        assert launch.profiler.soa_fallback_chunks == 0

    def test_lane_gate_falls_back_on_narrow_groups(self):
        prev_gain = soa.set_soa_min_gain(-(10 ** 9))
        prev_lanes = soa.set_soa_lanes(64)  # wider than any warp
        try:
            module = compile_kernel_source(self.KERNEL)
            launch = GPUMachine(module, soa=True).launch("k", 32)
        finally:
            soa.set_soa_lanes(prev_lanes)
            soa.set_soa_min_gain(prev_gain)
        assert launch.profiler.soa_chunks == 0
        assert launch.profiler.soa_fallback_chunks > 0
        reference = GPUMachine(module, soa=False).launch("k", 32)
        assert _fingerprint(launch) == _fingerprint(reference)

    def test_set_soa_returns_previous_and_restores(self):
        previous = soa_enabled()
        try:
            assert set_soa(False) == previous
            assert soa_enabled() is False
            with soa_disabled():
                assert soa_enabled() is False
            assert soa_enabled() is False
            set_soa(True)
            assert soa_enabled() is True
            with soa_disabled():
                assert soa_enabled() is False
            assert soa_enabled() is True
        finally:
            set_soa(previous)


class TestWithoutNumpyContract:
    """Knob semantics that must hold on *every* install, including the
    numpy-absent CI job (where these are the only tests in this file
    that still assert something vector-related)."""

    def test_enable_requires_numpy(self):
        previous = soa_enabled()
        try:
            set_soa(True)
            assert soa_enabled() == soa_available()
        finally:
            set_soa(previous)

    def test_machines_run_without_numpy_regardless_of_knob(self):
        module = compile_kernel_source(
            "kernel k() { let t = tid(); store(t, 1.0 * t); }"
        )
        launch = GPUMachine(module, soa=True).launch("k", 32)
        assert launch.store_traces() == {t: [(t, 1.0 * t)] for t in range(32)}
        if not soa_available():
            assert launch.profiler.soa_chunks == 0
