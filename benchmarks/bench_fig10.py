"""Figure 10: automatic Speculative Reconvergence upside."""

from repro.harness import figure10


def test_figure10(once):
    result = once(figure10)
    for name, base_eff, auto_eff, annotated_eff, auto_speedup, _ in result.data:
        assert auto_eff > base_eff, name
    print("\n" + result.text)
