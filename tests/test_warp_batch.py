"""Warp batching: memory-effect analysis, write-set guard, escape hatches.

The conformance matrix (tests/test_conformance.py) pins the batched
multi-warp engine bit-identical to the serial interleaving over the full
corpus; this file covers the pieces in isolation:

* :mod:`repro.analysis.memeffects` — which launches classify as
  ``disjoint`` (no runtime checks) vs ``guarded`` (optimistic with
  rollback), and the compile-time summaries on ``CompileReport``;
* :class:`repro.simt.memory.FootprintMemory` — footprint tracking,
  exact rollback, and the overflow cap;
* the batcher's engagement/fallback behavior on real launches: per-warp
  profiler attribution, guarded rollback, the issue-budget boundary, and
  every escape hatch (env knob, context manager, machine parameter,
  observability, single warp);
* the persistent worker pool in :mod:`repro.harness.parallel`.
"""

import os

import pytest

from repro.core import compile_baseline
from repro.errors import LaunchError
from repro.frontend import compile_kernel_source
from repro.harness import parallel
from repro.harness.parallel import run_tasks, shutdown_pool, task
from repro.simt import (
    GPUMachine,
    GlobalMemory,
    set_warp_batch,
    warp_batch_disabled,
    warp_batch_enabled,
)
from repro.simt.memory import FootprintMemory, FootprintOverflow
from repro.analysis.memeffects import (
    analyze_module,
    classify_launch,
    clear_launch_cache,
)

# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------

#: One store per thread at ``out + tid`` — the canonical disjoint kernel.
TID_STORE = """
kernel k(out) {
    store(out + tid(), tid() * 2.0);
}
"""

#: The corpus' static-coarsening loop: ``t = tid; ...; t += stride``.
#: Disjoint exactly when the stride covers the launch width.
TASK_LOOP = """
kernel k(out, n, stride) {
    let t = tid();
    let acc = 0.0;
    while (t < n) {
        acc = fma(acc, 1.0001, 0.5);
        acc = fma(acc, 1.0001, 0.5);
        acc = fma(acc, 1.0001, 0.5);
        store(out + t, acc + t);
        t = t + stride;
    }
}
"""

#: Every thread bumps one shared counter: must be guarded.
SHARED_COUNTER = """
kernel k(counter, out) {
    let i = atomadd(counter, 1);
    store(out + tid(), i);
}
"""

#: A dynamic work queue (rsbench-shaped): conflicting atomics every epoch.
WORK_QUEUE = """
kernel k(queue, out, n) {
    let t = atomadd(queue, 1);
    while (t < n) {
        let acc = fma(t, 1.0001, 0.5);
        acc = fma(acc, 1.0001, 0.5);
        acc = fma(acc, 1.0001, 0.5);
        store(out + t, acc);
        t = atomadd(queue, 1);
    }
}
"""

#: Store through a loaded pointer: the address is unanalyzable (top).
UNKNOWN_WRITE = """
kernel k(p) {
    store(ld(p), 1.0);
}
"""

#: Table lookup through a modulus — the read lands in a bounded window
#: even though the hash is unanalyzable; writes stay tid-strided.
TABLE_LOOKUP = """
kernel k(table, out, tsize) {
    let idx = floor(hash01(tid()) * 1000.0) % tsize;
    let v = ld(table + idx);
    store(out + tid(), v + 1.0);
}
"""


def _module(source):
    return compile_baseline(compile_kernel_source(source)).module


# ----------------------------------------------------------------------
# Static analysis: launch classification
# ----------------------------------------------------------------------

class TestClassifyLaunch:
    def test_tid_store_is_disjoint(self):
        module = _module(TID_STORE)
        assert classify_launch(module, "k", (0,), 96) == "disjoint"

    def test_task_loop_stride_covers_launch(self):
        module = _module(TASK_LOOP)
        assert classify_launch(module, "k", (0, 960, 96), 96) == "disjoint"

    def test_task_loop_short_stride_is_guarded(self):
        # stride 64 < 96 threads: thread 64 and thread 0's second task
        # collide, and the analysis must notice.
        module = _module(TASK_LOOP)
        assert classify_launch(module, "k", (0, 960, 64), 96) == "guarded"

    def test_shared_counter_is_guarded(self):
        module = _module(SHARED_COUNTER)
        assert classify_launch(module, "k", (0, 8), 96) == "guarded"

    def test_unknown_write_is_guarded(self):
        module = _module(UNKNOWN_WRITE)
        assert classify_launch(module, "k", (0,), 96) == "guarded"

    def test_bounded_read_disjoint_from_strided_write(self):
        # Table at [0, 255], outputs at [1000, 1095]: spans never touch.
        module = _module(TABLE_LOOKUP)
        assert classify_launch(module, "k", (0, 1000, 256), 96) == "disjoint"

    def test_bounded_read_overlapping_write_is_guarded(self):
        # Outputs on top of the table: a write can clobber another
        # thread's pending read.
        module = _module(TABLE_LOOKUP)
        assert classify_launch(module, "k", (0, 100, 256), 96) == "guarded"

    def test_classification_is_cached_per_launch_shape(self):
        module = _module(TID_STORE)
        clear_launch_cache()
        first = classify_launch(module, "k", (0,), 96)
        again = classify_launch(module, "k", (0,), 96)
        assert first == again == "disjoint"
        clear_launch_cache()
        assert classify_launch(module, "k", (0,), 96) == "disjoint"


class TestAnalyzeModule:
    """Summaries run on the pre-allocation module (as the ``mem-effects``
    pass does), where parameter registers still carry their source names."""

    def test_summary_names_regions_and_forms(self):
        effects = analyze_module(compile_kernel_source(TID_STORE))["k"]
        regions = effects.regions()
        assert regions == {"out": ("write",)}
        (site,) = effects.sites
        assert site.kind == "write"
        assert site.form == "tid-strided"
        assert not effects.opaque_calls

    def test_symbolic_stride_degrades_to_unknown(self):
        # At compile time the loop stride is an opaque parameter, so the
        # counter joins to top — the summary must say so rather than
        # guess; the launch-time classification (with the concrete
        # stride) is what proves this kernel disjoint.
        effects = analyze_module(compile_kernel_source(TASK_LOOP))["k"]
        assert effects.regions() == {"unknown": ("write",)}

    def test_atomics_count_as_atom_sites(self):
        effects = analyze_module(compile_kernel_source(SHARED_COUNTER))["k"]
        regions = effects.regions()
        assert regions["counter"] == ("atom",)
        assert regions["out"] == ("write",)

    def test_unknown_address_is_explicit_top(self):
        effects = analyze_module(compile_kernel_source(UNKNOWN_WRITE))["k"]
        kinds = {site.kind: site for site in effects.sites}
        assert kinds["write"].region == "unknown"
        assert kinds["write"].form == "unknown"

    def test_compile_report_carries_memory_effects(self):
        compiled = compile_baseline(compile_kernel_source(TID_STORE))
        summary = compiled.report.memory_effects["k"]
        assert summary["regions"] == {"out": ("write",)}
        assert summary["sites"][0]["form"] == "tid-strided"


# ----------------------------------------------------------------------
# FootprintMemory
# ----------------------------------------------------------------------

class TestFootprintMemory:
    def test_tracks_reads_and_writes(self):
        memory = GlobalMemory()
        memory.store(3, 7.0)
        guard = FootprintMemory(memory)
        assert guard.load(3) == 7.0
        guard.store(4, 1.0)
        assert guard.atom_add(5, 2.0) == 0
        reads, writes = guard.take()
        assert reads == {3}
        assert writes == {4, 5}
        # take() drains: the next burst starts clean.
        assert guard.take() == (set(), set())
        # Writes went straight through to the real cells.
        assert memory.load(4) == 1.0
        assert memory.load(5) == 2.0

    def test_rollback_restores_exact_snapshot(self):
        memory = GlobalMemory()
        memory.store(0, 10.0)
        before = memory.snapshot()
        guard = FootprintMemory(memory)
        guard.store(0, 99.0)     # overwrite an existing cell
        guard.store(1, 5.0)      # create a cell
        guard.atom_add(0, 1.0)   # stack a second undo entry on cell 0
        guard.atom_add(2, 3.0)   # create a cell via atomic
        guard.rollback()
        # Bit-identical including *absence* of never-written cells.
        assert memory.snapshot() == before

    def test_commit_keeps_writes_and_drops_undo(self):
        memory = GlobalMemory()
        guard = FootprintMemory(memory)
        guard.store(7, 1.5)
        guard.commit()
        guard.rollback()  # nothing left to undo
        assert memory.load(7) == 1.5

    def test_overflow_raises_at_the_cap(self):
        memory = GlobalMemory()
        guard = FootprintMemory(memory, limit=4)
        for addr in range(4):
            guard.store(addr, 1.0)
        with pytest.raises(FootprintOverflow):
            guard.load(100)
        # Re-touching an already-counted address stays fine.
        guard.store(0, 2.0)


# ----------------------------------------------------------------------
# Engine behavior on real launches
# ----------------------------------------------------------------------

def _run(source, args_for, n_threads, **machine_kwargs):
    """Compile ``source`` and launch it on a fresh memory; ``args_for``
    maps the memory to the kernel argument tuple."""
    module = _module(source)
    memory = GlobalMemory()
    args = args_for(memory)
    machine = GPUMachine(module, **machine_kwargs)
    return machine.launch("k", n_threads, args=args, memory=memory)


def _task_loop_args(n, stride):
    def setup(memory):
        out = memory.alloc(n, name="out")
        return (out, out + n, stride)
    return setup


def _fingerprint(launch):
    summary = launch.profiler.summary()
    # Engine telemetry legitimately differs between the batched and the
    # serial configuration; results must not.
    summary.pop("counters", None)
    return (
        launch.store_traces(),
        launch.retired_per_thread(),
        summary,
        launch.cycles,
    )


class TestBatcherEngagement:
    def test_disjoint_launch_batches_and_matches_serial(self):
        setup = _task_loop_args(384, 128)
        serial = _run(TASK_LOOP, setup, 128, warp_batch=False)
        batched = _run(TASK_LOOP, setup, 128)
        assert _fingerprint(batched) == _fingerprint(serial)
        assert serial.profiler.batch_epochs == 0
        assert batched.profiler.batch_epochs > 0
        assert batched.profiler.batch_rollbacks == 0

    def test_guarded_launch_rolls_back_and_matches_serial(self):
        def setup(memory):
            queue = memory.alloc(1, name="queue")
            out = memory.alloc(256, name="out")
            return (queue, out, 256)
        serial = _run(WORK_QUEUE, setup, 96, warp_batch=False)
        batched = _run(WORK_QUEUE, setup, 96)
        assert _fingerprint(batched) == _fingerprint(serial)
        # Every epoch's bursts collide on the queue cell, so the guard
        # must actually fire (and eventually disable the batcher).
        assert batched.profiler.batch_rollbacks > 0

    def test_per_warp_profiler_attribution(self):
        """record_segment must charge cycles and issues to the *owning*
        warp and block even when four warps advance per epoch."""
        setup = _task_loop_args(512, 128)
        serial = _run(TASK_LOOP, setup, 128, warp_batch=False)
        batched = _run(TASK_LOOP, setup, 128)
        assert batched.profiler.batch_epochs > 0
        assert batched.profiler.warp_cycles == serial.profiler.warp_cycles
        assert set(batched.profiler.warp_cycles) == {0, 1, 2, 3}
        serial_blocks = serial.profiler.block_profiles
        batched_blocks = batched.profiler.block_profiles
        assert set(batched_blocks) == set(serial_blocks)
        for key, expect in serial_blocks.items():
            got = batched_blocks[key]
            assert (got.issues, got.active_sum, got.visits, got.cycles) == (
                expect.issues, expect.active_sum, expect.visits,
                expect.cycles,
            ), key

    def test_issue_budget_raises_at_the_same_slot(self):
        setup = _task_loop_args(384, 128)
        full = _run(TASK_LOOP, setup, 128, warp_batch=False)
        cap = full.profiler.issued // 2
        with pytest.raises(LaunchError, match="issue slots") as serial_err:
            _run(TASK_LOOP, setup, 128, warp_batch=False, max_issues=cap)
        with pytest.raises(LaunchError, match="issue slots") as batched_err:
            _run(TASK_LOOP, setup, 128, max_issues=cap)
        assert str(batched_err.value) == str(serial_err.value)


class TestEscapeHatches:
    def test_machine_parameter_disables(self):
        setup = _task_loop_args(384, 128)
        launch = _run(TASK_LOOP, setup, 128, warp_batch=False)
        assert launch.profiler.batch_epochs == 0

    def test_context_manager_disables_default(self):
        setup = _task_loop_args(384, 128)
        assert warp_batch_enabled()
        with warp_batch_disabled():
            assert not warp_batch_enabled()
            launch = _run(TASK_LOOP, setup, 128)
        assert warp_batch_enabled()
        assert launch.profiler.batch_epochs == 0

    def test_machine_parameter_overrides_global_default(self):
        setup = _task_loop_args(384, 128)
        with warp_batch_disabled():
            launch = _run(TASK_LOOP, setup, 128, warp_batch=True)
        assert launch.profiler.batch_epochs > 0

    def test_set_warp_batch_returns_previous(self):
        previous = set_warp_batch(False)
        try:
            assert previous is True
            assert set_warp_batch(True) is False
        finally:
            set_warp_batch(True)

    def test_single_warp_never_batches(self):
        launch = _run(TASK_LOOP, _task_loop_args(96, 32), 32)
        assert launch.profiler.batch_epochs == 0

    def test_observability_sinks_disable_batching(self):
        setup = _task_loop_args(384, 128)
        observed = _run(TASK_LOOP, setup, 128, metrics=True)
        assert observed.profiler.batch_epochs == 0
        reference = _run(TASK_LOOP, setup, 128, warp_batch=False,
                         metrics=True)
        assert _fingerprint(observed) == _fingerprint(reference)


# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _worker_pid(_):
    return os.getpid()


def _explode(_):
    raise ValueError("worker exploded")


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without a live pool."""
    shutdown_pool()
    yield
    shutdown_pool()
    os.environ.pop("REPRO_POOL_TEST_KNOB", None)


class TestPersistentPool:
    def test_serial_degrade_skips_the_pool(self):
        assert run_tasks([task(_square, i) for i in range(4)], jobs=1) == [
            0, 1, 4, 9,
        ]
        assert parallel._POOL is None
        # A single task degrades too, even with jobs > 1.
        assert run_tasks([task(_square, 5)], jobs=4) == [25]
        assert parallel._POOL is None

    def test_results_in_submission_order(self):
        out = run_tasks([task(_square, i) for i in range(16)], jobs=2)
        assert out == [i * i for i in range(16)]

    def test_pool_is_reused_across_calls(self):
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        first = parallel._POOL
        assert first is not None
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        assert parallel._POOL is first

    def test_work_runs_in_worker_processes(self):
        pids = set(run_tasks([task(_worker_pid, i) for i in range(8)],
                             jobs=2))
        assert os.getpid() not in pids

    def test_repro_env_change_invalidates(self):
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        first = parallel._POOL
        os.environ["REPRO_POOL_TEST_KNOB"] = "1"
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        assert parallel._POOL is not first

    def test_engine_knob_change_invalidates(self):
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        first = parallel._POOL
        with warp_batch_disabled():
            run_tasks([task(_square, i) for i in range(4)], jobs=2)
            assert parallel._POOL is not first

    def test_jobs_change_invalidates(self):
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        first = parallel._POOL
        run_tasks([task(_square, i) for i in range(4)], jobs=3)
        assert parallel._POOL is not first

    def test_worker_exception_tears_down_and_propagates(self):
        with pytest.raises(ValueError, match="worker exploded"):
            run_tasks([task(_explode, i) for i in range(4)], jobs=2)
        assert parallel._POOL is None
        # The next sweep transparently reforks.
        assert run_tasks([task(_square, i) for i in range(4)], jobs=2) == [
            0, 1, 4, 9,
        ]

    def test_shutdown_pool_is_idempotent(self):
        run_tasks([task(_square, i) for i in range(4)], jobs=2)
        shutdown_pool()
        assert parallel._POOL is None
        shutdown_pool()
