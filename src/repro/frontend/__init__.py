"""Kernel frontend: AST, textual language, lowering, coarsening."""

from repro.frontend import ast_nodes
from repro.frontend.coarsen import coarsen_dynamic, coarsen_static
from repro.frontend.lexer import Token, tokenize
from repro.frontend.loop_transforms import (
    fully_unroll_for,
    unroll_labeled_while,
    unroll_while,
)
from repro.frontend.lower import lower_kernel, lower_program
from repro.frontend.parser import compile_kernel_source, parse_kernel_source

__all__ = [
    "Token",
    "ast_nodes",
    "coarsen_dynamic",
    "coarsen_static",
    "compile_kernel_source",
    "fully_unroll_for",
    "lower_kernel",
    "lower_program",
    "parse_kernel_source",
    "tokenize",
    "unroll_labeled_while",
    "unroll_while",
]
