"""Warp schedulers.

The default :class:`ConvergenceScheduler` models Volta's convergence
optimizer: among the groups of runnable threads that share a PC, it issues
the largest group, "grouping together threads that execute the same code in
parallel for maximum convergence" (Section 2). Ties break deterministically
by program order, so simulations are reproducible.

:class:`RoundRobinScheduler` and :class:`OldestFirstScheduler` are
alternative policies used by the simulator tests and the scheduling
ablation bench — the correctness property (per-thread results are
schedule-invariant) is verified across all of them.
"""

from __future__ import annotations


class SchedulerBase:
    """Picks which PC-group a warp issues next."""

    name = "base"

    def pick(self, groups, program_order):
        """Return the chosen PC key.

        ``groups`` maps pc -> list of threads; ``program_order`` maps pc to a
        sortable program-position tuple.
        """
        raise NotImplementedError

    def forced_pick(self, groups, program_order):
        """The PC this policy is *guaranteed* to pick for the next issue —
        and to keep picking while that group advances through a fusable
        segment — or None when the pick depends on state a fused run would
        change.

        The base answer is conservative: only a single group is forced
        (there is nothing else to pick, and that stays true while the group
        advances, since fusable ops cannot split it or wake other lanes).
        Policies whose key cannot flip mid-segment may widen this. Used by
        the segment-fusion engine (:mod:`repro.simt.segments`); must err on
        the side of None — a wrong non-None answer changes issue order.
        """
        if len(groups) == 1:
            return next(iter(groups))
        return None

    def consume(self, n):
        """Account for ``n`` issue slots granted without calling ``pick``
        (a fused segment). Stateless policies ignore this; stateful ones
        (round-robin) advance their internal position as if ``pick`` had
        run ``n`` times.
        """


class ConvergenceScheduler(SchedulerBase):
    """Largest group first; ties broken by program order then lowest lane."""

    name = "convergence"

    def pick(self, groups, program_order):
        if len(groups) == 1:
            # Fully converged warp (the common case): min of a singleton.
            return next(iter(groups))

        def key(pc):
            threads = groups[pc]
            return (-len(threads), program_order(pc), threads[0].lane)

        return min(groups, key=key)

    def forced_pick(self, groups, program_order):
        # A *strictly* largest group wins regardless of program order or
        # lane, and fusable ops can change neither its size nor any other
        # group's, so the pick stays forced for a whole segment. A size tie
        # is not forced: the tiebreak reads program_order(pc), which moves
        # as the fused group advances.
        if len(groups) == 1:
            return next(iter(groups))
        best = None
        best_len = -1
        tie = False
        for pc, threads in groups.items():
            size = len(threads)
            if size > best_len:
                best = pc
                best_len = size
                tie = False
            elif size == best_len:
                tie = True
        return None if tie else best


class OldestFirstScheduler(SchedulerBase):
    """Earliest program position first (depth-first serialization)."""

    name = "oldest-first"

    def pick(self, groups, program_order):
        if len(groups) == 1:
            return next(iter(groups))
        return min(groups, key=lambda pc: (program_order(pc), -len(groups[pc])))


class RoundRobinScheduler(SchedulerBase):
    """Rotates across groups; exists to stress schedule-invariance tests."""

    name = "round-robin"

    def __init__(self):
        self._counter = 0

    def pick(self, groups, program_order):
        ordered = sorted(groups, key=program_order)
        choice = ordered[self._counter % len(ordered)]
        self._counter += 1
        return choice

    def forced_pick(self, groups, program_order):
        # Only a singleton is forced (the base answer), but even then the
        # counter must advance per slot — see consume().
        if len(groups) == 1:
            return next(iter(groups))
        return None

    def consume(self, n):
        # pick() on a singleton group would have incremented the counter
        # once per issue; a fused run of n slots must advance it by n so
        # the rotation phase matches the per-instruction schedule.
        self._counter += n


SCHEDULERS = {
    cls.name: cls
    for cls in (ConvergenceScheduler, OldestFirstScheduler, RoundRobinScheduler)
}


def make_scheduler(name="convergence"):
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
