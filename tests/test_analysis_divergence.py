"""Divergence analysis and call graph tests."""

from repro.analysis import (
    DivergenceAnalysis,
    analyze_module_divergence,
    call_graph,
    influence_region,
    reverse_topological,
)
from repro.analysis.cfg_utils import CFGView
from repro.analysis.dominators import compute_post_dominators
from repro.frontend import compile_kernel_source
from tests.helpers import diamond_function, listing1_module, loop_function


class TestValueDivergence:
    def test_tid_is_divergent(self):
        module, fn = diamond_function(divergent=True)
        analysis = DivergenceAnalysis(fn)
        tid_defs = [
            instr.dst
            for _, _, instr in fn.instructions()
            if instr.opcode.value == "tid"
        ]
        assert all(analysis.is_divergent(reg) for reg in tid_defs)

    def test_constants_are_uniform(self):
        module, fn = diamond_function(divergent=False)
        analysis = DivergenceAnalysis(fn)
        const_defs = [
            instr.dst
            for _, _, instr in fn.instructions()
            if instr.opcode.value == "const"
        ]
        # Constants defined outside divergent regions stay uniform.
        entry_consts = [r for r in const_defs if r is not None]
        assert entry_consts  # sanity
        assert not any(analysis.is_divergent(r) for r in entry_consts)

    def test_divergence_propagates_through_arithmetic(self):
        module = compile_kernel_source(
            "kernel k() { let a = tid(); let b = a * 2 + 1; store(b, 0.0); }"
        )
        fn = module.function("k")
        analysis = DivergenceAnalysis(fn)
        assert any(
            analysis.is_divergent(reg)
            for reg in fn.all_registers()
            if reg.name.startswith("b")
        )

    def test_rand_is_divergent(self):
        module = compile_kernel_source(
            "kernel k() { let r = rand(); if (r < 0.5) { store(0, 1.0); } }"
        )
        analysis = DivergenceAnalysis(module.function("k"))
        assert analysis.divergent_branches

    def test_uniform_branch_not_divergent(self):
        module, fn = diamond_function(divergent=False)
        analysis = DivergenceAnalysis(fn)
        assert "entry" not in analysis.divergent_branches

    def test_divergent_branch_detected(self):
        module, fn = diamond_function(divergent=True)
        analysis = DivergenceAnalysis(fn)
        assert "entry" in analysis.divergent_branches

    def test_loop_with_divergent_trip_count(self):
        module, fn = loop_function(trip_reg_divergent=True)
        analysis = DivergenceAnalysis(fn)
        assert "head" in analysis.divergent_branches

    def test_loop_with_uniform_trip_count(self):
        module, fn = loop_function(trip_reg_divergent=False)
        analysis = DivergenceAnalysis(fn)
        assert "head" not in analysis.divergent_branches


class TestSyncDependence:
    def test_defs_under_divergent_control_become_divergent(self):
        module = compile_kernel_source(
            """
kernel k() {
    let x = 0;
    if (tid() < 16) { x = 1; }
    if (x < 1) { store(0, 1.0); }
}
"""
        )
        fn = module.function("k")
        analysis = DivergenceAnalysis(fn)
        # The second branch depends on x, which merges divergently.
        assert len(analysis.divergent_branches) == 2

    def test_listing1_prolog_branch_divergent(self):
        module = listing1_module()
        analysis = DivergenceAnalysis(module.function("k"))
        assert "prolog" in analysis.divergent_branches


class TestInfluenceRegion:
    def test_diamond_region_is_both_arms(self):
        module, fn = diamond_function()
        view = CFGView.of_function(fn)
        pdom = compute_post_dominators(view)
        region = influence_region(view, pdom, "entry")
        assert region == {"then", "else"}

    def test_uniform_successor_region_empty(self):
        module, fn = diamond_function()
        view = CFGView.of_function(fn)
        pdom = compute_post_dominators(view)
        assert influence_region(view, pdom, "join") == set()

    def test_loop_region_contains_body(self):
        module, fn = loop_function()
        view = CFGView.of_function(fn)
        pdom = compute_post_dominators(view)
        region = influence_region(view, pdom, "head")
        assert "body" in region


class TestCallGraph:
    SRC = """
func leaf(x) { return x + 1; }
func mid(x) { return @leaf(x) * 2; }
kernel main() { let r = @mid(tid()); store(0, r); }
"""

    def test_edges(self):
        module = compile_kernel_source(self.SRC)
        graph = call_graph(module)
        assert graph.callees["main"] == {"mid"}
        assert graph.callees["mid"] == {"leaf"}
        assert graph.callers["leaf"] == {"mid"}

    def test_call_sites_recorded(self):
        module = compile_kernel_source(self.SRC)
        graph = call_graph(module)
        assert len(graph.sites("main", "mid")) == 1
        assert graph.all_sites_of("leaf")[0][0] == "mid"

    def test_reverse_topological_callees_first(self):
        module = compile_kernel_source(self.SRC)
        graph = call_graph(module)
        order = reverse_topological(graph)
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_module_divergence_uses_summaries(self):
        module = compile_kernel_source(self.SRC)
        analyses = analyze_module_divergence(module)
        assert set(analyses) == {"leaf", "mid", "main"}
        # leaf's params are conservatively divergent (device function).
        leaf = analyses["leaf"]
        assert leaf.summary()["returns_divergent"]

    def test_recursion_does_not_hang(self):
        module = compile_kernel_source(
            """
func rec(x) { if (x < 1) { return 0; } return @rec(x - 1); }
kernel main() { store(0, @rec(tid())); }
"""
        )
        order = reverse_topological(call_graph(module))
        assert set(order) == {"rec", "main"}
        analyses = analyze_module_divergence(module)
        assert "main" in analyses
