"""Figure 8: SIMT-efficiency improvement vs speedup."""

from repro.harness import figure8


def test_figure8(once):
    result = once(figure8)
    for row in result.data:
        assert row.speedup > 1.0, row.workload
        assert row.speedup <= row.efficiency_gain * 1.10, row.workload
    print("\n" + result.text)
