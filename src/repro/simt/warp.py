"""Threads, frames, and warps.

A thread's program counter is the top :class:`Frame` of its call stack:
``(function, block name, instruction index)``. The scheduler groups threads
by that PC, which is how threads arriving at a common function body from
different call sites converge (Section 4.4) — hardware converges on PC, not
on call history.
"""

from __future__ import annotations

import enum

from repro.errors import SimulationError
from repro.simt.barrier_state import BarrierFile
from repro.simt.rng import XorShift32

WARP_SIZE = 32


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    WAITING = "waiting"
    EXITED = "exited"


class _Undef:
    """Fill value of fresh register files.

    Slot-indexed register files cannot signal an undefined read with a
    KeyError the way name-keyed dicts did, so unwritten slots hold this
    sentinel instead: any attempt to *compute* with it (arithmetic,
    comparison, coercion) raises :class:`SimulationError`, preserving the
    undefined-register diagnostic without a per-read branch on the hot
    path. Verified programs never read an unwritten slot, so the sentinel
    is inert in practice.
    """

    __slots__ = ()

    def _undefined(self, *_args):
        raise SimulationError(
            "use of undefined register value (read before any write)"
        )

    __add__ = __radd__ = __sub__ = __rsub__ = _undefined
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = _undefined
    __mod__ = __rmod__ = __floordiv__ = __rfloordiv__ = _undefined
    __and__ = __rand__ = __or__ = __ror__ = __xor__ = __rxor__ = _undefined
    __lshift__ = __rlshift__ = __rshift__ = __rrshift__ = _undefined
    __lt__ = __le__ = __gt__ = __ge__ = __eq__ = __ne__ = _undefined
    __neg__ = __pos__ = __abs__ = __invert__ = _undefined
    __int__ = __float__ = __index__ = __bool__ = __floor__ = _undefined
    __hash__ = None

    def __repr__(self):
        return "<undef>"


#: The shared undefined-register sentinel (one instance, compared by ``is``).
UNDEF = _Undef()


class Frame:
    """One activation record: function, PC, registers, return linkage.

    The register file is a fixed-size list indexed by the function's
    decode-time slot allocation (:meth:`repro.ir.function.Function.reg_slots`)
    — a C-speed list index per access instead of a hashed dict lookup.
    """

    __slots__ = ("function", "fname", "block_name", "index", "regs", "slots",
                 "ret_dst")

    def __init__(self, function, block_name, index=0, ret_dst=None):
        self.function = function
        self.fname = function.name  # cached: read once per issue per lane
        self.block_name = block_name
        self.index = index
        slots = function.reg_slots()
        self.slots = slots
        self.regs = [UNDEF] * len(slots)
        self.ret_dst = ret_dst

    def pc(self):
        return (self.fname, self.block_name, self.index)

    def read(self, reg):
        value = self.regs[self.slots[reg.name]]
        if value is UNDEF:
            raise SimulationError(
                f"read of undefined register %{reg.name} "
                f"in @{self.fname}/{self.block_name}"
            )
        return value

    def write(self, reg, value):
        self.regs[self.slots[reg.name]] = value


class Thread:
    """One SIMT thread (lane) with its call stack and RNG stream."""

    def __init__(self, tid, lane, warp_id, kernel, args, seed):
        self.tid = tid
        self.lane = lane
        self.warp_id = warp_id
        self.state = ThreadState.RUNNABLE
        self.rng = XorShift32(seed, tid)
        self.frames = [Frame(kernel, kernel.entry.name)]
        for param, value in zip(kernel.params, args):
            self.frames[0].write(param, value)
        self.waiting_on = None       # barrier name while WAITING
        self.store_trace = []        # (addr, value) pairs, for result checks
        self.retired = 0             # per-thread executed instruction count

    @property
    def frame(self):
        if not self.frames:
            raise SimulationError(f"thread {self.tid} has no active frame")
        return self.frames[-1]

    def pc(self):
        return self.frame.pc()

    def advance(self):
        self.frame.index += 1

    def jump(self, block_name):
        self.frame.block_name = block_name
        self.frame.index = 0

    def push_frame(self, function, ret_dst):
        # The caller's frame stays at the call instruction; the return path
        # advances it past the call.
        self.frames.append(Frame(function, function.entry.name, ret_dst=ret_dst))

    def pop_frame(self, value=None):
        """Return from the current function; returns True if thread exited."""
        finished = self.frames.pop()
        if not self.frames:
            self.state = ThreadState.EXITED
            return True
        caller = self.frame
        if finished.ret_dst is not None:
            caller.write(finished.ret_dst, value if value is not None else 0)
        caller.index += 1  # step past the call instruction
        return False

    def exit(self):
        self.frames.clear()
        self.state = ThreadState.EXITED

    def park(self, barrier_name):
        self.state = ThreadState.WAITING
        self.waiting_on = barrier_name

    def unpark(self):
        self.state = ThreadState.RUNNABLE
        self.waiting_on = None

    @property
    def is_runnable(self):
        return self.state is ThreadState.RUNNABLE

    @property
    def is_exited(self):
        return self.state is ThreadState.EXITED

    def __repr__(self):
        return f"<Thread tid={self.tid} lane={self.lane} {self.state.value}>"


class Warp:
    """A co-scheduled group of up to WARP_SIZE threads."""

    def __init__(self, warp_id, threads):
        if len(threads) > WARP_SIZE:
            raise SimulationError(f"warp of {len(threads)} threads (max {WARP_SIZE})")
        self.warp_id = warp_id
        self.threads = threads
        self.barriers = BarrierFile()
        self.cycles = 0
        self.done = False
        # Machine-managed carry-over of groups() when the warp is known to
        # still be converged at one PC (see GPUMachine._step).
        self.groups_cache = None

    def lane(self, lane_id):
        return self.threads[lane_id]

    def live_threads(self):
        return [t for t in self.threads if not t.is_exited]

    def runnable_threads(self):
        return [t for t in self.threads if t.is_runnable]

    def groups(self):
        """Runnable threads grouped by PC, as {pc: [threads by lane]}."""
        # Hot path: runs once per issue slot over every thread, so the PC
        # tuple is built inline rather than through Thread.pc()/Frame.pc(),
        # with every loop-invariant attribute hoisted into a local.
        groups = {}
        lookup = groups.get
        runnable = ThreadState.RUNNABLE
        for thread in self.threads:
            if thread.state is runnable:
                frame = thread.frames[-1]
                pc = (frame.fname, frame.block_name, frame.index)
                bucket = lookup(pc)
                if bucket is None:
                    groups[pc] = [thread]
                else:
                    bucket.append(thread)
        return groups

    def release(self, barrier, lanes):
        """Release parked lanes from a barrier and make them runnable."""
        barrier.release(lanes)
        for lane_id in lanes:
            thread = self.threads[lane_id]
            if thread.state is not ThreadState.WAITING:
                raise SimulationError(
                    f"lane {lane_id} released but not waiting "
                    f"(state {thread.state.value})"
                )
            thread.unpark()

    def drain_releasable(self, on_release=None):
        """Release every barrier whose condition holds; returns #released.

        ``on_release(barrier, lanes)`` is an optional observability hook
        invoked after each release (None on the fast path).
        """
        # Fast-out: no barrier has a parked lane (the common case between
        # divergent regions), so nothing can be releasable.
        for barrier in self.barriers.barriers_dict().values():
            if barrier.parked_mask:
                break
        else:
            return 0
        released = 0
        progress = True
        while progress:
            progress = False
            for barrier, lanes in self.barriers.all_releasable():
                self.release(barrier, lanes)
                if on_release is not None:
                    on_release(barrier, lanes)
                released += len(lanes)
                progress = True
        return released

    def __repr__(self):
        return f"<Warp {self.warp_id} ({len(self.threads)} threads)>"
