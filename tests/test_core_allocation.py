"""Barrier register allocation tests (16 physical registers, coloring)."""

import pytest

from repro.core import (
    PHYSICAL_BARRIERS,
    ReconvergenceCompiler,
    allocate_barriers,
    allocate_module,
    color_barriers,
)
from repro.errors import AllocationError
from repro.ir import (
    Barrier,
    Function,
    Instruction,
    Module,
    Opcode,
    make,
)
from tests.helpers import listing1_module


def _serial_barriers(n):
    """n disjoint join/wait pairs in sequence (no interference)."""
    fn = Function("k", is_kernel=True)
    block = fn.new_block("entry")
    for i in range(n):
        block.append(make(Opcode.BSSY, None, Barrier(f"b{i}")))
        block.append(make(Opcode.BSYNC, None, Barrier(f"b{i}")))
    block.append(Instruction(Opcode.EXIT))
    return fn


def _nested_barriers(n):
    """n simultaneously-live barriers (full interference)."""
    fn = Function("k", is_kernel=True)
    block = fn.new_block("entry")
    for i in range(n):
        block.append(make(Opcode.BSSY, None, Barrier(f"b{i}")))
    for i in reversed(range(n)):
        block.append(make(Opcode.BSYNC, None, Barrier(f"b{i}")))
    block.append(Instruction(Opcode.EXIT))
    return fn


class TestColoring:
    def test_disjoint_ranges_share_a_register(self):
        fn = _serial_barriers(4)
        assignment = color_barriers(fn)
        assert set(assignment.values()) == {"B0"}

    def test_overlapping_ranges_get_distinct_registers(self):
        fn = _nested_barriers(4)
        assignment = color_barriers(fn)
        assert len(set(assignment.values())) == 4

    def test_sixteen_simultaneous_fit(self):
        fn = _nested_barriers(PHYSICAL_BARRIERS)
        assignment = color_barriers(fn)
        assert len(set(assignment.values())) == PHYSICAL_BARRIERS

    def test_seventeen_simultaneous_overflow(self):
        fn = _nested_barriers(PHYSICAL_BARRIERS + 1)
        with pytest.raises(AllocationError):
            color_barriers(fn)

    def test_apply_rewrites_operands(self):
        fn = _serial_barriers(2)
        allocate_barriers(fn)
        names = {
            instr.operands[0].name
            for _, _, instr in fn.instructions()
            if instr.is_barrier_op
        }
        assert names == {"B0"}
        assert fn.attrs["barrier_allocation"]

    def test_reserved_assignment_respected(self):
        fn = _serial_barriers(2)
        assignment = allocate_barriers(fn, reserved={"b0": "B7"})
        assert assignment["b0"] == "B7"
        assert assignment["b1"] != "B7"  # pinned registers are off-limits


class TestModuleAllocation:
    def test_cross_function_barrier_consistent(self):
        module = Module("m")
        caller = Function("main", is_kernel=True)
        block = caller.new_block("entry")
        block.append(make(Opcode.BSSY, None, Barrier("shared")))
        block.append(Instruction(Opcode.EXIT))
        module.add(caller)
        callee = Function("leaf")
        cblock = callee.new_block("entry")
        cblock.append(make(Opcode.BSYNC, None, Barrier("shared")))
        cblock.append(Instruction(Opcode.RET))
        module.add(callee)
        assignments = allocate_module(module)
        assert assignments["main"]["shared"] == assignments["leaf"]["shared"]

    def test_pipeline_output_uses_physical_names(self):
        prog = ReconvergenceCompiler().compile(listing1_module(), mode="sr")
        fn = prog.module.function("k")
        names = {
            instr.operands[0].name
            for _, _, instr in fn.instructions()
            if instr.is_barrier_op and isinstance(instr.operands[0], Barrier)
        }
        assert names
        assert all(name.startswith("B") for name in names)
        assert all(int(name[1:]) < PHYSICAL_BARRIERS for name in names)
