"""Parallel sweep runner: fan independent experiment configs over workers.

Every figure regeneration is a bag of independent experiments — one
``compare_workload`` per Table 2 row, one compile-and-launch per threshold
sweep point — that share nothing but the (deterministic) seed. This module
farms such a bag over a ``multiprocessing`` pool and merges results in
submission order, so a parallel sweep is *bit-identical* to the serial
one: ``pool.map`` preserves ordering, each worker runs with its own
process-private caches, and all randomness is derived from the explicit
seed, never from worker identity or scheduling.

The pool is **persistent**: the first parallel ``run_tasks`` call forks
it, later calls reuse it, so a session of many small sweeps (threshold
scans especially) pays pool spin-up and per-process cache warming once
instead of per sweep. The pool is keyed by the worker count and a
fingerprint of every knob that shapes worker behaviour — the ``REPRO_*``
environment and the in-process engine toggles (fastpath, segments, warp
batching, compile cache) — and is transparently torn down and reforked
when any of them changes, since forked workers snapshot that state at
creation. :func:`shutdown_pool` retires it explicitly (also registered
``atexit``), and a worker exception terminates the pool before
propagating so no half-poisoned workers outlive the error.

Tasks are ``(fn, args, kwargs)`` triples with ``fn`` a module-level
function (workers import it by reference under the fork start method, and
by qualified name under spawn). ``jobs<=1``, a single task, or an
unavailable ``multiprocessing`` all degrade to a plain serial loop — the
``--jobs`` flag can therefore be wired through unconditionally.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os

__all__ = ["resolve_jobs", "run_tasks", "shutdown_pool", "task"]


def resolve_jobs(jobs=None):
    """Normalize a ``--jobs`` value: None/0 consult ``REPRO_JOBS``, then 1.

    An explicit negative value means "one worker per CPU".
    """
    if jobs is None or jobs == 0:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = int(env)
    jobs = int(jobs)
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, jobs)


def task(fn, *args, **kwargs):
    """Package one unit of work for :func:`run_tasks`."""
    return (fn, args, kwargs)


def _call(packed):
    fn, args, kwargs = packed
    return fn(*args, **kwargs)


#: The live pool and the (jobs, fingerprint) key it was forked under.
_POOL = None
_POOL_KEY = None


def _knob_fingerprint():
    """Everything a forked worker snapshots that a later sweep may have
    changed: REPRO_* environment variables and the in-process engine
    toggles (which ``set_fastpath``-style helpers flip without touching
    the environment)."""
    env = tuple(sorted(
        (key, value)
        for key, value in os.environ.items()
        if key.startswith("REPRO_")
    ))
    from repro.core.program_cache import CACHE_ENABLED
    from repro.simt.batch import WARP_BATCH_ENABLED
    from repro.simt.fastpath import FASTPATH_ENABLED
    from repro.simt.segments import SEGMENTS_ENABLED

    return (
        env,
        FASTPATH_ENABLED,
        SEGMENTS_ENABLED,
        WARP_BATCH_ENABLED,
        CACHE_ENABLED,
    )


def shutdown_pool():
    """Retire the persistent pool (no-op when none is alive)."""
    global _POOL, _POOL_KEY
    pool = _POOL
    _POOL = None
    _POOL_KEY = None
    if pool is not None:
        pool.terminate()
        pool.join()


atexit.register(shutdown_pool)


def _acquire_pool(jobs):
    """The persistent pool for ``jobs`` workers under the current knobs,
    reforking if either changed since the last call."""
    global _POOL, _POOL_KEY
    key = (jobs, _knob_fingerprint())
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_pool()
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context("spawn")
    _POOL = context.Pool(processes=jobs)
    _POOL_KEY = key
    return _POOL


def run_tasks(tasks, jobs=None):
    """Run ``(fn, args, kwargs)`` triples; results in submission order.

    With ``jobs`` (resolved per :func:`resolve_jobs`) greater than one and
    more than one task, the tasks run on the persistent process pool;
    otherwise serially in-process. Worker exceptions propagate to the
    caller either way (and retire the pool first).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*args, **kwargs) for fn, args, kwargs in tasks]
    pool = _acquire_pool(jobs)
    try:
        return pool.map(_call, tasks)
    except Exception:
        # The failed map may leave workers mid-task; don't hand them the
        # next sweep.
        shutdown_pool()
        raise
