"""Dead code elimination.

Removes instructions whose results are never used and that have no side
effects. Side-effecting opcodes — memory writes, atomics, barriers,
control flow, calls, markers — are always kept; ``rand`` is also kept
because it advances the per-thread RNG stream (removing one would shift
every later draw and change results).

Liveness is computed with the generic backward solver over registers.
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView
from repro.analysis.dataflow import solve_backward
from repro.ir.instructions import BARRIER_OPS, Opcode, Reg

#: Opcodes that must never be deleted even if their value is unused.
_SIDE_EFFECTS = BARRIER_OPS | {
    Opcode.ST,
    Opcode.ATOMADD,
    Opcode.CALL,
    Opcode.BRA,
    Opcode.CBR,
    Opcode.RET,
    Opcode.EXIT,
    Opcode.BMOV,
    Opcode.PREDICT,
    Opcode.WARPSYNC,
    Opcode.DELAY,
    Opcode.RAND,
}


def _block_effects(block):
    """(gen, kill) for register liveness, scanning bottom-up."""
    gen, kill = set(), set()
    for instr in reversed(block.instructions):
        for reg in instr.defs():
            kill.add(reg)
            gen.discard(reg)
        for reg in instr.uses():
            gen.add(reg)
            kill.discard(reg)
    return gen, kill


def eliminate_dead_code(function, max_iterations=10):
    """Iteratively delete dead instructions; returns total removed."""
    removed_total = 0
    for _ in range(max_iterations):
        view = CFGView.of_function(function)
        gen, kill = {}, {}
        for block in function.blocks:
            gen[block.name], kill[block.name] = _block_effects(block)
        result = solve_backward(view, gen, kill)
        removed = 0
        for block in function.blocks:
            live = set(result.out_of(block.name))
            kept = []
            for instr in reversed(block.instructions):
                dead = (
                    instr.dst is not None
                    and instr.dst not in live
                    and instr.opcode not in _SIDE_EFFECTS
                )
                if dead:
                    removed += 1
                else:
                    kept.append(instr)
                    for reg in instr.defs():
                        live.discard(reg)
                    for reg in instr.uses():
                        if isinstance(reg, Reg):
                            live.add(reg)
            kept.reverse()
            block.instructions = kept
        removed_total += removed
        if removed == 0:
            break
    return removed_total


def dce_module(module):
    return sum(eliminate_dead_code(fn) for fn in module)
