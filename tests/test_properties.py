"""Property-based tests of the system's central invariant:

convergence synchronization — PDOM, Speculative Reconvergence (any
threshold), no sync at all, and any scheduler — never changes any thread's
observable results. Random divergent kernels are generated as ASTs,
compiled in every mode, and their per-thread store traces compared.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReconvergenceCompiler
from repro.frontend import ast_nodes as A
from repro.frontend.lower import lower_program
from repro.ir import verify_module
from repro.simt import GPUMachine


@st.composite
def random_kernel(draw, allow_atomics=False):
    """A random kernel with loops, divergent branches, and a labeled
    reconvergence point under a Predict directive.

    Optionally adds a device function called from the divergent region with
    an interprocedural ``Predict("@helper")`` (Section 4.4) — its threshold,
    like the label prediction's, may be a soft-barrier threshold (Section
    4.6) — so the fuzz net covers the interprocedural and softbarrier
    passes too.

    With ``allow_atomics=True`` the divergent region may additionally
    ``atomadd`` a *shared* cell and fold the fetched value into the
    stored accumulator. That makes results depend on the exact global
    interleaving of warps, which is precisely what the warp-batching
    conformance fuzz needs — and why the schedule-invariance tests in
    this file keep it off.
    """
    statements = [
        A.Let("acc", A.Num(0.0)),
        A.Let("t", A.CallExpr("tid", [])),
        A.Predict("L1", threshold=draw(st.one_of(st.none(), st.integers(2, 32)))),
    ]
    functions = []
    use_call = draw(st.booleans())
    call_stmts = []
    if use_call:
        chain = draw(st.integers(1, 4))
        helper_body = (
            [A.Let("h", A.Var("x"))]
            + [
                A.Assign(
                    "h",
                    A.CallExpr("fma", [A.Var("h"), A.Num(1.0003), A.Num(0.25)]),
                )
                for _ in range(chain)
            ]
            + [A.Return(A.Var("h"))]
        )
        functions.append(A.FuncDecl("helper", ["x"], A.Block(helper_body)))
        statements.append(
            A.Predict(
                "@helper",
                threshold=draw(st.one_of(st.none(), st.integers(2, 32))),
            )
        )
        call_stmts = [A.Assign("acc", A.CallExpr("helper", [A.Var("acc")]))]
    if allow_atomics and draw(st.booleans()):
        # A shared-cell fetch-and-add whose result is observable: every
        # thread of every warp contends on one address, and the fetched
        # ticket feeds the final store.
        shared_cell = float(draw(st.integers(900, 903)))
        call_stmts = call_stmts + [
            A.Assign(
                "acc",
                A.Bin(
                    "+",
                    A.Var("acc"),
                    A.CallExpr(
                        "atomadd", [A.Num(shared_cell), A.Num(1.0)]
                    ),
                ),
            )
        ]
    outer_trips = draw(st.integers(2, 6))
    use_inner_loop = draw(st.booleans())
    expensive_len = draw(st.integers(1, 6))
    expensive = [
        A.Assign("acc", A.CallExpr("fma", [A.Var("acc"), A.Num(1.0001), A.Num(0.5)]))
        for _ in range(expensive_len)
    ]
    labeled = A.Label("L1", expensive[0])
    if use_inner_loop:
        trip_expr = A.Bin(
            "+",
            A.Un(
                "floor",
                A.Bin(
                    "*",
                    A.CallExpr(
                        "hash01",
                        [A.Bin("+", A.Bin("*", A.Var("t"), A.Num(13.0)), A.Var("i"))],
                    ),
                    A.Num(float(draw(st.integers(2, 10)))),
                ),
            ),
            A.Num(1),
        )
        body = A.Block(
            [
                A.Let("trips", trip_expr),
                A.Let("j", A.Num(0)),
                A.While(
                    A.Bin("<", A.Var("j"), A.Var("trips")),
                    A.Block(
                        [labeled]
                        + expensive[1:]
                        + call_stmts
                        + [A.Assign("j", A.Bin("+", A.Var("j"), A.Num(1)))]
                    ),
                ),
            ]
        )
    else:
        prob = draw(st.floats(0.1, 0.9))
        cond = A.Bin(
            "<",
            A.CallExpr(
                "hash01",
                [A.Bin("+", A.Bin("*", A.Var("t"), A.Num(7.0)), A.Var("i"))],
            ),
            A.Num(prob),
        )
        else_body = None
        if use_call and draw(st.booleans()):
            # Common-function-call divergence (Figure 2c): both arms call
            # the helper from different sites.
            else_body = A.Block(
                [
                    A.Assign(
                        "acc",
                        A.CallExpr(
                            "helper", [A.Bin("+", A.Var("acc"), A.Num(1.0))]
                        ),
                    )
                ]
            )
        body = A.Block(
            [
                A.If(
                    cond,
                    A.Block([labeled] + expensive[1:] + call_stmts),
                    else_body,
                )
            ]
        )
    statements.append(A.For("i", A.Num(0), A.Num(outer_trips), body))
    statements.append(
        A.Store(A.Var("t"), A.Var("acc"))
    )
    decl = A.FuncDecl("k", [], A.Block(statements), is_kernel=True)
    return A.Program(functions=[decl] + functions)


@st.composite
def random_launch(draw):
    """(program, n_threads): a random kernel plus a launch width that may
    span multiple warps (including a partial last warp)."""
    program = draw(random_kernel())
    n_threads = draw(st.sampled_from([32, 48, 64]))
    return program, n_threads


def _traces(module, scheduler="convergence"):
    result = GPUMachine(module, scheduler=scheduler).launch("k", 32)
    return result.store_traces()


class TestScheduleInvariance:
    @settings(max_examples=25, deadline=None)
    @given(random_kernel())
    def test_all_modes_produce_identical_traces(self, program):
        module = lower_program(program)
        compiler = ReconvergenceCompiler()
        reference = None
        for mode in ("baseline", "sr", "none"):
            compiled = compiler.compile(module, mode=mode)
            assert verify_module(compiled.module)
            traces = _traces(compiled.module)
            if reference is None:
                reference = traces
            else:
                assert traces == reference, f"mode {mode} changed results"

    @settings(max_examples=15, deadline=None)
    @given(random_kernel())
    def test_schedulers_produce_identical_traces(self, program):
        module = lower_program(program)
        compiled = ReconvergenceCompiler().compile(module, mode="sr")
        reference = _traces(compiled.module, "convergence")
        for scheduler in ("oldest-first", "round-robin"):
            assert _traces(compiled.module, scheduler) == reference

    @settings(max_examples=15, deadline=None)
    @given(random_kernel(), st.integers(2, 31))
    def test_soft_thresholds_produce_identical_traces(self, program, threshold):
        module = lower_program(program)
        compiler = ReconvergenceCompiler()
        hard = compiler.compile(module, mode="sr", threshold=None)
        soft = compiler.compile(module, mode="sr", threshold=threshold)
        assert _traces(hard.module) == _traces(soft.module)


class TestEfficiencyBounds:
    @settings(max_examples=15, deadline=None)
    @given(random_kernel())
    def test_efficiency_always_valid(self, program):
        module = lower_program(program)
        for mode in ("baseline", "sr"):
            compiled = ReconvergenceCompiler().compile(module, mode=mode)
            result = GPUMachine(compiled.module).launch("k", 32)
            assert 0.0 < result.simt_efficiency <= 1.0
            assert result.cycles > 0

    @settings(max_examples=15, deadline=None)
    @given(random_kernel())
    def test_retired_instructions_mode_invariant_modulo_barriers(self, program):
        """Each thread retires the same non-barrier work in every mode."""
        module = lower_program(program)
        compiler = ReconvergenceCompiler()

        def retired_non_barrier(mode):
            compiled = compiler.compile(module, mode=mode)
            result = GPUMachine(compiled.module).launch("k", 32)
            return result.profiler.issued  # includes barrier ops

        # The 'none' mode has no barrier instructions at all, so issued
        # counts differ; the check here is that both run to completion and
        # the thread-level work (stores) matched, covered above. Just a
        # smoke check that barrier overhead stays bounded.
        base = compiler.compile(module, mode="baseline")
        base_result = GPUMachine(base.module).launch("k", 32)
        sr = compiler.compile(module, mode="sr")
        sr_result = GPUMachine(sr.module).launch("k", 32)
        assert sr_result.profiler.barrier_issues >= base_result.profiler.barrier_issues
