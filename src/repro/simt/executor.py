"""Warp-level instruction execution.

The executor applies one instruction to a group of threads that share a PC,
charging one issue slot (the SIMT execution model: one instruction, many
threads). Per-thread effects — register writes, branch targets, barrier
membership — are applied lane by lane in lane order, which makes atomics
deterministic.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError
from repro.ir.instructions import Barrier, Imm, Opcode, Reg
from repro.obs.events import (
    BarrierArriveEvent,
    BarrierReleaseEvent,
    DivergeEvent,
    IssueEvent,
    ReconvergeEvent,
)
from repro.obs.sinks import NULL_SINK
from repro.simt.barrier_state import ALL_MEMBERS
from repro.simt.cta import CTASYNC_BARRIER

_WARPSYNC_BARRIER = "__warpsync__"

#: Opcodes whose execution can park lanes on a convergence barrier.
_PARK_OPS = frozenset(
    (Opcode.BSYNC, Opcode.BSYNCSOFT, Opcode.WARPSYNC, Opcode.CTASYNC)
)


def _as_int(value):
    return int(value)


def _truthy(value):
    return value != 0


_BINARY_EVAL = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: a / b if b != 0 else 0.0,
    Opcode.REM: lambda a, b: _as_int(a) % _as_int(b) if _as_int(b) != 0 else 0,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.AND: lambda a, b: _as_int(a) & _as_int(b),
    Opcode.OR: lambda a, b: _as_int(a) | _as_int(b),
    Opcode.XOR: lambda a, b: _as_int(a) ^ _as_int(b),
    Opcode.SHL: lambda a, b: _as_int(a) << _as_int(b),
    Opcode.SHR: lambda a, b: _as_int(a) >> _as_int(b),
    Opcode.CMPLT: lambda a, b: 1 if a < b else 0,
    Opcode.CMPLE: lambda a, b: 1 if a <= b else 0,
    Opcode.CMPGT: lambda a, b: 1 if a > b else 0,
    Opcode.CMPGE: lambda a, b: 1 if a >= b else 0,
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPNE: lambda a, b: 1 if a != b else 0,
}

_UNARY_EVAL = {
    Opcode.MOV: lambda a: a,
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: 0 if _truthy(a) else 1,
    Opcode.SQRT: lambda a: math.sqrt(a) if a > 0 else 0.0,
    Opcode.SIN: math.sin,
    Opcode.COS: math.cos,
    Opcode.EXP: lambda a: math.exp(min(a, 60.0)),
    Opcode.LOG: lambda a: math.log(a) if a > 0 else 0.0,
    Opcode.FLOOR: lambda a: int(math.floor(a)),
    Opcode.ABS: abs,
}

#: Opcodes that move every thread of a group to the same next PC with no
#: park/exit/barrier side effect. After issuing one of these to a fully
#: converged warp, the warp is guaranteed still converged at a single PC,
#: so the machine can carry the group over instead of regrouping (CBR can
#: split, RET/EXIT can retire lanes, and the b* ops mutate barrier state).
_UNIFORM_OPS = (
    frozenset(_BINARY_EVAL)
    | frozenset(_UNARY_EVAL)
    | frozenset((
        Opcode.CONST, Opcode.SEL, Opcode.FMA, Opcode.TID, Opcode.LANE,
        Opcode.WARPID, Opcode.RAND, Opcode.LD, Opcode.ST, Opcode.ATOMADD,
        Opcode.BRA, Opcode.CALL, Opcode.PREDICT, Opcode.NOP, Opcode.DELAY,
    ))
)


class Executor:
    """Executes instructions for thread groups of one launch."""

    def __init__(self, module, memory, cost_model, profiler, sink=None,
                 metrics=None, fastpath=None, segments=None, soa=None,
                 jit=None, cta=None):
        self.module = module
        self.memory = memory
        self.cost_model = cost_model
        self.profiler = profiler
        # CTA launch context (repro.simt.cta): grid identity, per-CTA shared
        # memory, and the CTA-wide ctasync barrier. None only for executors
        # built outside a GPUMachine launch; grid opcodes then raise.
        self.cta = cta
        # Observability: a pluggable event sink plus a stall-metrics
        # registry. With the defaults, the per-issue cost is one boolean
        # check and no allocations.
        self.sink = sink if sink is not None else NULL_SINK
        self.metrics = metrics
        self.observing = bool(self.sink.enabled or metrics is not None)
        # True when the last executed opcode was in _UNIFORM_OPS.
        self.issued_uniform = False
        # Pre-decoded dispatch table (repro.simt.fastpath). ``fastpath=None``
        # defers to the global default; the decoded program is shared across
        # executors of the same module + cost model. Imported here rather
        # than at module level because fastpath builds on this module's
        # eval tables.
        from repro.simt import fastpath as _fastpath

        if fastpath is None:
            fastpath = _fastpath.FASTPATH_ENABLED
        self._decoded = (
            _fastpath.decode_program(module, cost_model) if fastpath else None
        )
        # Segment fusion (repro.simt.segments): only legal on the decoded
        # path with no per-issue observers — an attached sink, stall
        # metrics, or an issue trace all need to see every individual slot,
        # so any of them forces per-instruction issue. ``segments=None``
        # defers to the global REPRO_SEGMENTS default.
        from repro.simt import segments as _segments

        if segments is None:
            segments = _segments.SEGMENTS_ENABLED
        self.segment_at = (
            self._decoded.segment_at
            if segments
            and self._decoded is not None
            and not self.observing
            and profiler.trace is None
            else None
        )
        # SoA vectorized chunks (repro.simt.soa): ``soa=None`` defers to
        # the global REPRO_SOA default. ``soa_lanes`` is the minimum group
        # width for vector execution, or None when SoA is off for this
        # launch (numpy missing, disabled, or no segment path to ride on).
        from repro.simt import soa as _soa

        if soa is None:
            soa = _soa.SOA_ENABLED
        self.soa_lanes = (
            _soa.MIN_SOA_LANES if soa and _soa.soa_available() else None
        )
        # Segment JIT (repro.simt.jit): ``jit=None`` defers to the global
        # REPRO_JIT default. ``jit_threshold`` is the per-segment hotness
        # gate, or None when the JIT is off for this launch (disabled, or
        # no segment path to tier up from).
        from repro.simt import jit as _jit

        if jit is None:
            jit = _jit.JIT_ENABLED
        self.jit_threshold = (
            _jit.JIT_THRESHOLD
            if jit and self.segment_at is not None
            else None
        )
        # The engine-knob fingerprint compiled segments are keyed under,
        # computed once per launch (knob changes take effect for
        # executors built afterwards, exactly like the threshold).
        self.jit_fingerprint = (
            _jit.knob_fingerprint() if self.jit_threshold is not None else None
        )
        # The launch's FlightRecorder; the machine attaches it so tier-up
        # can record jit-compile events at the verbose level.
        self.recorder = None
        # Program order for scheduler tie-breaking and fetches.
        self._block_pos = {
            fn.name: {block.name: pos for pos, block in enumerate(fn.blocks)}
            for fn in module
        }

    # ------------------------------------------------------------------
    def program_order(self, pc):
        function, block, index = pc
        return (function, self._block_pos[function][block], index)

    def fetch(self, pc):
        function, block, index = pc
        instructions = self.module.function(function).block(block).instructions
        if index >= len(instructions):
            raise SimulationError(
                f"PC past end of block @{function}/{block}:{index} "
                "(missing terminator?)"
            )
        return instructions[index]

    def _value(self, thread, operand):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            return thread.frame.read(operand)
        if isinstance(operand, Barrier):
            return operand.name
        raise SimulationError(f"cannot evaluate operand {operand!r}")

    def _barrier_name(self, thread, operand):
        """Resolve a barrier operand: literal barrier or barrier register."""
        name = self._value(thread, operand)
        if not isinstance(name, str):
            raise SimulationError(
                f"barrier register holds non-barrier value {name!r}"
            )
        return name

    def _cta_ctx(self, opcode):
        """The CTA context, required by the grid opcodes."""
        ctx = self.cta
        if ctx is None:
            raise SimulationError(
                f"{opcode.value} needs a CTA context "
                "(this execution engine does not model grid launches)"
            )
        return ctx

    # ------------------------------------------------------------------
    def execute(self, warp, pc, group):
        """Execute the instruction at ``pc`` for ``group``; returns cycles."""
        decoded = self._decoded
        if decoded is not None:
            entry = decoded.entry(pc)
            instr = entry.instr
            opcode = entry.opcode
            cycles = entry.run(self, warp, group)
            # Lets the machine keep a converged warp's group across issues.
            self.issued_uniform = entry.uniform
            is_barrier_op = entry.is_barrier_op
        else:
            instr = self.fetch(pc)
            opcode = instr.opcode
            cycles = self._execute_slow(warp, instr, group)
            self.issued_uniform = opcode in _UNIFORM_OPS
            is_barrier_op = instr.is_barrier_op

        for thread in group:
            thread.retired += 1

        if self.observing:
            self._observe_issue(warp, pc, instr, group, cycles)
        self.profiler.record(
            warp.warp_id,
            pc,
            opcode,
            active=len(group),
            cycles=cycles,
            is_barrier_op=is_barrier_op,
            lanes=(
                frozenset(t.lane for t in group)
                if self.profiler.trace is not None
                else None
            ),
        )
        warp.cycles += cycles
        return cycles

    def _execute_slow(self, warp, instr, group):
        """Interpreted execution of one instruction; returns its cycles.

        This is the reference semantics: the fastpath closures in
        :mod:`repro.simt.fastpath` are specializations of these branches and
        must stay bit-identical (pinned by ``tests/test_conformance.py``).
        """
        opcode = instr.opcode
        cycles = self.cost_model.latency(opcode)

        if opcode in _BINARY_EVAL:
            fn = _BINARY_EVAL[opcode]
            for thread in group:
                a = self._value(thread, instr.operands[0])
                b = self._value(thread, instr.operands[1])
                thread.frame.write(instr.dst, fn(a, b))
                thread.advance()
        elif opcode in _UNARY_EVAL:
            fn = _UNARY_EVAL[opcode]
            for thread in group:
                thread.frame.write(
                    instr.dst, fn(self._value(thread, instr.operands[0]))
                )
                thread.advance()
        elif opcode is Opcode.CONST:
            value = instr.operands[0].value
            for thread in group:
                thread.frame.write(instr.dst, value)
                thread.advance()
        elif opcode is Opcode.SEL:
            for thread in group:
                pred = self._value(thread, instr.operands[0])
                picked = instr.operands[1] if _truthy(pred) else instr.operands[2]
                thread.frame.write(instr.dst, self._value(thread, picked))
                thread.advance()
        elif opcode is Opcode.FMA:
            for thread in group:
                a = self._value(thread, instr.operands[0])
                b = self._value(thread, instr.operands[1])
                c = self._value(thread, instr.operands[2])
                thread.frame.write(instr.dst, a * b + c)
                thread.advance()
        elif opcode is Opcode.TID:
            for thread in group:
                thread.frame.write(instr.dst, thread.tid)
                thread.advance()
        elif opcode is Opcode.LANE:
            for thread in group:
                thread.frame.write(instr.dst, thread.lane)
                thread.advance()
        elif opcode is Opcode.WARPID:
            for thread in group:
                thread.frame.write(instr.dst, thread.warp_id)
                thread.advance()
        elif opcode is Opcode.RAND:
            for thread in group:
                thread.frame.write(instr.dst, thread.rng.uniform())
                thread.advance()
        elif opcode is Opcode.CTAID:
            value = self._cta_ctx(opcode).cta_id
            for thread in group:
                thread.frame.write(instr.dst, value)
                thread.advance()
        elif opcode is Opcode.CTADIM:
            value = self._cta_ctx(opcode).cta_dim
            for thread in group:
                thread.frame.write(instr.dst, value)
                thread.advance()
        elif opcode is Opcode.NCTA:
            value = self._cta_ctx(opcode).grid_dim
            for thread in group:
                thread.frame.write(instr.dst, value)
                thread.advance()
        elif opcode is Opcode.SHLD:
            shared = self._cta_ctx(opcode).shared()
            for thread in group:
                addr = self._value(thread, instr.operands[0])
                thread.frame.write(instr.dst, shared.load(addr))
                thread.advance()
        elif opcode is Opcode.SHST:
            shared = self._cta_ctx(opcode).shared()
            for thread in group:
                addr = self._value(thread, instr.operands[0])
                value = self._value(thread, instr.operands[1])
                shared.store(addr, value)
                thread.advance()
        elif opcode is Opcode.SHATOM:
            shared = self._cta_ctx(opcode).shared()
            for thread in group:
                addr = self._value(thread, instr.operands[0])
                value = self._value(thread, instr.operands[1])
                thread.frame.write(instr.dst, shared.atom_add(addr, value))
                thread.advance()
        elif opcode is Opcode.LD:
            addresses = []
            for thread in group:
                addr = self._value(thread, instr.operands[0])
                addresses.append(addr)
                thread.frame.write(instr.dst, self.memory.load(addr))
                thread.advance()
            cycles = self.cost_model.memory_cost(opcode, addresses)
        elif opcode is Opcode.ST:
            addresses = []
            for thread in group:
                addr = self._value(thread, instr.operands[0])
                value = self._value(thread, instr.operands[1])
                addresses.append(addr)
                self.memory.store(addr, value)
                thread.store_trace.append((int(addr), value))
                thread.advance()
            cycles = self.cost_model.memory_cost(opcode, addresses)
        elif opcode is Opcode.ATOMADD:
            addresses = []
            for thread in group:
                addr = self._value(thread, instr.operands[0])
                value = self._value(thread, instr.operands[1])
                addresses.append(addr)
                thread.frame.write(instr.dst, self.memory.atom_add(addr, value))
                thread.advance()
            cycles = self.cost_model.memory_cost(opcode, addresses)
        elif opcode is Opcode.BRA:
            target = instr.operands[0].name
            for thread in group:
                thread.jump(target)
        elif opcode is Opcode.CBR:
            true_target = instr.operands[1].name
            false_target = instr.operands[2].name
            for thread in group:
                pred = self._value(thread, instr.operands[0])
                thread.jump(true_target if _truthy(pred) else false_target)
        elif opcode is Opcode.CALL:
            callee = self.module.function(instr.operands[0].name)
            args = instr.operands[1:]
            for thread in group:
                values = [self._value(thread, arg) for arg in args]
                thread.push_frame(callee, instr.dst)
                for param, value in zip(callee.params, values):
                    thread.frame.write(param, value)
        elif opcode is Opcode.RET:
            for thread in group:
                value = (
                    self._value(thread, instr.operands[0])
                    if instr.operands
                    else None
                )
                if thread.pop_frame(value):
                    warp.barriers.withdraw_from_all(thread.lane)
        elif opcode is Opcode.EXIT:
            for thread in group:
                thread.exit()
                warp.barriers.withdraw_from_all(thread.lane)
        elif opcode is Opcode.BSSY:
            for thread in group:
                name = self._barrier_name(thread, instr.operands[0])
                warp.barriers.get(name).join(thread.lane)
                thread.advance()
        elif opcode is Opcode.BSYNC:
            for thread in group:
                name = self._barrier_name(thread, instr.operands[0])
                thread.advance()  # resume past the wait when released
                if warp.barriers.get(name).park(thread.lane, ALL_MEMBERS):
                    thread.park(name)
                # Not a member: hardware pass-through.
        elif opcode is Opcode.BSYNCSOFT:
            for thread in group:
                name = self._barrier_name(thread, instr.operands[0])
                threshold = int(self._value(thread, instr.operands[1]))
                thread.advance()
                if threshold <= 1:
                    # Trivial threshold: never worth parking.
                    continue
                if warp.barriers.get(name).park(thread.lane, threshold):
                    thread.park(name)
        elif opcode is Opcode.BBREAK:
            for thread in group:
                name = self._barrier_name(thread, instr.operands[0])
                warp.barriers.get(name).withdraw(thread.lane)
                thread.advance()
        elif opcode is Opcode.BMOV:
            for thread in group:
                thread.frame.write(
                    instr.dst, self._barrier_name(thread, instr.operands[0])
                )
                thread.advance()
        elif opcode is Opcode.BARCNT:
            for thread in group:
                name = self._barrier_name(thread, instr.operands[0])
                thread.frame.write(
                    instr.dst, warp.barriers.get(name).arrived_count
                )
                thread.advance()
        elif opcode is Opcode.WARPSYNC:
            barrier = warp.barriers.get(_WARPSYNC_BARRIER)
            # Every live thread participates in a full-warp sync.
            for live in warp.live_threads():
                barrier.join(live.lane)
            for thread in group:
                thread.advance()
                if barrier.park(thread.lane, ALL_MEMBERS):
                    thread.park(_WARPSYNC_BARRIER)
        elif opcode is Opcode.CTASYNC:
            # CTA-wide barrier: arrivals park across warp boundaries; the
            # last live arrival opens the barrier for the whole CTA (the
            # exit-path re-check lives in GPUMachine._step).
            ctx = self._cta_ctx(opcode)
            for thread in group:
                thread.advance()  # resume past the wait when released
                ctx.arrive(thread)
            ctx.maybe_release()
        elif opcode in (Opcode.NOP, Opcode.PREDICT):
            for thread in group:
                thread.advance()
        elif opcode is Opcode.DELAY:
            cycles = int(instr.operands[0].value)
            for thread in group:
                thread.advance()
        else:
            raise SimulationError(f"unhandled opcode {opcode.value}")

        return cycles

    # ------------------------------------------------------------------
    # Observability (cold path: only runs with a live sink or metrics)
    # ------------------------------------------------------------------
    def _observe_issue(self, warp, pc, instr, group, cycles):
        """Emit events / update metrics for one just-executed issue.

        Runs after the instruction's effects but before ``warp.cycles``
        advances, so ``warp.cycles`` is the issue's start timestamp.
        """
        ts = warp.cycles
        opcode = instr.opcode
        function, block, index = pc
        metrics = self.metrics
        sink = self.sink
        if metrics is not None:
            metrics.on_issue(warp, pc, opcode, group, cycles)
        if sink.enabled:
            sink.emit(
                IssueEvent(
                    warp_id=warp.warp_id,
                    function=function,
                    block=block,
                    index=index,
                    opcode=opcode,
                    lanes=frozenset(t.lane for t in group),
                    ts=ts,
                    dur=cycles,
                    active=len(group),
                )
            )
            if opcode is Opcode.CBR:
                targets = {}
                for thread in group:
                    targets.setdefault(thread.frame.block_name, set()).add(
                        thread.lane
                    )
                if len(targets) > 1:
                    sink.emit(
                        DivergeEvent(
                            warp_id=warp.warp_id,
                            function=function,
                            block=block,
                            ts=ts,
                            targets={
                                t: frozenset(l) for t, l in targets.items()
                            },
                        )
                    )
        if opcode in _PARK_OPS:
            # Lanes that just parked are WAITING with waiting_on set.
            parked = {}
            for thread in group:
                if thread.waiting_on is not None and not thread.is_runnable:
                    parked.setdefault(thread.waiting_on, []).append(
                        thread.lane
                    )
            for name, lanes in parked.items():
                if name == CTASYNC_BARRIER:
                    # The CTA barrier lives on the CTA context, not in the
                    # warp's barrier file (it spans warps); occupancy is the
                    # CTA-wide arrival count.
                    occupancy = len(self.cta.arrived) if self.cta else 0
                else:
                    occupancy = len(warp.barriers.get(name).parked)
                if metrics is not None:
                    metrics.on_park(warp.warp_id, name, lanes, ts, occupancy)
                if sink.enabled:
                    sink.emit(
                        BarrierArriveEvent(
                            warp_id=warp.warp_id,
                            barrier=name,
                            ts=ts,
                            lanes=frozenset(lanes),
                            parked=occupancy,
                        )
                    )

    def observe_release(self, warp, barrier, lanes):
        """Hook for barrier releases (driven by the machine's drain)."""
        ts = warp.cycles
        if self.metrics is not None:
            self.metrics.on_release(warp.warp_id, barrier.name, lanes, ts)
        if self.sink.enabled:
            self.sink.emit(
                BarrierReleaseEvent(
                    warp_id=warp.warp_id,
                    barrier=barrier.name,
                    ts=ts,
                    lanes=frozenset(lanes),
                )
            )
            # The released lanes merge with whoever is already runnable at
            # their resume PC — that merged group is the reconvergence.
            resume = warp.threads[min(lanes)]
            pc = resume.pc()
            merged = frozenset(
                t.lane
                for t in warp.threads
                if t.is_runnable and t.pc() == pc
            )
            self.sink.emit(
                ReconvergeEvent(
                    warp_id=warp.warp_id,
                    function=pc[0],
                    block=pc[1],
                    ts=ts,
                    lanes=merged,
                )
            )
