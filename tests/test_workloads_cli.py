"""Workload-runner CLI tests."""

from repro.workloads.__main__ import main


class TestWorkloadsCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "rsbench" in out and "loop-merge" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Registered workloads" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        assert main(["quake3"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_run_sr(self, capsys):
        assert main(["mcb"]) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out and "speedup" in out
        assert "results match" in out

    def test_explicit_threshold(self, capsys):
        assert main(["mcb", "--threshold", "8"]) == 0
        assert "(threshold 8)" in capsys.readouterr().out

    def test_none_mode(self, capsys):
        assert main(["mcb", "--mode", "none"]) == 0
        assert "none" in capsys.readouterr().out
