"""User-facing reconvergence directives (Section 4.1).

A prediction supplies two facts the compiler needs:

1. the *predicted reconvergence location* — a labeled block
   (``Predict(L1)`` + an ``L1:`` label) or a function entry
   (``Predict(@foo)``, Section 4.4);
2. the *prediction region* — starting at the directive's program point and
   ending "where all threads are no longer able to reach the label".

In IR form, the directive is a ``predict`` pseudo-instruction carrying
either a ``label`` attribute or a function-reference operand; the target
block carries a matching ``label`` attribute. This module collects
directives into :class:`Prediction` records and strips the markers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransformError
from repro.ir.instructions import FuncRef, Opcode


@dataclass
class Prediction:
    """One reconvergence prediction found in a function."""

    function: str          # function containing the directive
    region_block: str      # block holding the Predict directive
    region_index: int      # instruction index of the directive
    label: str = None      # label name for intra-procedural predictions
    target_block: str = None   # resolved labeled block
    callee: str = None     # function name for interprocedural predictions
    threshold: int = None  # soft-barrier threshold (None = hard barrier)
    directive: object = None   # the predict Instruction itself

    @property
    def is_interprocedural(self):
        return self.callee is not None

    def describe(self):
        target = f"@{self.callee}" if self.callee else f"{self.label} (^{self.target_block})"
        kind = "soft" if self.threshold is not None else "hard"
        return (
            f"Predict {target} from ^{self.region_block} "
            f"[{kind}{'' if self.threshold is None else f', k={self.threshold}'}]"
        )


def find_label_block(function, label):
    """The unique block carrying ``label``; raises if missing/ambiguous."""
    blocks = function.blocks_with_label(label)
    if not blocks:
        raise TransformError(
            f"@{function.name}: Predict({label}) has no matching label"
        )
    if len(blocks) > 1:
        names = ", ".join(b.name for b in blocks)
        raise TransformError(
            f"@{function.name}: label {label} is ambiguous (blocks {names})"
        )
    return blocks[0]


def collect_predictions(function, default_threshold=None):
    """All predictions declared in ``function`` (in program order)."""
    predictions = []
    for block, index, instr in function.instructions():
        if instr.opcode is not Opcode.PREDICT:
            continue
        threshold = instr.attrs.get("threshold", default_threshold)
        if instr.operands and isinstance(instr.operands[0], FuncRef):
            predictions.append(
                Prediction(
                    function=function.name,
                    region_block=block.name,
                    region_index=index,
                    callee=instr.operands[0].name,
                    threshold=threshold,
                    directive=instr,
                )
            )
            continue
        label = instr.attrs.get("label")
        if not label:
            raise TransformError(
                f"@{function.name}/{block.name}: predict directive without "
                "a label or callee"
            )
        target = find_label_block(function, label)
        predictions.append(
            Prediction(
                function=function.name,
                region_block=block.name,
                region_index=index,
                label=label,
                target_block=target.name,
                threshold=threshold,
                directive=instr,
            )
        )
    return predictions


def strip_directives(function):
    """Remove ``predict`` pseudo-instructions; returns how many."""
    removed = 0
    for block in function.blocks:
        kept = [i for i in block.instructions if i.opcode is not Opcode.PREDICT]
        removed += len(block.instructions) - len(kept)
        block.instructions = kept
    return removed
