"""Integration tests pinning the paper's headline claims (Section 5).

These assert the *shape* of the results — who wins, roughly by how much,
where the crossovers fall — not absolute numbers.
"""

import pytest

from repro.harness import compare_all, threshold_sweep
from repro.workloads import FIGURE7_WORKLOADS, get_workload
from repro.workloads.corpus import generate_corpus, run_funnel


@pytest.fixture(scope="module")
def figure7_rows():
    return {row.workload: row for row in compare_all(FIGURE7_WORKLOADS)}


class TestFigure7:
    """SR improves SIMT efficiency on every studied workload."""

    @pytest.mark.parametrize("name", FIGURE7_WORKLOADS)
    def test_simt_efficiency_improves(self, figure7_rows, name):
        row = figure7_rows[name]
        assert row.sr_eff > row.baseline_eff, (
            f"{name}: {row.baseline_eff:.3f} -> {row.sr_eff:.3f}"
        )

    @pytest.mark.parametrize("name", FIGURE7_WORKLOADS)
    def test_results_unchanged(self, figure7_rows, name):
        assert figure7_rows[name].checksum_ok

    def test_improvements_in_paper_band(self, figure7_rows):
        """Paper: 'improvements ranging from 10% to 3x'."""
        gains = [row.efficiency_gain for row in figure7_rows.values()]
        assert all(1.10 <= gain <= 3.0 for gain in gains), gains

    def test_workloads_start_inefficient(self, figure7_rows):
        """'Many of these applications exhibit relatively low SIMT
        efficiency in their default state.'"""
        assert sum(
            1 for row in figure7_rows.values() if row.baseline_eff < 0.6
        ) >= 6


class TestFigure8:
    """Speedups track (and are bounded by) efficiency improvements."""

    @pytest.mark.parametrize("name", FIGURE7_WORKLOADS)
    def test_speedup_positive(self, figure7_rows, name):
        assert figure7_rows[name].speedup > 1.0

    @pytest.mark.parametrize("name", FIGURE7_WORKLOADS)
    def test_efficiency_gain_upper_bounds_speedup(self, figure7_rows, name):
        """'SIMT efficiency improvement serves roughly as an upper bound on
        speedup' — allow 10% slack for the 'roughly'."""
        row = figure7_rows[name]
        assert row.speedup <= row.efficiency_gain * 1.10


class TestFigure9:
    """The soft-barrier threshold trade-off (Section 5.3)."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        thresholds = (0, 4, 8, 16, 24, 28, 32)
        return {
            name: threshold_sweep(name, thresholds=thresholds)
            for name in ("pathtracer", "xsbench")
        }

    def test_pathtracer_peaks_at_full_convergence(self, sweeps):
        _, points = sweeps["pathtracer"]
        best = max(points, key=lambda p: p.speedup)
        assert best.threshold >= 24

    def test_xsbench_peaks_at_low_threshold(self, sweeps):
        _, points = sweeps["xsbench"]
        best = max(points, key=lambda p: p.speedup)
        assert best.threshold <= 16

    def test_xsbench_hard_barrier_is_catastrophic(self, sweeps):
        """'executing this process every time one or a few threads become
        idle is not profitable' — the full barrier badly regresses."""
        _, points = sweeps["xsbench"]
        hard = next(p for p in points if p.threshold == 32)
        assert hard.speedup < 0.8

    def test_pathtracer_speedup_monotone_with_threshold(self, sweeps):
        _, points = sweeps["pathtracer"]
        speedups = [p.speedup for p in points]
        # Allow small noise; overall trend must rise.
        assert speedups[-1] > speedups[0]
        assert speedups[-1] == max(speedups)


class TestSection54Funnel:
    """520 apps -> 75 low-efficiency -> 16 detected -> 5 significant.

    Run at reduced corpus scale with the same detectable population; the
    full-size funnel runs in benchmarks/bench_corpus.py.
    """

    @pytest.fixture(scope="class")
    def funnel(self):
        counts = {"uniform": 12, "mild": 6, "disjoint": 10, "detectable": 16}
        return run_funnel(generate_corpus(counts=counts))

    def test_detected_exactly_sixteen(self, funnel):
        assert funnel.detected == 16

    def test_significant_exactly_five(self, funnel):
        assert funnel.significant == 5

    def test_low_efficiency_equals_divergent_population(self, funnel):
        assert funnel.low_efficiency == 26  # disjoint + detectable


class TestFunctionCallMicrobenchmark:
    """Section 4.4 / Figure 2(c): reconverging inside the callee."""

    @pytest.fixture(scope="class")
    def results(self):
        workload = get_workload("funccall")
        return workload, workload.run(mode="baseline"), workload.run(mode="sr")

    def test_shade_body_fully_converges(self, results):
        workload, baseline, optimized = results
        assert workload.shade_efficiency(optimized.launch) > 0.95

    def test_baseline_shade_serialized(self, results):
        workload, baseline, optimized = results
        assert workload.shade_efficiency(baseline.launch) < 0.7

    def test_speedup(self, results):
        workload, baseline, optimized = results
        assert baseline.cycles / optimized.cycles > 1.3


class TestAutomaticMatchesAnnotated:
    """'Automatic Speculative Reconvergence performs the same as
    programmer-annotated variants' (Section 5.4)."""

    @pytest.mark.parametrize("name", ("rsbench", "mcb", "optix"))
    def test_auto_within_15_percent_of_annotated(self, name):
        workload = get_workload(name)
        baseline = workload.run(mode="baseline")
        annotated = workload.run(mode="sr")
        auto = workload.run(
            mode="auto",
            threshold=None,
            auto_options={"auto_threshold": workload.sr_threshold or 16},
        )
        annotated_speedup = baseline.cycles / annotated.cycles
        auto_speedup = baseline.cycles / auto.cycles
        assert auto_speedup == pytest.approx(annotated_speedup, rel=0.15)
