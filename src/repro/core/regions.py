"""Prediction regions (Section 4.1).

"Threads that enter the region will attempt to honor the predicted
reconvergence point, and threads that leave the region are no longer
considered candidates for reconvergence. The region ends where all threads
are no longer able to reach the label."

Concretely the region is the set of blocks that are (a) reachable from the
directive and (b) can still reach the labeled block. Exit edges lead from a
region block to a block outside it; the region's reconvergence-at-exit
point is the nearest common post-dominator of the whole region (the paper's
BB5, where the orthogonal exit barrier waits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg_utils import CFGView, can_reach, reachable_from
from repro.analysis.dominators import compute_post_dominators
from repro.errors import TransformError


@dataclass
class PredictionRegion:
    """Resolved region geometry for one prediction."""

    start_block: str
    target_block: str
    blocks: set = field(default_factory=set)
    exit_edges: list = field(default_factory=list)   # (src, dst) pairs
    post_dominator: str = None    # None when the region reaches the exit

    def contains(self, block_name):
        return block_name in self.blocks


def compute_region(function, start_block, target_block):
    """Geometry of the prediction region rooted at ``start_block``."""
    view = CFGView.of_function(function)
    forward = reachable_from(view, start_block)
    if target_block not in forward:
        raise TransformError(
            f"@{function.name}: label block ^{target_block} is unreachable "
            f"from the Predict directive in ^{start_block}"
        )
    backward = can_reach(view, [target_block])
    blocks = (forward & backward) | {start_block, target_block}

    exit_edges = []
    for name in sorted(blocks):
        for succ in view.succs[name]:
            if succ not in blocks:
                exit_edges.append((name, succ))

    pdom = compute_post_dominators(view)
    post_dominator = pdom.nearest_common_post_dominator(sorted(blocks))
    if post_dominator in blocks:
        # The common post-dominator must lie outside the region (threads can
        # no longer reach the label there); fall back to walking up.
        node = post_dominator
        while node is not None and node in blocks:
            node = pdom.ipdom(node)
        post_dominator = node

    return PredictionRegion(
        start_block=start_block,
        target_block=target_block,
        blocks=blocks,
        exit_edges=exit_edges,
        post_dominator=post_dominator,
    )
