"""Barrier register allocation.

Volta exposes 16 convergence-barrier registers (B0–B15). The passes above
work with unlimited abstract barrier names; this pass maps them onto
physical registers by graph coloring: two barriers interfere when their
joined live ranges overlap at any program point, in which case they must
not share a register.

Raises :class:`repro.errors.AllocationError` when a function genuinely
needs more than 16 simultaneously-live barriers.
"""

from __future__ import annotations

from repro.core.conflicts import ConflictAnalysis, literal_barriers
from repro.errors import AllocationError
from repro.ir.instructions import BARRIER_OPS, Barrier

PHYSICAL_BARRIERS = 16


def color_barriers(function, analysis=None, limit=PHYSICAL_BARRIERS):
    """Compute barrier -> physical register name mapping ("B0".."B15")."""
    analysis = analysis or ConflictAnalysis(function)
    names = literal_barriers(function)
    assignment = {}
    for name in names:  # first-use order: deterministic
        taken = {
            assignment[other]
            for other in names
            if other in assignment and analysis.interferes(name, other)
        }
        for color in range(limit):
            physical = f"B{color}"
            if physical not in taken:
                assignment[name] = physical
                break
        else:
            raise AllocationError(
                f"@{function.name}: needs more than {limit} simultaneous "
                f"convergence barriers (allocating {name})"
            )
    return assignment


def apply_allocation(function, assignment):
    """Rewrite literal barrier operands to their physical names."""
    for _, _, instr in function.instructions():
        if instr.opcode in BARRIER_OPS or instr.opcode.value == "bmov":
            if instr.operands and isinstance(instr.operands[0], Barrier):
                abstract = instr.operands[0].name
                if abstract in assignment:
                    instr.operands[0] = Barrier(assignment[abstract])
    function.attrs["barrier_allocation"] = dict(assignment)
    return assignment


def allocate_barriers(function, limit=PHYSICAL_BARRIERS, reserved=None):
    """Color and rewrite in one step; returns the mapping used.

    ``reserved`` pre-assigns abstract names to physical registers (used for
    barriers that span functions — see :func:`allocate_module`).
    """
    analysis = ConflictAnalysis(function)
    names = literal_barriers(function)
    assignment = dict(reserved or {})
    pinned = set(assignment.values())
    for name in names:
        if name in assignment:
            continue
        taken = set(pinned)
        taken.update(
            assignment[other]
            for other in names
            if other in assignment and analysis.interferes(name, other)
        )
        for color in range(limit):
            physical = f"B{color}"
            if physical not in taken:
                assignment[name] = physical
                break
        else:
            raise AllocationError(
                f"@{function.name}: needs more than {limit} simultaneous "
                f"convergence barriers (allocating {name})"
            )
    return apply_allocation(function, assignment)


def allocate_module(module, limit=PHYSICAL_BARRIERS):
    """Allocate all functions consistently.

    Barriers referenced from more than one function (interprocedural SR,
    Section 4.4) must land on the same physical register everywhere; they
    are pinned first, from B15 downward, then each function colors its
    local barriers around the pinned set.
    """
    uses = {}
    for function in module:
        for name in literal_barriers(function):
            uses.setdefault(name, set()).add(function.name)
    shared = sorted(name for name, fns in uses.items() if len(fns) > 1)
    reserved = {}
    next_high = limit - 1
    for name in shared:
        if next_high < 0:
            raise AllocationError(
                f"more than {limit} cross-function barriers ({shared})"
            )
        reserved[name] = f"B{next_high}"
        next_high -= 1
    assignments = {}
    for function in module:
        local_reserved = {
            name: phys
            for name, phys in reserved.items()
            if function.name in uses.get(name, set())
        }
        assignments[function.name] = allocate_barriers(
            function, limit=limit, reserved=local_reserved
        )
    return assignments
