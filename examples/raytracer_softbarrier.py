#!/usr/bin/env python
"""The soft-barrier trade-off (Figure 9): PathTracer vs XSBench.

Two workloads, opposite optima:

* **PathTracer** — refilling an idle thread with a new camera ray is
  cheap, so the best strategy is to wait for *everyone* (threshold 32)
  and keep the expensive bounce loop at full width.
* **XSBench** — refilling requires an expensive energy-grid binary
  search, so the best strategy is to keep the inner loop rolling with a
  *low* threshold and let idle threads pile up and refill in batches —
  "executing the inner loop until as few as four threads are
  participating".

Run: ``python examples/raytracer_softbarrier.py``
"""

from repro.harness import threshold_sweep
from repro.harness.report import format_bar


def sweep_and_plot(name):
    baseline, points = threshold_sweep(name, thresholds=range(0, 33, 4))
    print(f"--- {name}: baseline efficiency {baseline.simt_efficiency:.1%}, "
          f"cycles {baseline.cycles}")
    print(f"{'thr':>4s} {'eff':>7s} {'speedup':>8s}")
    max_speedup = max(p.speedup for p in points)
    for p in points:
        bar = format_bar(p.speedup, scale=30, maximum=max_speedup)
        print(f"{p.threshold:>4d} {p.simt_efficiency:>7.1%} "
              f"{p.speedup:>7.2f}x |{bar}")
    best = max(points, key=lambda p: p.speedup)
    print(f"best threshold: {best.threshold}\n")
    return best


def main():
    best_pt = sweep_and_plot("pathtracer")
    best_xs = sweep_and_plot("xsbench")
    print("Conclusion (matches Figure 9):")
    print(f"  PathTracer peaks at threshold {best_pt.threshold} "
          "(full reconvergence; refill is cheap).")
    print(f"  XSBench peaks at threshold {best_xs.threshold} "
          "(keep running; refill in batches because it is expensive).")


if __name__ == "__main__":
    main()
