"""Automatic detection of reconvergence points (Section 4.5).

Looks for the two CFG patterns of Section 3 inside each function:

* **Loop Merge** — an inner loop whose trip count is divergent (a divergent
  exit branch), nested inside an outer loop; the predicted reconvergence
  point is the inner-loop body.
* **Iteration Delay** — a divergent branch inside a loop whose expensive
  side is worth collecting threads for; the predicted point is that side.

Profitability follows the paper's three metrics:

1. *weighted instruction cost*: instruction latencies weighted by assumed
   (or profiled) trip counts and nest depth — common-code cost must
   sufficiently exceed the prolog/epilog cost that will become divergent;
2. *memory access patterns*: uniform-address loads/stores in the
   prolog/epilog are penalized, since the transform makes them divergent;
3. *synchronization requirements*: regions containing ``warpsync`` are
   rejected outright (CUDA 9.0 semantics make implicit convergence
   assumptions illegal, but re-timing explicit sync is still unsafe).

With a profiler from a baseline run, static weights are replaced by
measured per-block cycles and candidates are kept only where measured SIMT
efficiency is actually poor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg_utils import CFGView
from repro.analysis.divergence import DivergenceAnalysis
from repro.analysis.loops import compute_loops
from repro.ir.instructions import Imm, Instruction, Opcode, Reg
from repro.simt.costs import DEFAULT_COST_MODEL

KIND_LOOP_MERGE = "loop-merge"
KIND_ITERATION_DELAY = "iteration-delay"


@dataclass
class Candidate:
    """One detected Speculative Reconvergence opportunity."""

    function: str
    kind: str
    start_block: str       # where the Predict directive goes
    label_block: str       # predicted reconvergence point
    score: float           # common-cost / serialized-cost ratio
    common_cost: float
    serialized_cost: float
    memory_penalty: float = 0.0
    rejected: str = None   # reason, if filtered out

    @property
    def accepted(self):
        return self.rejected is None

    def describe(self):
        status = "ok" if self.accepted else f"rejected({self.rejected})"
        return (
            f"@{self.function} {self.kind}: predict ^{self.label_block} "
            f"from ^{self.start_block}, score={self.score:.2f} [{status}]"
        )


def _block_cost(block, cost_model):
    cost = 0.0
    for instr in block:
        if instr.opcode is Opcode.DELAY and instr.operands:
            cost += float(instr.operands[0].value)
        else:
            cost += cost_model.latency(instr.opcode)
    return cost


def _uniform_memory_ops(block, divergence):
    """Loads/stores through warp-uniform addresses (coalesced today)."""
    count = 0
    for instr in block:
        if instr.opcode in (Opcode.LD, Opcode.ST) and instr.operands:
            addr = instr.operands[0]
            if isinstance(addr, Imm) or (
                isinstance(addr, Reg) and not divergence.is_divergent(addr)
            ):
                count += 1
    return count


def _contains_warpsync(function, block_names):
    for name in block_names:
        for instr in function.block(name):
            if instr.opcode is Opcode.WARPSYNC:
                return True
    return False


def _preheader(view, loop, entry_name):
    """The unique out-of-loop predecessor of the loop header, else entry."""
    outside = [p for p in view.preds[loop.header] if p not in loop.body]
    if len(outside) == 1:
        return outside[0]
    return entry_name


class CostEstimator:
    """Static or profile-guided block cost and activity estimates."""

    def __init__(self, function, cost_model=None, profiler=None, trip=8):
        self.function = function
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.profiler = profiler
        self.trip = trip

    def region_cost(self, block_names, nest):
        """Aggregate cost of a block set.

        With a profiler: measured cycles. Statically: latency sums weighted
        by ``trip ** depth`` where depth comes from ``nest``.
        """
        total = 0.0
        for name in block_names:
            if self.profiler is not None:
                profile = self.profiler.block_profile(self.function.name, name)
                total += profile.cycles
            else:
                depth = nest.loop_depth(name)
                weight = float(self.trip) ** max(depth - 1, 0)
                total += _block_cost(self.function.block(name), self.cost_model) * weight
        return total

    def region_efficiency(self, block_names):
        """Measured SIMT efficiency of a region (1.0 without a profile)."""
        if self.profiler is None:
            return 0.0  # unknown; treat as poor so static mode can proceed
        keys = [(self.function.name, name) for name in block_names]
        return self.profiler.region_efficiency(keys)


def detect_candidates(
    function,
    cost_model=None,
    profiler=None,
    divergence=None,
    min_score=1.5,
    trip=8,
    memory_penalty=16.0,
    efficiency_cutoff=0.8,
):
    """Find and score SR candidates in one function."""
    view = CFGView.of_function(function)
    nest = compute_loops(view)
    divergence = divergence or DivergenceAnalysis(function)
    estimator = CostEstimator(
        function, cost_model=cost_model, profiler=profiler, trip=trip
    )
    entry_name = function.entry.name
    candidates = []

    # ------------------------------------------------------- Loop Merge
    for loop in nest:
        if loop.parent is None:
            continue
        exit_branches = [
            src
            for src, _ in loop.exit_edges(view)
            if divergence.is_divergent_branch(src)
        ]
        if not exit_branches:
            continue
        branch = exit_branches[0]
        in_loop_succs = [s for s in view.succs[branch] if s in loop.body]
        if not in_loop_succs:
            continue
        label_block = in_loop_succs[0]
        outer = loop.parent
        common = set(loop.body)
        serialized = outer.body - loop.body
        candidate = _score(
            function,
            KIND_LOOP_MERGE,
            start_block=_preheader(view, outer, entry_name),
            label_block=label_block,
            common=common,
            serialized=serialized,
            estimator=estimator,
            divergence=divergence,
            nest=nest,
            min_score=min_score,
            memory_penalty=memory_penalty,
            efficiency_cutoff=efficiency_cutoff,
        )
        candidates.append(candidate)

    # -------------------------------------------------- Iteration Delay
    for branch_name in sorted(divergence.divergent_branches):
        loop = nest.innermost_containing(branch_name)
        if loop is None:
            continue
        succs = view.succs[branch_name]
        if len(succs) != 2 or any(s not in loop.body for s in succs):
            continue  # loop-exit branches belong to Loop Merge
        from repro.analysis.dominators import compute_post_dominators

        join = compute_post_dominators(view).nearest_common_post_dominator(succs)
        side_costs = []
        for succ in succs:
            region = _side_region(view, branch_name, succ, loop, join=join)
            side_costs.append((estimator.region_cost(region, nest), succ, region))
        side_costs.sort(reverse=True, key=lambda item: item[0])
        (hi_cost, hi_block, hi_region), (lo_cost, lo_block, lo_region) = side_costs
        if hi_block == lo_block or not hi_region:
            continue
        if lo_cost * 3.0 > hi_cost:
            # Balanced if/else: the paths are *disjoint* work, not common
            # code arriving at different times — the first category of
            # Section 3, which SR cannot exploit.
            candidates.append(
                Candidate(
                    function=function.name,
                    kind=KIND_ITERATION_DELAY,
                    start_block=_preheader(view, loop, entry_name),
                    label_block=hi_block,
                    score=0.0,
                    common_cost=hi_cost,
                    serialized_cost=lo_cost,
                    rejected="balanced-paths",
                )
            )
            continue
        serialized = loop.body - hi_region - {branch_name}
        candidate = _score(
            function,
            KIND_ITERATION_DELAY,
            start_block=_preheader(view, loop, entry_name),
            label_block=hi_block,
            common=hi_region,
            serialized=serialized,
            estimator=estimator,
            divergence=divergence,
            nest=nest,
            min_score=min_score,
            memory_penalty=memory_penalty,
            efficiency_cutoff=efficiency_cutoff,
        )
        candidates.append(candidate)

    candidates.sort(key=lambda c: -c.score)
    return candidates


def _side_region(view, branch, succ, loop, join=None):
    """Blocks executed on one side of a branch, inside the loop, before
    rejoining the other side's territory.

    The branch's reconvergence point (``join``) is not a "side": an
    if-without-else has an empty else side, not the whole continuation.
    """
    if succ == join:
        return set()
    other = [s for s in view.succs[branch] if s != succ]
    blocked = set(other) | {branch}
    seen = set()
    frontier = [succ]
    while frontier:
        node = frontier.pop()
        if node in seen or node in blocked or node not in loop.body:
            continue
        seen.add(node)
        for nxt in view.succs[node]:
            frontier.append(nxt)
    # Remove blocks also reachable from the other side (shared join code).
    other_seen = set()
    frontier = list(other)
    while frontier:
        node = frontier.pop()
        if node in other_seen or node == branch or node not in loop.body:
            continue
        if node == succ:
            continue
        other_seen.add(node)
        for nxt in view.succs[node]:
            frontier.append(nxt)
    return seen - other_seen


def _score(
    function,
    kind,
    start_block,
    label_block,
    common,
    serialized,
    estimator,
    divergence,
    nest,
    min_score,
    memory_penalty,
    efficiency_cutoff,
):
    common_cost = estimator.region_cost(sorted(common), nest)
    serialized_cost = estimator.region_cost(sorted(serialized), nest)
    penalty = 0.0
    for name in sorted(serialized):
        penalty += memory_penalty * _uniform_memory_ops(
            function.block(name), divergence
        )
    denominator = serialized_cost + penalty + 1.0
    score = common_cost / denominator
    candidate = Candidate(
        function=function.name,
        kind=kind,
        start_block=start_block,
        label_block=label_block,
        score=score,
        common_cost=common_cost,
        serialized_cost=serialized_cost,
        memory_penalty=penalty,
    )
    if _contains_warpsync(function, sorted(common | serialized)):
        candidate.rejected = "warpsync"
    elif score < min_score:
        candidate.rejected = "unprofitable"
    elif estimator.profiler is not None:
        efficiency = estimator.region_efficiency(sorted(common))
        if efficiency > efficiency_cutoff:
            candidate.rejected = "already-efficient"
    return candidate


def annotate(function, candidate, name_hint=None, threshold=None):
    """Materialize an accepted candidate as a label + Predict directive."""
    label = name_hint or f"auto.{candidate.label_block}"
    target = function.block(candidate.label_block)
    target.attrs["label"] = label
    start = function.block(candidate.start_block)
    attrs = {"label": label, "origin": "auto"}
    if threshold is not None:
        attrs["threshold"] = int(threshold)
    start.insert_before_terminator(Instruction(Opcode.PREDICT, attrs=attrs))
    return label


def detect_and_annotate(module, max_per_function=1, auto_threshold=16, **options):
    """Run detection on every function; annotate the best candidates.

    Overlapping candidates (e.g. the conflicting levels of a triply nested
    loop, Section 4.5) are resolved best-score-first; lower-scoring
    candidates whose blocks overlap an accepted one are skipped.
    Returns every candidate considered (accepted and rejected).
    """
    all_candidates = []
    for function in module:
        candidates = detect_candidates(function, **options)
        accepted = 0
        claimed = set()
        for candidate in candidates:
            if not candidate.accepted:
                continue
            if accepted >= max_per_function:
                candidate.rejected = "per-function-limit"
                continue
            if candidate.label_block in claimed or candidate.start_block in claimed:
                candidate.rejected = "overlaps-better-candidate"
                continue
            annotate(function, candidate, threshold=auto_threshold)
            claimed.add(candidate.label_block)
            claimed.add(candidate.start_block)
            accepted += 1
        all_candidates.extend(candidates)
    return all_candidates
