"""Multi-warp launches and multiple concurrent predictions (Section 6)."""

import pytest

from repro.core import ReconvergenceCompiler, compile_baseline, compile_sr
from repro.frontend import compile_kernel_source
from repro.ir import verify_module
from repro.simt import WARP_SIZE, GPUMachine
from tests.helpers import loop_merge_source

MULTI_PREDICTION_SRC = """
kernel mp(n_tasks) {
    let acc = 0.0;
    let t = tid();
    predict L1;
    while (t < n_tasks) {
        let u = hash01(t * 1.9);
        let trips = floor(u * u * 16.0) + 1;
        let j = 0;
        while (j < trips) {
            label L1: acc = fma(acc, 1.0000001, 0.5);
            acc = fma(acc, 1.0000001, 0.5);
            acc = fma(acc, 1.0000001, 0.5);
            acc = fma(acc, 1.0000001, 0.5);
            j = j + 1;
        }
        predict L2;
        if (hash01(t * 7.7) < 0.3) {
            label L2: acc = fma(acc, 1.01, 0.25);
            acc = fma(acc, 1.01, 0.25);
            acc = fma(acc, 1.01, 0.25);
            acc = fma(acc, 1.01, 0.25);
            acc = fma(acc, 1.01, 0.25);
            acc = fma(acc, 1.01, 0.25);
        }
        t = t + 32;
    }
    store(tid(), acc);
}
"""


class TestMultiWarp:
    def test_warps_partition_threads(self):
        module = compile_kernel_source("kernel k() { store(tid(), warpid()); }")
        result = GPUMachine(module).launch("k", 100)
        assert result.memory.load(0) == 0
        assert result.memory.load(99) == 3

    def test_barriers_are_per_warp(self):
        # A full Loop Merge kernel across 4 warps: each warp synchronizes
        # independently; results still identical to baseline.
        module = compile_kernel_source(loop_merge_source())
        base = compile_baseline(module)
        sr = compile_sr(module)
        n = WARP_SIZE * 4
        a = GPUMachine(base.module).launch("lm", n, args=(n * 4,))
        b = GPUMachine(sr.module).launch("lm", n, args=(n * 4,))
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_multiwarp_efficiency_aggregates(self):
        module = compile_kernel_source(loop_merge_source())
        sr = compile_sr(module)
        one = GPUMachine(sr.module).launch("lm", WARP_SIZE, args=(WARP_SIZE * 4,))
        four = GPUMachine(sr.module).launch(
            "lm", WARP_SIZE * 4, args=(WARP_SIZE * 4 * 4,)
        )
        assert abs(one.simt_efficiency - four.simt_efficiency) < 0.15

    def test_kernel_time_is_slowest_warp(self):
        module = compile_kernel_source(loop_merge_source())
        sr = compile_sr(module)
        result = GPUMachine(sr.module).launch("lm", WARP_SIZE * 2, args=(128,))
        assert result.cycles == max(result.profiler.warp_cycles.values())

    def test_partial_last_warp(self):
        module = compile_kernel_source("kernel k() { store(tid(), 1.0); }")
        result = GPUMachine(module).launch("k", 40)
        assert sum(result.memory.snapshot().values()) == 40

    def test_cross_warp_atomics(self):
        module = compile_kernel_source(
            "kernel k() { let t = atomadd(0, 1); store(100 + t, 1.0); }"
        )
        result = GPUMachine(module).launch("k", 96)
        assert result.memory.load(0) == 96
        assert all(result.memory.load(100 + i) == 1.0 for i in range(96))


class TestConcurrentPredictions:
    """Section 6: "Our method can also support multiple concurrent
    predictions within a region. If these predictions are exclusive, they
    can be supported using deconfliction."""

    @pytest.fixture(scope="class")
    def compiled(self):
        module = compile_kernel_source(MULTI_PREDICTION_SRC)
        return module, ReconvergenceCompiler().compile(module, mode="sr")

    def test_both_predictions_processed(self, compiled):
        _, prog = compiled
        assert len(prog.report.predictions) == 2
        assert len(prog.report.sr_reports) == 2
        assert verify_module(prog.module)

    def test_runs_without_deadlock_and_matches_baseline(self, compiled):
        module, prog = compiled
        base = ReconvergenceCompiler().compile(module, mode="baseline")
        a = GPUMachine(base.module).launch("mp", 32, args=(128,))
        b = GPUMachine(prog.module).launch("mp", 32, args=(128,))
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_deconfliction_covers_sr_vs_sr(self, compiled):
        _, prog = compiled
        # At least one deconfliction report mentions conflicts; the
        # machinery resolved whatever overlapped.
        conflicts = [
            c
            for report in prog.report.deconfliction_reports
            for c in report.conflicts
        ]
        assert conflicts  # L1/L2 regions overlap with pdom and each other

    def test_soft_thresholds_apply_to_both(self):
        module = compile_kernel_source(MULTI_PREDICTION_SRC)
        prog = ReconvergenceCompiler().compile(module, mode="sr", threshold=8)
        from repro.ir import Opcode

        soft = [
            i
            for _, _, i in prog.module.function("mp").instructions()
            if i.opcode is Opcode.BSYNCSOFT
        ]
        assert len(soft) == 2

    def test_multiwarp_multiprediction(self):
        module = compile_kernel_source(MULTI_PREDICTION_SRC)
        base = ReconvergenceCompiler().compile(module, mode="baseline")
        sr = ReconvergenceCompiler().compile(module, mode="sr")
        n = WARP_SIZE * 3
        a = GPUMachine(base.module).launch("mp", n, args=(n * 3,))
        b = GPUMachine(sr.module).launch("mp", n, args=(n * 3,))
        assert a.memory.snapshot() == b.memory.snapshot()
