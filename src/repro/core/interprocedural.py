"""Interprocedural Speculative Reconvergence (Section 4.4).

Handles ``Predict(@foo)``: a function body eventually executed by every
thread in the warp, but reached from different call sites (Figure 2c). The
reconvergence point is the callee's entry; the barrier is joined in the
caller, waited on inside the callee, and canceled when a thread can no
longer reach any call site.

"Speculatively reconverging within the divergent function call rather than
at the post-dominator block of the divergent condition does not adversely
affect performance because there are no prolog/epilog sections" — the only
cost is the extra barrier instructions.

Functions called from multiple independent regions should first be hidden
behind a wrapper (:func:`make_wrapper`), which then acts as the
reconvergence point, exactly as the paper prescribes for extern functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import call_graph
from repro.analysis.cfg_utils import CFGView, can_reach, reachable_from
from repro.analysis.dominators import compute_post_dominators
from repro.core.primitives import (
    BarrierNamer,
    cancel_barrier,
    join_barrier,
    rejoin_barrier,
    wait_barrier,
    wait_barrier_soft,
)
from repro.errors import TransformError
from repro.ir.instructions import FuncRef, Instruction, Opcode

ORIGIN = "sr-interproc"


@dataclass
class InterproceduralReport:
    barrier: str = None
    exit_barrier: str = None
    callee: str = None
    caller: str = None
    threshold: int = None
    region_blocks: set = field(default_factory=set)
    cancel_blocks: list = field(default_factory=list)
    exit_wait_block: str = None


def _call_blocks(function, callee):
    """Caller blocks containing a direct call to ``callee``."""
    blocks = []
    for block in function.blocks:
        for instr in block:
            if instr.opcode is Opcode.CALL and instr.operands:
                target = instr.operands[0]
                if isinstance(target, FuncRef) and target.name == callee:
                    blocks.append(block.name)
                    break
    return blocks


def insert_interprocedural_sr(module, function, prediction, namer=None):
    """Apply Section 4.4 for one ``Predict(@callee)`` (in place)."""
    namer = namer or BarrierNamer()
    callee_name = prediction.callee
    callee = module.function(callee_name)
    call_sites = _call_blocks(function, callee_name)
    if not call_sites:
        raise TransformError(
            f"@{function.name}: Predict(@{callee_name}) but no call sites"
        )

    report = InterproceduralReport(
        callee=callee_name,
        caller=function.name,
        threshold=prediction.threshold,
    )
    barrier = namer.fresh()
    exit_barrier = namer.fresh()
    report.barrier = barrier
    report.exit_barrier = exit_barrier

    view = CFGView.of_function(function)
    region = reachable_from(view, prediction.region_block) & can_reach(
        view, call_sites
    )
    region |= {prediction.region_block}
    report.region_blocks = set(region)

    # Join in the caller at the directive site.
    directive_block = function.block(prediction.region_block)
    index = None
    for i, instr in enumerate(directive_block.instructions):
        if instr is prediction.directive:
            index = i
            break
    if index is None:
        index = min(prediction.region_index, len(directive_block.instructions) - 1)
    directive_block.instructions[index : index + 1] = [
        join_barrier(exit_barrier, ORIGIN),
        join_barrier(barrier, ORIGIN),
    ]

    # Wait (and rejoin, for repeated calls) at the callee entry.
    entry = callee.entry
    if prediction.threshold is not None:
        wait = wait_barrier_soft(barrier, prediction.threshold, ORIGIN)
    else:
        wait = wait_barrier(barrier, ORIGIN)
    entry.prepend(wait)
    entry.insert(1, rejoin_barrier(barrier, ORIGIN))

    # Cancels on edges leaving the can-still-call region.
    cancel_targets = []
    for src in sorted(region):
        for dst in view.succs[src]:
            if dst not in region and dst not in cancel_targets:
                cancel_targets.append(dst)
    for name in cancel_targets:
        function.block(name).prepend(cancel_barrier(barrier, ORIGIN))
        report.cancel_blocks.append(name)

    # Region-exit convergence barrier in the caller.
    pdom = compute_post_dominators(view)
    post = pdom.nearest_common_post_dominator(sorted(region))
    while post is not None and post in region:
        post = pdom.ipdom(post)
    if post is not None:
        exit_block = function.block(post)
        insert_at = 0
        while insert_at < len(exit_block.instructions) and (
            exit_block.instructions[insert_at].opcode is Opcode.BBREAK
        ):
            insert_at += 1
        exit_block.insert(insert_at, wait_barrier(exit_barrier, ORIGIN))
        report.exit_wait_block = post
    else:
        directive_block.instructions = [
            i
            for i in directive_block.instructions
            if not (
                i.opcode is Opcode.BSSY
                and i.operands
                and getattr(i.operands[0], "name", None) == exit_barrier
            )
        ]
        report.exit_barrier = None

    return report


def make_wrapper(module, callee_name, wrapper_name=None, redirect_in=None):
    """Wrap ``callee`` so the wrapper entry is a single reconvergence point.

    "The programmer or the compiler must move calls to extern functions
    into a wrapper function body which acts as the required reconvergence
    point. The wrapper function may also be used for functions that are
    called from within multiple independent regions of the program."

    Args:
        redirect_in: function names whose call sites should be redirected
            to the wrapper (default: every caller).
    Returns the wrapper :class:`~repro.ir.Function`.
    """
    from repro.ir.function import Function

    callee = module.function(callee_name)
    wrapper_name = wrapper_name or f"{callee_name}.wrap"
    if wrapper_name in module.functions:
        raise TransformError(f"wrapper @{wrapper_name} already exists")
    params = [callee.new_reg(f"w{i}") for i in range(len(callee.params))]
    wrapper = Function(wrapper_name, params=params, is_kernel=False)
    entry = wrapper.new_block("entry")
    result = wrapper.new_reg("r")
    entry.append(
        Instruction(
            Opcode.CALL,
            dst=result,
            operands=[FuncRef(callee_name)] + list(params),
        )
    )
    entry.append(Instruction(Opcode.RET, operands=[result]))
    module.add(wrapper)

    graph = call_graph(module)
    for caller_name, block_name, index in graph.all_sites_of(callee_name):
        if caller_name == wrapper_name:
            continue
        if redirect_in is not None and caller_name not in redirect_in:
            continue
        caller = module.function(caller_name)
        instr = caller.block(block_name).instructions[index]
        instr.operands[0] = FuncRef(wrapper_name)
    return wrapper
