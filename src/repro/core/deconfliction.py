"""Deconfliction strategies (Section 4.3, Figure 5).

When a Speculative Reconvergence barrier conflicts with a compiler-inserted
PDOM barrier, threads may end up waiting for each other at two different
points — in this simulator that is an actual cross-barrier deadlock (see
``tests/test_deconfliction.py``). Two remedies:

* **static** — delete every operation of the conflicting PDOM barrier
  (Figure 5b). Cheapest at runtime, but if the predicted convergence point
  is rarely entered, the program loses its original reconvergence.
* **dynamic** — keep everything; threads about to wait on the SR barrier
  first withdraw from the conflicting barrier (Figure 5c), removing the
  conflict only on executions that actually reach the convergence point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.conflicts import ConflictAnalysis, Conflict, literal_barriers
from repro.core.joined_barriers import JoinedBarriers
from repro.core.primitives import barrier_name_of, cancel_barrier, is_wait
from repro.errors import DeconflictionError
from repro.ir.instructions import BARRIER_OPS, FuncRef, Opcode

ORIGIN = "deconflict"

STATIC = "static"
DYNAMIC = "dynamic"


@dataclass
class DeconflictionReport:
    strategy: str = DYNAMIC
    conflicts: list = field(default_factory=list)       # Conflict records
    removed_barriers: list = field(default_factory=list)
    cancels_inserted: list = field(default_factory=list)  # (block, barrier)

    def describe(self):
        if not self.conflicts:
            return "no conflicts"
        lines = [f"strategy={self.strategy}"]
        lines += [c.describe() for c in self.conflicts]
        return "; ".join(lines)


def _barrier_origin(function, barrier):
    """Origin attr of the ops defining ``barrier`` ('sr', 'pdom', ...)."""
    for _, _, instr in function.instructions():
        if instr.opcode in BARRIER_OPS and barrier_name_of(instr) == barrier:
            origin = instr.attrs.get("origin")
            if origin:
                return origin
    return "unknown"


def remove_barrier_ops(function, barrier):
    """Delete every op referencing ``barrier`` (static deconfliction)."""
    removed = 0
    for block in function.blocks:
        kept = []
        for instr in block.instructions:
            if (
                instr.opcode in BARRIER_OPS
                and barrier_name_of(instr) == barrier
            ):
                removed += 1
                continue
            kept.append(instr)
        block.instructions = kept
    return removed


def _insert_cancels_before_waits(function, sr_barrier, victim, report):
    """Dynamic deconfliction: withdraw from ``victim`` before each wait on
    ``sr_barrier`` (Figure 5c)."""
    for block in function.blocks:
        index = 0
        while index < len(block.instructions):
            instr = block.instructions[index]
            if is_wait(instr) and barrier_name_of(instr) == sr_barrier:
                previous = block.instructions[index - 1] if index else None
                already = (
                    previous is not None
                    and previous.opcode.value == "bbreak"
                    and barrier_name_of(previous) == victim
                )
                if not already:
                    block.insert(index, cancel_barrier(victim, ORIGIN))
                    report.cancels_inserted.append((block.name, victim))
                    index += 1
            index += 1


def _call_sites(function, callee):
    """(block, index) of each direct call to ``callee`` in ``function``."""
    sites = []
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            if (
                instr.opcode is Opcode.CALL
                and instr.operands
                and isinstance(instr.operands[0], FuncRef)
                and instr.operands[0].name == callee
            ):
                sites.append((block, index))
    return sites


def deconflict_interprocedural(
    function, barrier, callee, exit_barrier=None, strategy=DYNAMIC
):
    """Resolve conflicts with a *soft* interprocedural SR barrier.

    ``barrier``'s wait sits at ``callee``'s entry, so the intra-function
    conflict analysis never sees it — its caller-side joined range is not
    truncated at the wait and every overlap looks inclusive. Dynamically
    the call instruction *is* the wait point: a thread parks inside the
    callee while still a member of every barrier joined at the call site.
    With a soft threshold that deadlocks — the parked pool can sit under
    threshold while the members needed to reach it (or to trigger the
    parked == members escape, which they defeat by rejoining after their
    own release) are parked behind a conflicting barrier's wait.

    The remedy mirrors Figure 5c with the call site standing in for the
    wait: withdraw from every barrier still joined at a call to ``callee``
    immediately before the call (dynamic), or delete the victim's ops
    (static). Hard interprocedural waits are left untouched: every member
    either returns to a call site or withdraws through the region-exit
    cancels, so parked == members always fires — the paper's observation
    that the Figure 2(c) pattern "does not conflict with the compiler
    inserted reconvergence point". ``exit_barrier`` (the same prediction's
    region-exit barrier) is exempt for the same reason: the region-exit
    cancels keep the SR membership inside the region.
    """
    if strategy not in (STATIC, DYNAMIC):
        raise DeconflictionError(f"unknown deconfliction strategy {strategy!r}")
    report = DeconflictionReport(strategy=strategy)
    joined = JoinedBarriers(function)
    exempt = {barrier, exit_barrier}
    victims = []
    shared_counts = {}
    for block, index in _call_sites(function, callee):
        for name in joined.joined_before(block, index):
            if name in exempt:
                continue
            shared_counts[name] = shared_counts.get(name, 0) + 1
            if name not in victims:
                victims.append(name)
    # First-use order keeps the inserted cancel sequence deterministic.
    order = {name: i for i, name in enumerate(literal_barriers(function))}
    victims.sort(key=lambda name: order.get(name, len(order)))
    for victim in victims:
        report.conflicts.append(
            Conflict(
                first=barrier,
                second=victim,
                shared_points=shared_counts[victim],
                only_first=1,  # the callee-side wait, outside this function
                only_second=len(joined.joined_points(victim))
                - shared_counts[victim],
            )
        )
    if not victims:
        return report
    if strategy == STATIC:
        for victim in victims:
            removed = remove_barrier_ops(function, victim)
            if removed:
                report.removed_barriers.append(victim)
        return report
    for block in function.blocks:
        index = 0
        while index < len(block.instructions):
            instr = block.instructions[index]
            if (
                instr.opcode is Opcode.CALL
                and instr.operands
                and isinstance(instr.operands[0], FuncRef)
                and instr.operands[0].name == callee
            ):
                here = joined.joined_before(block, index)
                for victim in victims:
                    if victim not in here:
                        continue
                    block.insert(index, cancel_barrier(victim, ORIGIN))
                    report.cancels_inserted.append((block.name, victim))
                    index += 1
            index += 1
    return report


def deconflict(function, sr_barriers, strategy=DYNAMIC):
    """Resolve conflicts between SR barriers and any other barriers.

    Args:
        sr_barriers: barrier names inserted by the SR pass (they have
            priority: "user-specified convergence hints should receive
            priority over any standard GPU convergence synchronization").
        strategy: ``"static"`` or ``"dynamic"``.
    Returns a :class:`DeconflictionReport`.
    """
    if strategy not in (STATIC, DYNAMIC):
        raise DeconflictionError(f"unknown deconfliction strategy {strategy!r}")
    report = DeconflictionReport(strategy=strategy)
    analysis = ConflictAnalysis(function)
    relevant = [
        c for c in analysis.conflicts if any(c.involves(b) for b in sr_barriers)
    ]
    report.conflicts = relevant
    for conflict in relevant:
        sr_side = conflict.first if conflict.first in sr_barriers else conflict.second
        victim = conflict.other(sr_side)
        if victim in sr_barriers:
            # Two user predictions conflict with each other: dynamic
            # deconfliction still applies (Section 6, "multiple concurrent
            # predictions ... can be supported using deconfliction").
            _insert_cancels_before_waits(function, sr_side, victim, report)
            continue
        if strategy == STATIC:
            removed = remove_barrier_ops(function, victim)
            if removed:
                report.removed_barriers.append(victim)
        else:
            _insert_cancels_before_waits(function, sr_side, victim, report)
    return report
