"""IR verifier violation tests."""

import pytest

from repro.errors import VerifierError
from repro.ir import (
    BlockRef,
    FuncRef,
    Function,
    Imm,
    Instruction,
    Module,
    Opcode,
    Reg,
    make,
    verify_function,
    verify_module,
)
from tests.helpers import listing1_module


def _kernel_with(instructions):
    fn = Function("f", is_kernel=True)
    block = fn.new_block("entry")
    for instr in instructions:
        block.instructions.append(instr)  # bypass append() checks on purpose
    return fn


class TestStructure:
    def test_valid_listing1_verifies(self):
        assert verify_module(listing1_module())

    def test_empty_function_rejected(self):
        with pytest.raises(VerifierError):
            verify_function(Function("f"))

    def test_empty_block_rejected(self):
        fn = Function("f")
        fn.new_block("entry")
        with pytest.raises(VerifierError, match="empty block"):
            verify_function(fn)

    def test_missing_terminator_rejected(self):
        fn = _kernel_with([Instruction(Opcode.NOP)])
        with pytest.raises(VerifierError, match="terminator"):
            verify_function(fn)

    def test_terminator_midblock_rejected(self):
        fn = _kernel_with([Instruction(Opcode.EXIT), Instruction(Opcode.NOP), Instruction(Opcode.EXIT)])
        with pytest.raises(VerifierError, match="not at block end"):
            verify_function(fn)

    def test_unknown_branch_target_rejected(self):
        fn = _kernel_with([make(Opcode.BRA, None, BlockRef("ghost"))])
        with pytest.raises(VerifierError, match="unknown block"):
            verify_function(fn)

    def test_unknown_callee_rejected_with_module(self):
        module = Module("m")
        fn = _kernel_with(
            [make(Opcode.CALL, Reg("r"), FuncRef("ghost")), Instruction(Opcode.EXIT)]
        )
        module.add(fn)
        with pytest.raises(VerifierError, match="unknown function"):
            verify_module(module)


class TestOperandShapes:
    def test_binary_arity_enforced(self):
        fn = _kernel_with(
            [make(Opcode.ADD, Reg("d"), Reg("a")), Instruction(Opcode.EXIT)]
        )
        with pytest.raises(VerifierError, match="expects 2 operands"):
            verify_function(fn, check_defs=False)

    def test_dst_required_for_value_ops(self):
        fn = _kernel_with(
            [make(Opcode.ADD, None, Reg("a"), Reg("b")), Instruction(Opcode.EXIT)]
        )
        with pytest.raises(VerifierError, match="must define"):
            verify_function(fn, check_defs=False)

    def test_dst_forbidden_for_stores(self):
        fn = _kernel_with(
            [make(Opcode.ST, Reg("d"), Reg("a"), Reg("v")), Instruction(Opcode.EXIT)]
        )
        with pytest.raises(VerifierError, match="must not define"):
            verify_function(fn, check_defs=False)

    def test_bra_target_must_be_block(self):
        fn = _kernel_with([make(Opcode.BRA, None, Reg("x"))])
        with pytest.raises(VerifierError):
            verify_function(fn, check_defs=False)

    def test_cbr_targets_must_be_blocks(self):
        fn = _kernel_with([make(Opcode.CBR, None, Reg("p"), Reg("x"), BlockRef("entry"))])
        with pytest.raises(VerifierError, match="cbr targets"):
            verify_function(fn, check_defs=False)

    def test_barrier_needs_barrier_operand(self):
        fn = _kernel_with(
            [make(Opcode.BSSY, None, Imm(3)), Instruction(Opcode.EXIT)]
        )
        with pytest.raises(VerifierError, match="barrier"):
            verify_function(fn, check_defs=False)

    def test_ret_at_most_one_operand(self):
        fn = _kernel_with([make(Opcode.RET, None, Reg("a"), Reg("b"))])
        with pytest.raises(VerifierError):
            verify_function(fn, check_defs=False)

    def test_call_optional_dst_ok(self):
        module = Module("m")
        helper = Function("h")
        block = helper.new_block("entry")
        block.append(Instruction(Opcode.RET))
        module.add(helper)
        fn = _kernel_with(
            [make(Opcode.CALL, None, FuncRef("h")), Instruction(Opcode.EXIT)]
        )
        module.add(fn)
        assert verify_module(module, check_defs=False)


class TestDefBeforeUse:
    def test_use_before_def_rejected(self):
        fn = _kernel_with(
            [
                make(Opcode.ADD, Reg("d"), Reg("undefined"), Imm(1)),
                Instruction(Opcode.EXIT),
            ]
        )
        with pytest.raises(VerifierError, match="used before any definition"):
            verify_function(fn)

    def test_def_on_one_path_only_rejected(self):
        fn = Function("f", is_kernel=True)
        entry = fn.new_block("entry")
        then_block = fn.new_block("then")
        join = fn.new_block("join")
        p = fn.new_reg("p")
        entry.append(make(Opcode.TID, p))
        entry.append(make(Opcode.CBR, None, p, BlockRef("then"), BlockRef("join")))
        x = fn.new_reg("x")
        then_block.append(make(Opcode.CONST, x, Imm(1)))
        then_block.append(make(Opcode.BRA, None, BlockRef("join")))
        join.append(make(Opcode.ST, None, p, x))  # x undefined on else path
        join.append(Instruction(Opcode.EXIT))
        with pytest.raises(VerifierError, match="%x"):
            verify_function(fn)

    def test_loop_carried_defs_accepted(self):
        from tests.helpers import loop_function

        module, fn = loop_function()
        assert verify_function(fn)

    def test_params_count_as_defined(self):
        fn = Function("f", params=[Reg("a")])
        block = fn.new_block("entry")
        block.append(make(Opcode.RET, None, Reg("a")))
        assert verify_function(fn)
