"""Pre-Volta stack-based reconvergence execution (Section 2).

"Pre-Volta GPUs use a stack based mechanism to handle nested control
divergence" — a per-warp stack of (active lanes, PC, reconvergence PC)
entries. Only the top entry executes; a divergent branch pushes one entry
per outcome with the branch's immediate post-dominator as the
reconvergence PC; when the top entry reaches its reconvergence PC it pops,
implicitly merging with the entry below.

This machine ignores convergence-barrier instructions (``bssy``/``bsync``/
``bbreak`` are architectural no-ops here): reconvergence is *structural*,
decided entirely by the stack. That is exactly why Speculative
Reconvergence requires Volta's independent thread scheduling — compiling
with SR annotations changes nothing on this machine, which
``benchmarks/bench_stack_vs_its.py`` demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg_utils import CFGView
from repro.analysis.dominators import compute_post_dominators
from repro.errors import LaunchError, SimulationError
from repro.ir.instructions import Opcode
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.events import ReconvergeEvent
from repro.obs.metrics import LaunchMetrics
from repro.obs.sinks import ambient_sink
from repro.simt.costs import DEFAULT_COST_MODEL
from repro.simt.executor import Executor
from repro.simt.machine import (
    DEFAULT_MAX_ISSUES,
    LaunchResult,
    _fold_launch_counters,
)
from repro.simt.memory import GlobalMemory
from repro.simt.profiler import Profiler
from repro.simt.warp import WARP_SIZE, Thread, Warp


@dataclass
class _StackEntry:
    """(active lanes, reconvergence point) — the PC lives in the threads,
    which execute in lockstep within an entry. ``parent`` is the
    reconvergence entry the lanes merge back into at the rpc."""

    lanes: set
    rpc: object = None        # (function, block) reconvergence point or None
    label: str = "entry"
    parent: object = None     # the reconvergence _StackEntry

    def describe(self):
        return f"<{self.label} lanes={sorted(self.lanes)} rpc={self.rpc}>"


class _ReconvergenceTable:
    """Per-function branch -> reconvergence block map (immediate pdom)."""

    def __init__(self, module):
        self._table = {}
        for function in module:
            view = CFGView.of_function(function)
            pdom = compute_post_dominators(view)
            for block in function.blocks:
                term = block.terminator
                if term is not None and term.opcode is Opcode.CBR:
                    self._table[(function.name, block.name)] = (
                        pdom.branch_reconvergence_point(block.name, view)
                    )

    def reconvergence_of(self, function_name, block_name):
        return self._table.get((function_name, block_name))


class StackGPUMachine:
    """Executes kernels with stack-based (pre-Volta) reconvergence."""

    def __init__(self, module, cost_model=None, seed=2020,
                 max_issues=DEFAULT_MAX_ISSUES, trace=False, sink=None,
                 metrics=False, fastpath=None, segments=None):
        self.module = module
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.seed = seed
        self.max_issues = max_issues
        self.trace = trace
        self.sink = sink
        self.metrics = metrics
        # None defers to the global repro.simt.fastpath default.
        self.fastpath = fastpath
        # Accepted for API symmetry with GPUMachine; the stack machine's
        # lockstep loop never fuses, so this only reaches the Executor.
        self.segments = segments
        self._rpcs = _ReconvergenceTable(module)

    def launch(self, kernel_name, n_threads, args=(), memory=None):
        kernel = self.module.function(kernel_name)
        if not kernel.is_kernel:
            raise LaunchError(f"@{kernel_name} is not a kernel")
        if n_threads <= 0:
            raise LaunchError("launch needs at least one thread")
        if len(args) != len(kernel.params):
            raise LaunchError(
                f"@{kernel_name} takes {len(kernel.params)} arguments"
            )
        memory = memory if memory is not None else GlobalMemory()
        profiler = Profiler(trace=self.trace)
        metrics = LaunchMetrics() if self.metrics else None
        profiler.metrics = metrics
        sink = self.sink if self.sink is not None else ambient_sink()
        executor = Executor(
            self.module, memory, self.cost_model, profiler,
            sink=sink, metrics=metrics, fastpath=self.fastpath,
            segments=self.segments,
        )

        all_threads = []
        issues = 0
        try:
            for base in range(0, n_threads, WARP_SIZE):
                warp_id = base // WARP_SIZE
                threads = [
                    Thread(tid, tid - base, warp_id, kernel, args, self.seed)
                    for tid in range(base, min(base + WARP_SIZE, n_threads))
                ]
                warp = Warp(warp_id, threads)
                all_threads.extend(threads)
                issues += self._run_warp(warp, executor)
                if issues > self.max_issues:
                    raise LaunchError(
                        f"@{kernel_name} exceeded {self.max_issues} issue "
                        "slots; likely an infinite loop"
                    )
        except SimulationError:
            # Same death rites as GPUMachine: account the failure and
            # finalize the sink so a file-backed partial trace survives.
            ENGINE_COUNTERS.launch_errors += 1
            if sink is not None:
                try:
                    sink.close()
                except Exception:  # pragma: no cover
                    pass
            raise

        counters = profiler.engine_counters()
        _fold_launch_counters(counters)
        ENGINE_COUNTERS.launch_count += 1
        return LaunchResult(
            kernel=kernel_name,
            n_threads=n_threads,
            profiler=profiler,
            memory=memory,
            threads=all_threads,
            counters=counters,
        )

    # ------------------------------------------------------------------
    def _run_warp(self, warp, executor):
        stack = [_StackEntry(lanes={t.lane for t in warp.threads}, rpc=None)]
        issues = 0
        while stack:
            entry = stack[-1]
            entry.lanes = {
                lane for lane in entry.lanes if not warp.threads[lane].is_exited
            }
            if not entry.lanes:
                stack.pop()
                continue
            group = [warp.threads[lane] for lane in sorted(entry.lanes)]
            pc = group[0].pc()
            for thread in group[1:]:
                if thread.pc() != pc:
                    raise SimulationError(
                        f"stack machine lost lockstep: {thread.pc()} vs {pc} "
                        f"in {entry.describe()}"
                    )
            function_name, block_name, index = pc
            # Reconvergence: the top entry reached its rpc -> pop & merge.
            if (
                entry.rpc is not None
                and (function_name, block_name) == entry.rpc
                and index == 0
                and entry.parent is not None
            ):
                stack.pop()
                entry.parent.lanes |= entry.lanes
                if executor.sink.enabled:
                    # Structural reconvergence: the popped entry's lanes
                    # merge with the parent at the reconvergence PC.
                    executor.sink.emit(
                        ReconvergeEvent(
                            warp_id=warp.warp_id,
                            function=function_name,
                            block=block_name,
                            ts=warp.cycles,
                            lanes=frozenset(entry.parent.lanes),
                        )
                    )
                continue

            instr = executor.fetch(pc)
            if instr.opcode is Opcode.CBR:
                issues += 1
                executor.execute(warp, pc, group)
                taken = {}
                for thread in group:
                    target = thread.pc()[1]
                    taken.setdefault(target, set()).add(thread.lane)
                if len(taken) > 1:
                    rpc_block = self._rpcs.reconvergence_of(
                        function_name, block_name
                    )
                    rpc = (
                        (function_name, rpc_block)
                        if rpc_block is not None
                        else None
                    )
                    # The current entry becomes the reconvergence entry;
                    # push one entry per outcome (not-taken first, so the
                    # taken path executes first, matching hardware).
                    outcomes = sorted(taken.items())
                    for target, lanes in outcomes:
                        stack.append(
                            _StackEntry(
                                lanes=lanes, rpc=rpc, label=target, parent=entry
                            )
                        )
                    entry.lanes = set()
                continue

            if instr.is_barrier_op or instr.opcode is Opcode.WARPSYNC:
                # Pre-Volta: convergence barriers do not exist; skip the
                # instruction without charging an issue slot beyond NOP.
                for thread in group:
                    if instr.dst is not None:
                        # barcnt/bmov still define a value; give a benign 0
                        thread.frame.write(instr.dst, 0)
                    thread.advance()
                continue

            issues += 1
            executor.execute(warp, pc, group)
            if issues > self.max_issues:
                raise LaunchError(
                    f"warp {warp.warp_id} exceeded {self.max_issues} issue "
                    "slots; likely an infinite loop"
                )
        return issues
