"""Kernel-language AST.

Workloads and examples describe kernels in a small structured language —
either built programmatically with these node constructors or parsed from
the textual form (:mod:`repro.frontend.parser`). The AST carries the
paper's two annotations natively:

* ``Predict("L1")`` / ``Predict("@foo")`` — the Section 4.1 directive,
* ``Label("L1", stmt)`` — the predicted reconvergence point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Node:
    """Base class for all AST nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expr(Node):
    pass


@dataclass
class Num(Expr):
    value: object  # int or float


@dataclass
class Var(Expr):
    name: str


@dataclass
class Bin(Expr):
    op: str        # + - * / % < <= > >= == != and or min max shl shr xor
    left: Expr
    right: Expr


@dataclass
class Un(Expr):
    op: str        # - ! floor sqrt sin cos exp log abs
    operand: Expr


@dataclass
class CallExpr(Expr):
    """Intrinsic or user-function call.

    Intrinsics: ``tid() lane() warpid() rand() ld(addr)
    atomadd(addr, v) fma(a, b, c) hash01(x) min(a,b) max(a,b)``.
    Anything else resolves to a user function in the same program.
    """

    name: str
    args: list = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list = field(default_factory=list)


@dataclass
class Let(Stmt):
    """Declare (or redeclare) a variable in the current function scope."""

    name: str
    value: Expr


@dataclass
class Assign(Stmt):
    name: str
    value: Expr


@dataclass
class Store(Stmt):
    address: Expr
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Block


@dataclass
class For(Stmt):
    """``for var in start..stop`` — half-open, step 1."""

    var: str
    start: Expr
    stop: Expr
    body: Block


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Label(Stmt):
    """Attach a reconvergence label to the start of a statement."""

    name: str
    statement: Stmt


@dataclass
class Predict(Stmt):
    """Section 4.1 directive. ``target`` is a label name or ``"@func"``;
    ``threshold`` turns the prediction into a soft barrier (Section 4.6)."""

    target: str
    threshold: Optional[int] = None


@dataclass
class Warpsync(Stmt):
    pass


@dataclass
class Ctasync(Stmt):
    """CTA-wide barrier: every live thread of the CTA must arrive."""


@dataclass
class DelayStmt(Stmt):
    """A fixed-latency placeholder (e.g. a modeled texture fetch)."""

    cycles: int


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------
@dataclass
class FuncDecl(Node):
    name: str
    params: list
    body: Block
    is_kernel: bool = False


@dataclass
class Program(Node):
    functions: list = field(default_factory=list)

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Construction helpers (the Python-side DSL)
# ---------------------------------------------------------------------------
def num(value):
    return Num(value)


def var(name):
    return Var(name)


def _expr(value):
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Num(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


def bin_(op, left, right):
    return Bin(op, _expr(left), _expr(right))


def add(a, b):
    return bin_("+", a, b)


def sub(a, b):
    return bin_("-", a, b)


def mul(a, b):
    return bin_("*", a, b)


def div(a, b):
    return bin_("/", a, b)


def mod(a, b):
    return bin_("%", a, b)


def lt(a, b):
    return bin_("<", a, b)


def le(a, b):
    return bin_("<=", a, b)


def gt(a, b):
    return bin_(">", a, b)


def ge(a, b):
    return bin_(">=", a, b)


def eq(a, b):
    return bin_("==", a, b)


def ne(a, b):
    return bin_("!=", a, b)


def call(name, *args):
    return CallExpr(name, [_expr(a) for a in args])


def block(*statements):
    return Block(list(statements))


def let(name, value):
    return Let(name, _expr(value))


def assign(name, value):
    return Assign(name, _expr(value))


def store(address, value):
    return Store(_expr(address), _expr(value))


def if_(cond, then_body, else_body=None):
    return If(_expr(cond), then_body, else_body)


def while_(cond, body):
    return While(_expr(cond), body)


def for_(var_name, start, stop, body):
    return For(var_name, _expr(start), _expr(stop), body)


def label(name, statement):
    return Label(name, statement)


def predict(target, threshold=None):
    return Predict(target, threshold)
