"""Unit tests for basic blocks, functions, and modules."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BasicBlock,
    BlockRef,
    Function,
    Instruction,
    Module,
    Opcode,
    Reg,
    count_static_instructions,
    make,
)


def _bra(target):
    return make(Opcode.BRA, None, BlockRef(target))


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.EXIT))
        with pytest.raises(IRError):
            block.append(Instruction(Opcode.NOP))

    def test_terminator_none_when_open(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.NOP))
        assert block.terminator is None

    def test_insert_terminator_midblock_rejected(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.NOP))
        with pytest.raises(IRError):
            block.insert(0, Instruction(Opcode.EXIT))

    def test_insert_before_terminator(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.EXIT))
        block.insert_before_terminator(Instruction(Opcode.NOP))
        assert block.instructions[0].opcode is Opcode.NOP
        assert block.terminator.opcode is Opcode.EXIT

    def test_prepend(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.EXIT))
        block.prepend(Instruction(Opcode.NOP))
        assert block.instructions[0].opcode is Opcode.NOP

    def test_index_of_uses_identity(self):
        block = BasicBlock("b")
        first = block.append(Instruction(Opcode.NOP))
        second = block.append(Instruction(Opcode.NOP))
        assert block.index_of(first) == 0
        assert block.index_of(second) == 1

    def test_successor_names_from_cbr(self):
        block = BasicBlock("b")
        block.append(make(Opcode.CBR, None, Reg("p"), BlockRef("x"), BlockRef("y")))
        assert block.successor_names() == ["x", "y"]

    def test_label_attr(self):
        block = BasicBlock("b", attrs={"label": "L1"})
        assert block.label == "L1"

    def test_count_static_instructions_skips_markers(self):
        block = BasicBlock("b")
        block.append(Instruction(Opcode.NOP))
        block.append(Instruction(Opcode.PREDICT, attrs={"label": "L"}))
        block.append(Instruction(Opcode.EXIT))
        assert count_static_instructions([block]) == 1


class TestFunction:
    def test_entry_is_first_block(self):
        fn = Function("f")
        first = fn.new_block("a")
        fn.new_block("b")
        assert fn.entry is first

    def test_new_block_names_unique(self):
        fn = Function("f")
        a = fn.new_block("x")
        b = fn.new_block("x")
        assert a.name != b.name

    def test_duplicate_add_block_rejected(self):
        fn = Function("f")
        fn.add_block(BasicBlock("x"))
        with pytest.raises(IRError):
            fn.add_block(BasicBlock("x"))

    def test_block_lookup_missing(self):
        fn = Function("f")
        with pytest.raises(IRError):
            fn.block("nope")

    def test_new_reg_unique(self):
        fn = Function("f")
        assert fn.new_reg() != fn.new_reg()

    def test_predecessors_and_successors(self):
        fn = Function("f")
        a = fn.new_block("a")
        b = fn.new_block("b")
        a.append(_bra("b"))
        b.append(Instruction(Opcode.EXIT))
        assert fn.successors() == {"a": ["b"], "b": []}
        assert fn.predecessors() == {"a": [], "b": ["a"]}

    def test_branch_to_unknown_block_caught(self):
        fn = Function("f")
        a = fn.new_block("a")
        a.append(_bra("ghost"))
        with pytest.raises(IRError):
            fn.predecessors()

    def test_edges(self):
        fn = Function("f")
        a = fn.new_block("a")
        b = fn.new_block("b")
        a.append(make(Opcode.CBR, None, Reg("p"), BlockRef("b"), BlockRef("a")))
        b.append(Instruction(Opcode.EXIT))
        assert set(fn.edges()) == {("a", "b"), ("a", "a")}

    def test_exit_blocks(self):
        fn = Function("f")
        a = fn.new_block("a")
        b = fn.new_block("b")
        a.append(_bra("b"))
        b.append(Instruction(Opcode.RET))
        assert fn.exit_blocks() == [b]

    def test_split_edge(self):
        fn = Function("f")
        a = fn.new_block("a")
        b = fn.new_block("b")
        a.append(_bra("b"))
        b.append(Instruction(Opcode.EXIT))
        mid = fn.split_edge("a", "b")
        assert a.successor_names() == [mid.name]
        assert mid.successor_names() == ["b"]

    def test_split_missing_edge_rejected(self):
        fn = Function("f")
        a = fn.new_block("a")
        b = fn.new_block("b")
        a.append(Instruction(Opcode.EXIT))
        b.append(Instruction(Opcode.EXIT))
        with pytest.raises(IRError):
            fn.split_edge("a", "b")

    def test_clone_is_independent(self):
        fn = Function("f", is_kernel=True)
        a = fn.new_block("a")
        a.append(make(Opcode.CONST, Reg("x"), __import__("repro.ir.instructions", fromlist=["Imm"]).Imm(1)))
        a.append(Instruction(Opcode.EXIT))
        clone = fn.clone()
        clone.block("a").instructions[0].operands[0] = None
        assert fn.block("a").instructions[0].operands[0] is not None
        assert clone.is_kernel

    def test_blocks_with_label(self):
        fn = Function("f")
        fn.new_block("a", attrs={"label": "L"})
        fn.new_block("b")
        assert [b.name for b in fn.blocks_with_label("L")] == ["a"]


class TestModule:
    def test_add_and_lookup(self):
        module = Module("m")
        fn = Function("f")
        module.add(fn)
        assert module.function("f") is fn

    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add(Function("f"))
        with pytest.raises(IRError):
            module.add(Function("f"))

    def test_missing_function(self):
        with pytest.raises(IRError):
            Module("m").function("f")

    def test_kernels_filter(self):
        module = Module("m")
        module.add(Function("k", is_kernel=True))
        module.add(Function("d"))
        assert [fn.name for fn in module.kernels()] == ["k"]

    def test_clone_clones_all_functions(self):
        module = Module("m")
        fn = Function("f")
        fn.new_block("a").append(Instruction(Opcode.EXIT))
        module.add(fn)
        clone = module.clone()
        assert clone.function("f") is not fn
        assert clone.function("f").block("a").terminator.opcode is Opcode.EXIT
