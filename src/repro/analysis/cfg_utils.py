"""CFG traversal utilities: orders, reachability, and a light graph view.

All analyses in this package work on name-keyed adjacency maps so that they
can operate both on real functions and on synthetic graphs in tests.
"""

from __future__ import annotations

from repro.errors import AnalysisError


class CFGView:
    """An adjacency view of a function's CFG (or a synthetic graph)."""

    def __init__(self, succs, entry):
        if entry not in succs:
            raise AnalysisError(f"entry {entry!r} is not a node")
        self.succs = {node: list(targets) for node, targets in succs.items()}
        self.entry = entry
        self.preds = {node: [] for node in self.succs}
        for node, targets in self.succs.items():
            for target in targets:
                if target not in self.succs:
                    raise AnalysisError(f"edge to unknown node {target!r}")
                self.preds[target].append(node)

    @classmethod
    def of_function(cls, function):
        return cls(function.successors(), function.entry.name)

    @property
    def nodes(self):
        return list(self.succs)

    def reversed(self, entry):
        """The reverse CFG, rooted at ``entry`` (typically a virtual exit)."""
        view = CFGView.__new__(CFGView)
        view.succs = {node: list(targets) for node, targets in self.preds.items()}
        view.entry = entry
        view.preds = {node: list(targets) for node, targets in self.succs.items()}
        if entry not in view.succs:
            raise AnalysisError(f"entry {entry!r} is not a node")
        return view


def reverse_postorder(view):
    """Reverse postorder over nodes reachable from the entry (iterative DFS)."""
    visited = set()
    postorder = []
    stack = [(view.entry, iter(view.succs[view.entry]))]
    visited.add(view.entry)
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(view.succs[child])))
                advanced = True
                break
        if not advanced:
            postorder.append(node)
            stack.pop()
    postorder.reverse()
    return postorder


def reachable_from(view, start=None):
    """The set of nodes reachable from ``start`` (default: entry)."""
    start = view.entry if start is None else start
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for succ in view.succs[node]:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def can_reach(view, targets):
    """The set of nodes from which any node in ``targets`` is reachable.

    Backward reachability: walks predecessor edges from the targets.
    """
    seen = set()
    frontier = []
    for target in targets:
        if target in view.preds and target not in seen:
            seen.add(target)
            frontier.append(target)
    while frontier:
        node = frontier.pop()
        for pred in view.preds[node]:
            if pred not in seen:
                seen.add(pred)
                frontier.append(pred)
    return seen


def add_virtual_exit(view, exit_name="__exit__"):
    """A copy of the CFG with a virtual exit node fed by all sink nodes.

    Needed for post-dominator computation on functions with multiple
    ``ret``/``exit`` blocks (or none reachable).
    """
    if exit_name in view.succs:
        raise AnalysisError(f"node name {exit_name!r} already used")
    succs = {node: list(targets) for node, targets in view.succs.items()}
    succs[exit_name] = []
    sinks = [node for node, targets in view.succs.items() if not targets]
    if not sinks:
        # Irreducible no-exit function (e.g. infinite loop): every node in a
        # terminal SCC conceptually flows to the exit; attach all nodes with
        # no path to a sink. Conservative but sufficient for pdom queries.
        sinks = [node for node in view.succs if node != exit_name]
    for sink in sinks:
        succs[sink].append(exit_name)
    return CFGView(succs, view.entry), exit_name
