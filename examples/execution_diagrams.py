#!/usr/bin/env python
"""Regenerate the Figure 1 execution cartoons from real traces.

Runs the Listing 1 kernel under PDOM synchronization and under Speculative
Reconvergence with tracing on, then draws lane x time diagrams: the
expensive block ('#') appears as scattered narrow slots under PDOM
(serialized duplicate execution, Figure 1a) and as wide vertical bands
under SR (converged waves, Figure 1b).

Run: ``python examples/execution_diagrams.py``
"""

from repro import GPUMachine, compile_baseline, compile_kernel_source, compile_sr
from repro.harness.timeline import convergence_series, render_timeline

KERNEL = """
kernel listing1(n_iters) {
    let acc = 0.0;
    let t = tid();
    predict L1, 12;
    for i in 0..40 {
        let u = hash01(t * 977.0 + i * 83.0);
        if (u < 0.12) {
            label L1: acc = acc + 0.5;
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
        }
        acc = acc * 0.9999;
    }
    store(t, acc);
}
"""


def main():
    module = compile_kernel_source(KERNEL)
    for title, program in (
        ("(a) PDOM synchronization — Expensive() serialized", compile_baseline(module)),
        ("(b) Speculative Reconvergence — Expensive() in converged waves", compile_sr(module)),
    ):
        launch = GPUMachine(program.module, trace=True).launch(
            "listing1", 32, args=(40,)
        )
        print(f"=== {title}")
        print(f"    SIMT efficiency {launch.simt_efficiency:.1%}, "
              f"cycles {launch.cycles}")
        print(render_timeline(launch, width=90, highlight="L.L1", legend=False))
        waves = convergence_series(launch, "L.L1")
        first = [w for i, w in enumerate(waves) if i % 9 == 0][:12]
        print(f"    active lanes at the Expensive() block (sampled): {first}")
        print()


if __name__ == "__main__":
    main()
