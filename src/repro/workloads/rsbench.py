"""RSBench: Monte Carlo neutron-transport cross-section lookup (Table 2).

"Given a material and energy, the kernel walks over all the nuclides in the
material ... and computes the sum of their cross-section data" (Figure 3).
The inner loop's trip count is the material's nuclide count — in the real
mini-app between 4 and 321 — so trip counts are wildly imbalanced across
the warp. Thread coarsening supplies the outer loop over lookups ("instead
of a single variable length task per thread, we assign a large number of
tasks per thread to enable load balancing over time"); lookups are pulled
from a global work queue exactly like the GPU scheduler distributes tasks.
This gives the Figure 2(b) Loop Merge shape, with reconvergence point
``L1`` at the inner-loop body as in Figure 3(a).

RSBench is compute bound (the multipole cross-section math), so the inner
body is FLOP-heavy; the companion XSBench workload is the memory-bound
variant. Nuclide counts follow the real RSBench material table scaled by
1/4 to keep simulation time bounded; the lookup distribution is skewed
toward small materials, with the fuel material dominating runtime.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines

#: Real RSBench per-material nuclide counts, scaled by 1/4 (min kept >= 1).
NUCLIDES_SCALED = [80, 74, 19, 16, 13, 9, 6, 5, 4, 4, 3, 1]


@register
class RSBench(Workload):
    name = "rsbench"
    description = (
        "Nuclear reactor Monte Carlo neutron transport mini-app; divergent "
        "inner-loop trip count (nuclides per material, 4-321), thread "
        "coarsening applied"
    )
    pattern = "loop-merge"
    paper_note = (
        "Figure 3 case study; Loop Merge with thread coarsening. Paper "
        "reports large SIMT-efficiency and runtime gains."
    )
    kernel_name = "rsbench_lookup"
    sr_threshold = 24
    #: dynamic work queue: task-to-thread assignment depends on timing, so
    #: only the aggregate checksum (not per-cell memory) is comparable.
    deterministic_memory = False
    defaults = {
        "n_tasks": 320,
        "inner_fma": 7,
        "n_materials": len(NUCLIDES_SCALED),
    }

    def source(self):
        p = self.params
        body = repeat_lines("xs = fma(xs, 1.0000001, 0.5);", p["inner_fma"])
        return f"""
kernel rsbench_lookup(n_tasks, queue, mat_table, out) {{
    let acc = 0.0;
    let task = atomadd(queue, 1);
    predict L1;
    while (task < n_tasks) {{
        // Prolog: pick a material for this lookup (skewed toward small
        // materials, like the mini-app's lookup distribution).
        let pick = hash01(task * 1.618034);
        let mat = floor(pick * pick * {p['n_materials']}.0);
        let n_nuclides = ld(mat_table + mat);
        let xs = 0.0;
        let j = 0;
        while (j < n_nuclides) {{
            // Proposed reconvergence point: accumulate one nuclide's
            // cross-section contribution (multipole math, compute bound).
            label L1: xs = fma(xs, 1.0000001, 0.5);
{body}
            j = j + 1;
        }}
        // Epilog: post_processing()
        acc = acc + xs / (n_nuclides + 1.0);
        task = atomadd(queue, 1);
    }}
    store(out + tid(), acc);
}}
"""

    def setup(self, memory):
        queue = memory.alloc(1, name="queue")
        mat_table = memory.alloc_array(list(NUCLIDES_SCALED), name="mat_table")
        out = memory.alloc(self.n_threads, name="out")
        return (self.params["n_tasks"], queue, mat_table, out)
