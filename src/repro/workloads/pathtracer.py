"""PathTracer: Cornell-box sphere path tracer microbenchmark (Table 2).

"Renders a sample scene composed of spheres in a Cornell box. Has loop trip
count divergence": each sample bounces until Russian Roulette terminates
the path ("each sample running one or more bounces up to some maximum
limit"). The bounce loop body — intersect the sphere scene and shade — is
expensive; fetching the next sample is cheap. Hence the Figure 9 result:
"PathTracer executes fastest when all threads reconverge before executing;
the cost of filling an idle thread with new work is low enough ... that it
is best to immediately refill any idle thread."
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class PathTracer(Workload):
    name = "pathtracer"
    description = (
        "CUDA path-tracing microbenchmark (spheres in a Cornell box); "
        "Russian-Roulette bounce loop gives heavy-tailed trip counts"
    )
    pattern = "loop-merge"
    paper_note = (
        "Soft-barrier case study of Figure 9: peak performance at full "
        "reconvergence (threshold 32) because refill is cheap."
    )
    kernel_name = "pathtrace"
    sr_threshold = None   # full reconvergence is the user's best choice
    defaults = {
        "samples_per_thread": 9,
        "max_bounces": 24,
        "continue_prob": 0.72,
        "shade_cost": 36,
    }

    def source(self):
        p = self.params
        shade = repeat_lines("radiance = fma(radiance, 0.98, throughput);", p["shade_cost"] // 3)
        intersect = repeat_lines(
            "throughput = fma(throughput, 0.995, 0.001);", p["shade_cost"] - p["shade_cost"] // 3
        )
        return f"""
kernel pathtrace(n_samples, image) {{
    let sample = tid();
    let pixel = 0.0;
    predict L1;
    while (sample < n_samples) {{
        // Prolog: generate the camera ray for this sample (cheap refill).
        let throughput = 1.0;
        let radiance = 0.0;
        let bounce = 0;
        let alive = 1;
        while (alive > 0) {{
            // Proposed reconvergence point: trace one bounce (intersect the
            // sphere scene, evaluate BSDF, accumulate radiance).
            label L1: bounce = bounce + 1;
{intersect}
{shade}
            // Russian roulette path termination.
            let u = hash01(sample * 131.0 + bounce * 17.0);
            if (u > {p['continue_prob']}) {{
                alive = 0;
            }}
            if (bounce >= {p['max_bounces']}) {{
                alive = 0;
            }}
        }}
        // Epilog: splat the sample (cheap).
        pixel = pixel + radiance / (bounce + 0.0);
        sample = sample + 32;
    }}
    store(image + tid(), pixel);
}}
"""

    def setup(self, memory):
        image = memory.alloc(self.n_threads, name="image")
        n_samples = self.params["samples_per_thread"] * self.n_threads
        return (n_samples, image)
