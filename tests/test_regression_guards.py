"""Regression guards for subtle bugs fixed during development.

Each test pins a failure mode that once existed, so refactors cannot
silently reintroduce it.
"""

import pytest

from repro.errors import DeadlockError
from repro.frontend import compile_kernel_source
from repro.ir import parse_module, format_module
from repro.simt import SCHEDULERS, GPUMachine, GlobalMemory
from repro.workloads import get_workload


class TestWorkQueueAliasing:
    """A dynamic work queue must not share memory with output cells: a
    finished thread's store would corrupt the queue while other threads
    still poll it, double-processing tasks (found via the none-mode
    checksum test)."""

    @pytest.mark.parametrize("name", ("rsbench", "xsbench"))
    def test_queue_region_disjoint_from_output(self, name):
        workload = get_workload(name)
        memory = GlobalMemory()
        workload.setup(memory)
        queue_base, queue_size = memory.region("queue")
        out_base, out_size = memory.region("out")
        assert queue_base + queue_size <= out_base or out_base + out_size <= queue_base

    @pytest.mark.parametrize("name", ("rsbench", "xsbench"))
    def test_tasks_processed_exactly_once(self, name):
        # The queue counter ends at n_tasks + n_threads (each thread's
        # final failing grab), never higher.
        workload = get_workload(name)
        result = workload.run(mode="none")
        queue_base, _ = result.launch.memory.region("queue")
        n_tasks = workload.params["n_tasks"]
        assert result.launch.memory.load(queue_base) == n_tasks + workload.n_threads


class TestParserLineAmbiguity:
    """The IR text format is newline-free for the lexer; `%dst =` on the
    next line must not be consumed as an operand of the previous
    instruction (an early parser bug)."""

    def test_zero_operand_op_before_dst(self):
        text = """
func @k() kernel {
entry:
  %a = tid
  %b = add %a, 1
  exit
}
"""
        module = parse_module(text)
        fn = module.function("k")
        tid_instr = fn.block("entry").instructions[0]
        assert tid_instr.operands == []
        assert format_module(parse_module(format_module(module))) == format_module(module)


class TestCostScalingFloor:
    """Scaling latencies below 1 must clamp, not round to zero (which made
    whole kernels free and inverted speedups)."""

    def test_half_scale_keeps_alu_nonzero(self):
        from repro.ir import Opcode
        from repro.simt import CostModel

        model = CostModel().scaled(0.5)
        assert model.latency(Opcode.ADD) >= 1
        assert model.latency(Opcode.PREDICT) == 0  # zero stays zero


class TestSoftBarrierDegenerateThreshold:
    """Threshold <= 1 must never park (a pool of one would self-release
    anyway, but parking costs scheduler churn and once risked stalls)."""

    def test_threshold_one_runs_to_completion(self):
        module = compile_kernel_source(
            """
kernel k() {
    let acc = 0.0;
    let t = tid();
    predict L1, 1;
    for i in 0..6 {
        if (hash01(t + i) < 0.5) {
            label L1: acc = acc + 1.0;
        }
    }
    store(t, acc);
}
"""
        )
        from repro.core import compile_sr

        prog = compile_sr(module)
        result = GPUMachine(prog.module).launch("k", 32)
        assert result.simt_efficiency > 0


class TestDetectorSideRegions:
    """An if-without-else must not treat the join block as the 'else
    side' (once made every cheap guard look like a huge candidate)."""

    def test_join_side_is_empty(self):
        from repro.analysis.cfg_utils import CFGView
        from repro.analysis.dominators import compute_post_dominators
        from repro.core.autodetect import _side_region
        from repro.analysis.loops import compute_loops

        module = compile_kernel_source(
            """
kernel k() {
    let x = 0.0;
    for i in 0..4 {
        if (hash01(i) < 0.5) { x = x + 1.0; }
        x = x * 2.0;
    }
    store(0, x);
}
"""
        )
        fn = module.function("k")
        view = CFGView.of_function(fn)
        pdom = compute_post_dominators(view)
        nest = compute_loops(view)
        branch = next(
            b.name
            for b in fn.blocks
            if b.terminator.opcode.value == "cbr" and b.name != "for.head"
        )
        succs = view.succs[branch]
        join = pdom.nearest_common_post_dominator(succs)
        loop = nest.innermost_containing(branch)
        assert _side_region(view, branch, join, loop, join=join) == set()


#: Minimized form of the serial-engine deadlock the multiwarp hypothesis
#: fuzzer surfaced in the telemetry PR (the conformance fuzz asserts
#: *parity* on whatever the shrinker finds; this pins the shape itself so
#: the repro survives shrink-database loss). An atomadd ticket decides
#: which of two soft barriers each lane parks on — barrier membership is
#: data-dependent on the global interleaving, the "ticket-dependent"
#: kernels of the generator. Every lane joins both barriers, the ticket
#: splits each warp's lanes across the two waits, and neither barrier can
#: release: parked < members on both, and each soft threshold (32) exceeds
#: the arrivals the other barrier's captives will ever provide — the
#: Section 4.3 conflicting-barrier deadlock.
TICKET_DEADLOCK_IR = """
func @k() kernel {
entry:
  %t = tid
  bssy $spec
  bssy $pdom
  %one = const 1
  %cell = const 900
  %ticket = atomadd %cell, %one
  %half = const 48
  %p = cmplt %ticket, %half
  cbr %p, ^low, ^high
low:
  bsync.soft $spec, 32
  bra ^join
high:
  bsync.soft $pdom, 32
  bra ^join
join:
  st %t, %ticket
  exit
}
"""


class TestTicketDependentDeadlock:
    """The serial engine must *detect* the cross-barrier stall as a
    DeadlockError (not spin or mis-release), and every optimized engine
    must reproduce the identical deadlock."""

    N_THREADS = 96  # three warps contending for tickets

    def _launch(self, **kwargs):
        module = parse_module(TICKET_DEADLOCK_IR)
        return GPUMachine(module, **kwargs).launch("k", self.N_THREADS)

    def test_serial_engine_deadlocks_with_split_membership(self):
        with pytest.raises(DeadlockError) as exc_info:
            self._launch(warp_batch=False)
        exc = exc_info.value
        # The stalled warp reports every non-exited lane with the barrier
        # it is parked on; the ticket split strands both barriers with
        # parked < members (16 + 16 lanes, threshold 32 unreachable).
        assert len(exc.waiting) == 32
        barriers = {name for _, name in exc.waiting}
        assert barriers == {"spec", "pdom"}
        by_barrier = {
            name: sum(1 for _, b in exc.waiting if b == name)
            for name in barriers
        }
        assert by_barrier == {"spec": 16, "pdom": 16}
        assert "conflicting barriers" in str(exc)

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_every_engine_deadlocks_identically(self, scheduler):
        with pytest.raises(DeadlockError) as serial:
            self._launch(scheduler=scheduler, warp_batch=False)
        with pytest.raises(DeadlockError) as batched:
            self._launch(scheduler=scheduler, warp_batch=True)
        assert batched.value.warp_id == serial.value.warp_id
        assert sorted(batched.value.waiting) == sorted(serial.value.waiting)

    def test_deadlock_is_deterministic_across_repeats(self):
        """Ticket assignment is part of the deterministic schedule, so
        the stalled warp and lane split never vary run to run."""
        outcomes = set()
        for _ in range(3):
            with pytest.raises(DeadlockError) as exc_info:
                self._launch(warp_batch=False)
            outcomes.add(
                (exc_info.value.warp_id, tuple(sorted(exc_info.value.waiting)))
            )
        assert len(outcomes) == 1
