"""Chrome Trace Event Format export (``chrome://tracing`` / Perfetto).

Converts simulator events (:mod:`repro.obs.events`) and compiler pipeline
spans (:mod:`repro.obs.spans`) into the JSON object format that Chrome's
tracer and https://ui.perfetto.dev load directly::

    {"traceEvents": [...], "displayTimeUnit": "ms", ...}

Mapping:

* the compiler is process 0 (one ``X`` slice per pipeline span, wall time
  in microseconds, IR deltas in ``args``);
* the simulator is process 1 with one thread per warp; each issued
  instruction is an ``X`` slice whose timestamp/duration are warp-local
  cycles (rendered as microseconds — 1 cycle = 1 us);
* divergence, barrier arrive/release, and reconvergence are thread-scoped
  instant events; active-lane counts are emitted as counter (``C``)
  events so Perfetto draws the SIMT-occupancy curve.

Use :func:`chrome_trace` for the dict, :func:`write_chrome_trace` for the
file. ``python -m repro.tools.trace`` wires this to workloads.
"""

from __future__ import annotations

import json

__all__ = ["chrome_trace", "write_chrome_trace",
           "simulator_trace_events", "span_trace_events"]

COMPILER_PID = 0
SIMULATOR_PID = 1


def _lanes(lanes):
    return sorted(lanes) if lanes else []


def simulator_trace_events(events, pid=SIMULATOR_PID, counters=True):
    """Chrome dicts for an iterable of simulator events (any kinds)."""
    out = []
    warps = set()
    for event in events:
        kind = getattr(event, "kind", None)
        wid = event.warp_id
        warps.add(wid)
        if kind == "issue":
            opcode = getattr(event.opcode, "value", event.opcode)
            out.append({
                "name": f"{opcode} @{event.function}/{event.block}",
                "cat": "sim,issue",
                "ph": "X",
                "ts": event.ts,
                "dur": event.dur,
                "pid": pid,
                "tid": wid,
                "args": {
                    "function": event.function,
                    "block": event.block,
                    "index": event.index,
                    "active": event.active,
                    "lanes": _lanes(event.lanes),
                },
            })
            if counters:
                out.append({
                    "name": f"active lanes (warp {wid})",
                    "cat": "sim",
                    "ph": "C",
                    "ts": event.ts,
                    "pid": pid,
                    "args": {"active": event.active},
                })
        elif kind == "diverge":
            out.append({
                "name": f"diverge @{event.function}/{event.block}",
                "cat": "sim,diverge",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {
                    target: _lanes(lanes)
                    for target, lanes in sorted(event.targets.items())
                },
            })
        elif kind == "barrier_arrive":
            out.append({
                "name": f"arrive {event.barrier}",
                "cat": "sim,barrier",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {"lanes": _lanes(event.lanes),
                         "parked": event.parked},
            })
        elif kind == "barrier_release":
            out.append({
                "name": f"release {event.barrier}",
                "cat": "sim,barrier",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {"lanes": _lanes(event.lanes)},
            })
        elif kind == "reconverge":
            out.append({
                "name": f"reconverge @{event.function}/{event.block}",
                "cat": "sim,reconverge",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {"lanes": _lanes(event.lanes)},
            })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "simulator (cycles as us)"},
    }]
    for wid in sorted(warps):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": wid,
            "args": {"name": f"warp {wid}"},
        })
    return meta + out


def span_trace_events(spans, pid=COMPILER_PID):
    """Chrome dicts for compiler pipeline spans (wall seconds -> us)."""
    out = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "compiler pipeline"},
    }, {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": "passes"},
    }]
    for span in spans:
        out.append({
            "name": span.name,
            "cat": "compile",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": 0,
            "args": {"ir_delta": span.ir_delta},
        })
    return out


def chrome_trace(launch=None, events=None, report=None, counters=True):
    """Build the Chrome Trace Event JSON object.

    Args:
        launch: a LaunchResult; its ``profiler.trace`` issue events are
            exported (ignored when ``events`` is given, which is the
            superset a sink collected).
        events: an iterable of simulator events (e.g. ``ListSink.events``).
        report: a CompileReport; its ``spans`` become the compiler track.
    """
    trace_events = []
    if events is None and launch is not None:
        events = launch.profiler.trace or []
    if events is not None:
        trace_events.extend(simulator_trace_events(events, counters=counters))
    spans = getattr(report, "spans", None) or []
    if spans:
        trace_events.extend(span_trace_events(spans))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.chrome_trace"},
    }


def write_chrome_trace(path, launch=None, events=None, report=None,
                       counters=True):
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    data = chrome_trace(
        launch=launch, events=events, report=report, counters=counters
    )
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1)
    return data
