"""Typed, cycle-stamped simulator events.

The simulator historically traced raw ``(warp_id, function, block, lanes)``
tuples. These classes replace the tuples with self-describing, cycle-stamped
records while staying *unpack-compatible*: iterating an :class:`IssueEvent`
yields exactly the legacy 4-tuple, so existing consumers
(``harness/timeline.py``, tests) keep working, while new consumers read the
richer named fields (``ts``, ``dur``, ``opcode``...).

Timestamps are warp-local cycles: ``ts`` is the warp's cycle counter when
the event happened, ``dur`` (issue events only) is the issue's latency.
Warps run in parallel, so timestamps are comparable *within* one warp and
compose into a launch-wide picture the way ``nvprof`` presents per-SM
streams.

Events are only ever constructed when observability is on (a tracing
launch, a live sink, or metrics); the ``trace=False`` fast path allocates
none of them — ``tests/test_obs.py`` pins that down.
"""

from __future__ import annotations

__all__ = [
    "TraceEvent",
    "IssueEvent",
    "DivergeEvent",
    "BarrierArriveEvent",
    "BarrierReleaseEvent",
    "ReconvergeEvent",
]


class TraceEvent:
    """Base class: every event has a ``kind``, a ``warp_id`` and a ``ts``."""

    __slots__ = ("warp_id", "ts")
    kind = "event"

    def __init__(self, warp_id, ts):
        self.warp_id = warp_id
        self.ts = ts

    def to_dict(self):
        """JSON-ready dict (used by exporters)."""
        data = {"kind": self.kind}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                value = getattr(self, name)
                if isinstance(value, frozenset):
                    value = sorted(value)
                data[name] = value
        return data

    def __repr__(self):
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.to_dict().items() if k != "kind"
        )
        return f"<{type(self).__name__} {fields}>"


class IssueEvent(TraceEvent):
    """One issued instruction: who ran, where, when, and for how long.

    Iterates as the legacy ``(warp_id, function, block, lanes)`` tuple.
    """

    __slots__ = ("function", "block", "index", "opcode", "lanes", "dur",
                 "active")
    kind = "issue"

    def __init__(self, warp_id, function, block, index, opcode, lanes, ts,
                 dur, active):
        super().__init__(warp_id, ts)
        self.function = function
        self.block = block
        self.index = index
        self.opcode = opcode
        self.lanes = lanes
        self.dur = dur
        self.active = active

    # Legacy tuple view -------------------------------------------------
    def __iter__(self):
        return iter((self.warp_id, self.function, self.block, self.lanes))

    def __getitem__(self, i):
        return (self.warp_id, self.function, self.block, self.lanes)[i]

    def __len__(self):
        return 4


class DivergeEvent(TraceEvent):
    """A conditional branch split one PC-group into several targets."""

    __slots__ = ("function", "block", "targets")
    kind = "diverge"

    def __init__(self, warp_id, function, block, ts, targets):
        super().__init__(warp_id, ts)
        self.function = function
        self.block = block
        #: {target block name: frozenset of lanes that took it}
        self.targets = targets


class BarrierArriveEvent(TraceEvent):
    """Lanes arrived at a convergence barrier and parked (began waiting)."""

    __slots__ = ("barrier", "lanes", "parked")
    kind = "barrier_arrive"

    def __init__(self, warp_id, barrier, ts, lanes, parked):
        super().__init__(warp_id, ts)
        self.barrier = barrier
        self.lanes = lanes
        #: barrier occupancy (total parked lanes) right after this arrival
        self.parked = parked


class BarrierReleaseEvent(TraceEvent):
    """A barrier's release condition fired; ``lanes`` resumed."""

    __slots__ = ("barrier", "lanes")
    kind = "barrier_release"

    def __init__(self, warp_id, barrier, ts, lanes):
        super().__init__(warp_id, ts)
        self.barrier = barrier
        self.lanes = lanes


class ReconvergeEvent(TraceEvent):
    """Lanes merged back into one PC-group (barrier release on the ITS
    machine, stack pop on the pre-Volta stack machine)."""

    __slots__ = ("function", "block", "lanes")
    kind = "reconverge"

    def __init__(self, warp_id, function, block, ts, lanes):
        super().__init__(warp_id, ts)
        self.function = function
        self.block = block
        self.lanes = lanes
