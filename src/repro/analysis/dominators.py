"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy algorithm).

Post-dominators are computed as dominators of the reverse CFG rooted at a
virtual exit, so functions with multiple or no explicit exits are handled.
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView, add_virtual_exit, reverse_postorder
from repro.errors import AnalysisError

VIRTUAL_EXIT = "__exit__"


class DominatorTree:
    """Immediate-dominator tree over the nodes reachable from the root."""

    def __init__(self, idom, order):
        self.idom = idom            # node -> immediate dominator (root -> root)
        self.order = order          # reverse postorder
        self._rpo_index = {node: i for i, node in enumerate(order)}
        self.children = {node: [] for node in order}
        for node, parent in idom.items():
            if node != parent:
                self.children[parent].append(node)

    @property
    def root(self):
        return self.order[0]

    def dominates(self, a, b):
        """True if ``a`` dominates ``b`` (every node dominates itself)."""
        if a not in self.idom or b not in self.idom:
            raise AnalysisError(f"node not in dominator tree: {a!r} or {b!r}")
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent

    def strictly_dominates(self, a, b):
        return a != b and self.dominates(a, b)

    def dominators_of(self, node):
        """All dominators of ``node``, nearest first."""
        result = [node]
        while self.idom[node] != node:
            node = self.idom[node]
            result.append(node)
        return result

    def nearest_common_dominator(self, a, b):
        """The lowest node dominating both ``a`` and ``b``."""
        ancestors = set(self.dominators_of(a))
        node = b
        while node not in ancestors:
            node = self.idom[node]
        return node

    def depth(self, node):
        depth = 0
        while self.idom[node] != node:
            node = self.idom[node]
            depth += 1
        return depth


def _intersect(idom, rpo_index, a, b):
    while a != b:
        while rpo_index[a] > rpo_index[b]:
            a = idom[a]
        while rpo_index[b] > rpo_index[a]:
            b = idom[b]
    return a


def compute_dominators(view):
    """Cooper-Harvey-Kennedy iterative dominators for ``view``."""
    order = reverse_postorder(view)
    rpo_index = {node: i for i, node in enumerate(order)}
    idom = {view.entry: view.entry}
    changed = True
    while changed:
        changed = False
        for node in order:
            if node == view.entry:
                continue
            processed = [p for p in view.preds[node] if p in idom]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = _intersect(idom, rpo_index, new_idom, pred)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return DominatorTree(idom, order)


def dominator_tree(function):
    """Dominator tree of ``function``'s CFG."""
    return compute_dominators(CFGView.of_function(function))


class PostDominatorTree:
    """Post-dominator tree; wraps a DominatorTree over the reverse CFG."""

    def __init__(self, tree, exit_name):
        self._tree = tree
        self.exit_name = exit_name

    def ipdom(self, node):
        """Immediate post-dominator; None if it is the virtual exit."""
        parent = self._tree.idom[node]
        if parent == node or parent == self.exit_name:
            return None
        return parent

    def post_dominates(self, a, b):
        """True if ``a`` post-dominates ``b``."""
        return self._tree.dominates(a, b)

    def post_dominators_of(self, node):
        return [n for n in self._tree.dominators_of(node) if n != self.exit_name]

    def nearest_common_post_dominator(self, nodes):
        nodes = list(nodes)
        if not nodes:
            raise AnalysisError("need at least one node")
        acc = nodes[0]
        for node in nodes[1:]:
            acc = self._tree.nearest_common_dominator(acc, node)
        return None if acc == self.exit_name else acc

    def branch_reconvergence_point(self, block_name, view):
        """The immediate post-dominator used as the PDOM reconvergence point.

        For a branch in ``block_name`` this is the nearest common
        post-dominator of its successors — the point where the baseline
        compiler reconverges diverged threads (Section 2).
        """
        succs = view.succs[block_name]
        if not succs:
            return None
        return self.nearest_common_post_dominator(succs)


def compute_post_dominators(view):
    augmented, exit_name = add_virtual_exit(view, VIRTUAL_EXIT)
    reverse = augmented.reversed(exit_name)
    tree = compute_dominators(reverse)
    return PostDominatorTree(tree, exit_name)


def post_dominator_tree(function):
    """Post-dominator tree of ``function``'s CFG."""
    return compute_post_dominators(CFGView.of_function(function))
