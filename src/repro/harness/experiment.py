"""Experiment runners shared by the figure generators and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.parallel import run_tasks_observed, task
from repro.workloads import get_workload


@dataclass
class ComparisonRow:
    """Baseline-vs-SR measurements for one workload."""

    workload: str
    pattern: str
    baseline_eff: float
    sr_eff: float
    baseline_cycles: int
    sr_cycles: int
    threshold: object
    checksum_ok: bool

    @property
    def efficiency_gain(self):
        return self.sr_eff / self.baseline_eff if self.baseline_eff else float("inf")

    @property
    def speedup(self):
        return self.baseline_cycles / self.sr_cycles if self.sr_cycles else float("inf")


def compare_workload(name, seed=2020, **params):
    """Run one workload baseline vs SR (with its user-chosen threshold)."""
    workload = get_workload(name, **params)
    baseline, optimized = workload.compare(seed=seed)
    if workload.deterministic_memory:
        checksum_ok = baseline.checksum == optimized.checksum
    else:
        checksum_ok = abs(baseline.checksum - optimized.checksum) < 1e-2
    return ComparisonRow(
        workload=name,
        pattern=workload.pattern,
        baseline_eff=baseline.simt_efficiency,
        sr_eff=optimized.simt_efficiency,
        baseline_cycles=baseline.cycles,
        sr_cycles=optimized.cycles,
        threshold=workload.sr_threshold,
        checksum_ok=checksum_ok,
    )


def compare_all(names, seed=2020, params=None, jobs=None):
    """ComparisonRows for a list of workload names.

    ``jobs`` farms the per-workload comparisons over worker processes;
    rows come back in ``names`` order regardless.
    """
    params = params or {}
    # Observed variant so worker-side engine counters fold back into the
    # parent registry; the rows themselves are identical either way.
    rows, _reports = run_tasks_observed(
        [
            task(compare_workload, name, seed=seed, **params.get(name, {}))
            for name in names
        ],
        jobs=jobs,
    )
    return rows


@dataclass
class SweepPoint:
    threshold: int
    simt_efficiency: float
    cycles: int
    speedup: float


def _sweep_point(name, params, seed, threshold):
    """One sweep point, returned as plain numbers (cheap to pickle)."""
    workload = get_workload(name, **params)
    result = workload.run(mode="sr", threshold=threshold, seed=seed)
    return result.simt_efficiency, result.cycles


def threshold_sweep(name, thresholds=None, seed=2020, jobs=None, **params):
    """Soft-barrier threshold sweep for one workload (Figure 9).

    Returns (baseline_result, [SweepPoint...]). ``threshold=32`` and above
    behave as the hard barrier (wait for every member). ``jobs`` farms the
    sweep points over worker processes in threshold order.
    """
    workload = get_workload(name, **params)
    thresholds = list(thresholds) if thresholds is not None else list(range(0, 33, 4))
    baseline = workload.run(mode="baseline", seed=seed)
    # >=32 collapses to the hard wait (threshold None).
    effective = [None if k >= 32 else k for k in thresholds]
    measured, _reports = run_tasks_observed(
        [task(_sweep_point, name, params, seed, e) for e in effective],
        jobs=jobs,
    )
    points = [
        SweepPoint(
            threshold=k,
            simt_efficiency=eff,
            cycles=cycles,
            speedup=baseline.cycles / cycles,
        )
        for k, (eff, cycles) in zip(thresholds, measured)
    ]
    return baseline, points
