"""The synchronization-insertion algorithm of Section 4.2.

For each prediction (region start R, reconvergence point L):

1. ``JoinBarrier(b)`` replaces the ``Predict`` directive at R, and
   ``WaitBarrier(b)`` is placed at the top of L (Figure 4a). A soft
   prediction uses the threshold wait (Section 4.6).
2. Joined Barrier Analysis (Eq. 1) and Barrier Live Range Analysis (Eq. 2)
   run on the updated function (Figures 4b, 4c).
3. ``RejoinBarrier(b)`` is inserted where the barrier was cleared by the
   wait but is still live — threads looping back expect to wait again.
4. ``CancelBarrier(b)`` is inserted at region escapes: edges ``u -> v``
   where the barrier may be joined at the end of ``u`` but is dead at the
   entry of ``v`` (threads leaving must not strand the waiters).
5. An orthogonal *region-exit* barrier joins with ``b`` at R and waits at
   the region's post-dominator so the code after the region executes
   convergently (Figure 4d, BB5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.barrier_liveness import BarrierLiveness
from repro.core.joined_barriers import JoinedBarriers
from repro.core.primitives import (
    BarrierNamer,
    cancel_barrier,
    is_cancel,
    join_barrier,
    rejoin_barrier,
    wait_barrier,
    wait_barrier_soft,
)
from repro.core.regions import compute_region
from repro.errors import TransformError

ORIGIN = "sr"


@dataclass
class InsertionReport:
    """Where the pass placed each primitive for one prediction."""

    barrier: str = None
    exit_barrier: str = None
    region_blocks: set = field(default_factory=set)
    wait_block: str = None
    rejoin_inserted: bool = False
    cancel_blocks: list = field(default_factory=list)
    exit_wait_block: str = None

    def describe(self):
        parts = [
            f"barrier={self.barrier}",
            f"wait=^{self.wait_block}",
            f"rejoin={'yes' if self.rejoin_inserted else 'no'}",
            f"cancels={[f'^{b}' for b in self.cancel_blocks]}",
        ]
        if self.exit_wait_block:
            parts.append(f"exit={self.exit_barrier}@^{self.exit_wait_block}")
        return ", ".join(parts)


def _locate_directive(function, prediction):
    """(block, index) of the prediction's ``predict`` instruction."""
    block = function.block(prediction.region_block)
    for index, instr in enumerate(block.instructions):
        if instr is prediction.directive:
            return block, index
    # The directive object may differ after cloning; fall back to position.
    if prediction.region_index < len(block.instructions):
        return block, prediction.region_index
    raise TransformError(
        f"@{function.name}: cannot locate Predict directive in "
        f"^{prediction.region_block}"
    )


def insert_speculative_reconvergence(function, prediction, namer=None):
    """Apply the Section 4.2 algorithm for one prediction (in place)."""
    if prediction.is_interprocedural:
        raise TransformError(
            "interprocedural predictions are handled by "
            "repro.core.interprocedural"
        )
    namer = namer or BarrierNamer()
    report = InsertionReport()
    region = compute_region(
        function, prediction.region_block, prediction.target_block
    )
    report.region_blocks = set(region.blocks)

    barrier = namer.fresh()
    exit_barrier = namer.fresh()
    report.barrier = barrier
    report.exit_barrier = exit_barrier

    # Step 1: join at the directive, wait at the label.
    directive_block, directive_index = _locate_directive(function, prediction)
    directive_block.instructions[directive_index : directive_index + 1] = [
        join_barrier(exit_barrier, ORIGIN),
        join_barrier(barrier, ORIGIN),
    ]
    target = function.block(prediction.target_block)
    if prediction.threshold is not None:
        wait = wait_barrier_soft(barrier, prediction.threshold, ORIGIN)
    else:
        wait = wait_barrier(barrier, ORIGIN)
    target.prepend(wait)
    report.wait_block = target.name

    # Step 2: dataflow analyses on the updated function.
    joined = JoinedBarriers(function)
    liveness = BarrierLiveness(function)

    # Step 3: rejoin where the wait cleared a still-live barrier.
    wait_index = target.index_of(wait)
    if barrier in liveness.live_after(target, wait_index):
        target.insert(wait_index + 1, rejoin_barrier(barrier, ORIGIN))
        report.rejoin_inserted = True

    # Step 4: cancels at escapes (joined may hold, no wait ahead).
    cancel_targets = []
    for src, dst in function.edges():
        if barrier in joined.joined_out(src) and barrier not in liveness.live_in(
            dst
        ):
            if dst not in cancel_targets:
                cancel_targets.append(dst)
    for name in cancel_targets:
        function.block(name).prepend(cancel_barrier(barrier, ORIGIN))
        report.cancel_blocks.append(name)

    # Step 5: region-exit convergence barrier.
    if region.post_dominator is not None:
        exit_block = function.block(region.post_dominator)
        # The exit wait goes after any cancels at the top of that block so a
        # leaving thread withdraws from the label barrier before parking.
        insert_at = 0
        while insert_at < len(exit_block.instructions) and is_cancel(
            exit_block.instructions[insert_at]
        ):
            insert_at += 1
        exit_block.insert(insert_at, wait_barrier(exit_barrier, ORIGIN))
        report.exit_wait_block = exit_block.name
    else:
        # Region flows straight to the function exit; hardware reconverges
        # exiting lanes implicitly, so drop the unused exit join.
        directive_block.instructions = [
            i
            for i in directive_block.instructions
            if not (
                i.opcode.value == "bssy"
                and i.operands
                and getattr(i.operands[0], "name", None) == exit_barrier
            )
        ]
        report.exit_barrier = None

    return report
