"""Execution-timeline diagrams — the paper's Figure 1 / Figure 3(b)
cartoons, regenerated from real traces.

Render one warp's execution as a lane × time grid: each column is a slice
of issue slots, each cell shows which basic block the lane spent that
slice in (``.`` = idle/waiting). Under PDOM sync the expensive block forms
a diagonal staircase (serialized execution, Figure 1a); under Speculative
Reconvergence it forms solid vertical bands (converged waves, Figure 1b).

Requires a launch made with ``GPUMachine(module, trace=True)``.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.simt.warp import WARP_SIZE

#: Symbols assigned to blocks in first-appearance order.
_SYMBOLS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def assign_symbols(trace, warp_id=0, highlight=None):
    """Map block names to single characters, highlighted block first."""
    symbols = {}
    if highlight is not None:
        symbols[highlight] = "#"
    assigned = 0
    for wid, _function, block, _lanes in trace:
        if wid == warp_id and block not in symbols:
            symbols[block] = _SYMBOLS[assigned % len(_SYMBOLS)]
            assigned += 1
    return symbols


def render_timeline(
    launch,
    warp_id=0,
    width=96,
    lanes=WARP_SIZE,
    highlight=None,
    legend=True,
):
    """Render a lane-by-time ASCII diagram for one warp.

    Args:
        launch: a LaunchResult from a tracing machine.
        width: number of time columns (issues are bucketed evenly).
        highlight: block name drawn as ``#`` (e.g. the Expensive() block).
    """
    trace = launch.profiler.trace
    if trace is None:
        raise ReproError(
            "timeline needs a trace; launch with GPUMachine(..., trace=True)"
        )
    events = [e for e in trace if e[0] == warp_id]
    if not events:
        raise ReproError(f"no trace events for warp {warp_id}")
    symbols = assign_symbols(events, warp_id=warp_id, highlight=highlight)
    columns = min(width, len(events))
    per_column = len(events) / columns

    grid = [["." for _ in range(columns)] for _ in range(lanes)]
    for column in range(columns):
        start = int(column * per_column)
        stop = max(start + 1, int((column + 1) * per_column))
        # Majority block per lane within the bucket.
        tally = [dict() for _ in range(lanes)]
        for _wid, _function, block, active in events[start:stop]:
            for lane in active:
                if lane < lanes:
                    tally[lane][block] = tally[lane].get(block, 0) + 1
        for lane in range(lanes):
            if tally[lane]:
                block = max(tally[lane], key=tally[lane].get)
                grid[lane][column] = symbols.get(block, "?")

    lines = []
    for lane in range(lanes):
        lines.append(f"T{lane:02d} |" + "".join(grid[lane]) + "|")
    if legend:
        lines.append("")
        lines.append("time ->  (each column ~ "
                     f"{per_column:.1f} issue slots; '.' = idle/waiting)")
        for block, symbol in symbols.items():
            lines.append(f"  {symbol} = {block}")
    return "\n".join(lines)


def convergence_series(launch, block, function=None, warp_id=0):
    """Active-lane counts of every visit to ``block`` (a numeric view of
    the same story: PDOM gives small numbers, SR gives wide waves)."""
    trace = launch.profiler.trace
    if trace is None:
        raise ReproError("convergence_series needs a tracing launch")
    series = []
    for wid, fn, blk, lanes in trace:
        if wid == warp_id and blk == block and (function is None or fn == function):
            series.append(len(lanes))
    return series
