"""Unit net for the tiered segment JIT (:mod:`repro.simt.jit`).

The conformance matrix (test_conformance.py) pins bit-identity over the
corpus; this file pins the *mechanism*: tier-up threshold semantics, the
two-level code cache and its knob-fingerprint invalidation, deopt on
codegen veto, the escape hatches, the generated-source shape, and the
post-mortem integration.
"""

import pytest

from repro.core import compile_sr
from repro.errors import LaunchError
from repro.frontend import compile_kernel_source
from repro.ir.instructions import Opcode
from repro.obs import counters as obs_counters
from repro.simt import GPUMachine, GlobalMemory
from repro.simt import jit as jit_module
from repro.simt import soa as soa_module
from repro.simt.fastpath import clear_decode_cache

#: Straight-line kernel: one fused segment per launch per warp, so the
#: per-segment hit counter advances exactly once per launch (threshold
#: boundary tests count on this).
STRAIGHT = """
kernel k() {
    let t = tid();
    let x = t * 2.0;
    let y = x + 1.5;
    store(t, y);
}
"""

#: Same shape but with a runtime sqrt (never constant-folded), so
#: removing the SQRT lowering template forces a codegen veto.
WITH_SQRT = """
kernel k() {
    let t = tid();
    let s = sqrt(t + 2.0);
    store(t, s);
}
"""

RUNAWAY = """
kernel k() {
    let i = 0;
    while (i < 1000000) {
        i = i + 1;
    }
    store(tid(), i);
}
"""


@pytest.fixture
def forced_jit():
    """JIT on with tier-up forced (threshold 0) and fresh segments, so
    every test starts from cold per-segment hit counters and an empty
    code cache; everything is restored afterwards."""
    prev_enabled = jit_module.set_jit(True)
    prev_threshold = jit_module.set_jit_threshold(0)
    clear_decode_cache()
    try:
        yield
    finally:
        jit_module.set_jit(prev_enabled)
        jit_module.set_jit_threshold(prev_threshold)
        clear_decode_cache()


def _compiled(source):
    return compile_sr(compile_kernel_source(source))


def _run(compiled, jit=None, seed=2020, **machine_kwargs):
    memory = GlobalMemory()
    machine = GPUMachine(
        compiled.module, seed=seed, jit=jit, **machine_kwargs
    )
    launch = machine.launch("k", 32, memory=memory)
    return launch, memory


class TestThreshold:
    def test_threshold_boundary(self, forced_jit):
        """Threshold N means exactly N interpreted executions; the N+1st
        tiers up. The hit counter lives on the (cached) segment, so the
        boundary spans launches."""
        jit_module.set_jit_threshold(3)
        compiled = _compiled(STRAIGHT)
        reference, ref_memory = _run(compiled, jit=False)
        for execution in (1, 2, 3):
            launch, memory = _run(compiled, jit=True)
            assert launch.profiler.jit_segments == 0, execution
            assert launch.profiler.jit_tierups == 0, execution
            assert memory.snapshot() == ref_memory.snapshot()
        hot, memory = _run(compiled, jit=True)
        assert hot.profiler.jit_tierups == 1
        assert hot.profiler.jit_segments == 1
        assert hot.profiler.jit_deopts == 0
        assert memory.snapshot() == ref_memory.snapshot()
        assert hot.store_traces() == reference.store_traces()

    def test_threshold_zero_compiles_on_first_execution(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        launch, _ = _run(compiled, jit=True)
        assert launch.profiler.jit_segments > 0
        assert launch.counters["jit.executed_segments"] > 0

    def test_set_jit_threshold_returns_previous(self, forced_jit):
        assert jit_module.set_jit_threshold(7) == 0
        assert jit_module.jit_threshold() == 7
        assert jit_module.set_jit_threshold(0) == 7


class TestCodeCache:
    def test_knob_change_invalidates_and_revert_hits(self, forced_jit):
        """The cache key is segment x variant x knob fingerprint: a knob
        flip recompiles, flipping it back is a code-cache hit — and every
        configuration stays bit-identical."""
        compiled = _compiled(STRAIGHT)
        reference, ref_memory = _run(compiled, jit=False)

        before = obs_counters.snapshot()
        _, memory_a = _run(compiled, jit=True)
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["jit.compiled_segments"] == 1
        assert moved["jit.cache_hits"] == 0
        assert memory_a.snapshot() == ref_memory.snapshot()

        # Steady state: the compiled fn is memoized on the segment, so
        # re-running neither recompiles nor re-queries the cache.
        before = obs_counters.snapshot()
        _run(compiled, jit=True)
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["jit.compiled_segments"] == 0
        assert moved["jit.tierups"] == 0

        prev_gain = soa_module.set_soa_min_gain(12345)
        try:
            before = obs_counters.snapshot()
            _, memory_b = _run(compiled, jit=True)
            moved = obs_counters.delta(obs_counters.snapshot(), before)
            assert moved["jit.tierups"] == 1
            assert moved["jit.compiled_segments"] == 1
            assert moved["jit.cache_hits"] == 0
            assert memory_b.snapshot() == ref_memory.snapshot()
        finally:
            soa_module.set_soa_min_gain(prev_gain)

        # Reverting the knob must hit the cache, not recompile.
        before = obs_counters.snapshot()
        _, memory_c = _run(compiled, jit=True)
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["jit.tierups"] == 1
        assert moved["jit.cache_hits"] == 1
        assert moved["jit.compiled_segments"] == 0
        assert memory_c.snapshot() == ref_memory.snapshot()

    def test_fingerprint_tracks_knobs(self):
        base = jit_module.knob_fingerprint()
        prev = soa_module.set_soa_min_gain(98765)
        try:
            assert jit_module.knob_fingerprint() != base
        finally:
            soa_module.set_soa_min_gain(prev)
        assert jit_module.knob_fingerprint() == base

    def test_clear_decode_cache_clears_code_cache(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        _run(compiled, jit=True)
        assert jit_module.CODE_CACHE.stats()["segments"] > 0
        clear_decode_cache()
        assert jit_module.CODE_CACHE.stats() == {
            "segments": 0, "hits": 0, "misses": 0,
        }


class TestDeopt:
    def test_codegen_veto_deopts_and_stays_correct(
        self, forced_jit, monkeypatch
    ):
        """A segment codegen cannot lower runs interpreted forever —
        counted, cached as a deopt, and bit-identical."""
        compiled = _compiled(WITH_SQRT)
        reference, ref_memory = _run(compiled, jit=False)
        monkeypatch.delitem(jit_module._UNARY_EXPR, Opcode.SQRT)
        launch, memory = _run(compiled, jit=True)
        assert launch.profiler.jit_deopts > 0
        assert launch.profiler.jit_segments == 0
        assert memory.snapshot() == ref_memory.snapshot()
        assert launch.store_traces() == reference.store_traces()
        records = jit_module.compiled_segments()
        deopted = [r for r in records if r["deopt"]]
        assert deopted
        assert all(r["source"] is None for r in deopted)
        # The veto is cached: re-running neither retries codegen nor
        # recompiles, and results stay correct.
        before = obs_counters.snapshot()
        launch2, memory2 = _run(compiled, jit=True)
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["jit.compiled_segments"] == 0
        assert launch2.profiler.jit_tierups == 0
        assert memory2.snapshot() == ref_memory.snapshot()


class TestEscapeHatches:
    def test_machine_knob_overrides_global(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        off, _ = _run(compiled, jit=False)
        assert off.profiler.jit_segments == 0
        assert off.profiler.jit_tierups == 0
        on, _ = _run(compiled, jit=True)
        assert on.profiler.jit_segments > 0

    def test_jit_disabled_context(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        with jit_module.jit_disabled():
            assert not jit_module.jit_enabled()
            launch, _ = _run(compiled)  # machine defers to the global
            assert launch.profiler.jit_segments == 0
        assert jit_module.jit_enabled()

    def test_set_jit_returns_previous(self):
        previous = jit_module.set_jit(False)
        try:
            assert jit_module.jit_enabled() is False
        finally:
            jit_module.set_jit(previous)

    def test_machine_on_while_global_off(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        with jit_module.jit_disabled():
            launch, _ = _run(compiled, jit=True)
        assert launch.profiler.jit_segments > 0

    def test_inert_without_segments(self, forced_jit):
        """No fused segments (segments=False) means nothing to tier up:
        the JIT knob must change nothing at all."""
        compiled = _compiled(STRAIGHT)
        launch, memory = _run(compiled, jit=True, segments=False)
        assert launch.profiler.jit_segments == 0
        assert launch.profiler.jit_tierups == 0
        reference, ref_memory = _run(compiled, jit=False, segments=False)
        assert memory.snapshot() == ref_memory.snapshot()
        assert launch.store_traces() == reference.store_traces()


class TestGeneratedSource:
    def test_generated_source_golden(self, forced_jit):
        """The exact lowering of a known segment: slot reads/writes on
        ``_r``, constants folded (the ``2.0``/``1.5`` CONST slots are
        written once at chunk end), one handler call for the store+branch
        tail, static cycles precomputed. A diff here means the codegen
        shape changed — bump ``_CODEGEN_VERSION`` with it."""
        compiled = _compiled(STRAIGHT)
        _run(compiled, jit=True)
        records = [
            r for r in jit_module.compiled_segments()
            if r["segment"] == "@k/entry:0" and r["variant"] == "tm"
        ]
        assert len(records) == 1
        assert records[0]["source"] == (
            "# jit: segment @k/entry:0 n=9 variant=tm\n"
            "def _jit_segment(executor, warp, group):\n"
            "    _total = 8\n"
            "    for _t in group:\n"
            "        _f = _t.frames[-1]\n"
            "        _r = _f.regs\n"
            "        _s0 = _t.tid\n"
            "        _r[0] = _s0\n"
            "        _s1 = _s0\n"
            "        _r[1] = _s1\n"
            "        _s3 = (_s1 * 2.0)\n"
            "        _r[3] = _s3\n"
            "        _s4 = _s3\n"
            "        _r[4] = _s4\n"
            "        _s6 = (_s4 + 1.5)\n"
            "        _r[6] = _s6\n"
            "        _r[7] = _s6\n"
            "        _r[2] = 2.0\n"
            "        _r[5] = 1.5\n"
            "        _f.index = 8\n"
            "    _total += _h6(executor, warp, group)\n"
            "    return _total\n"
        )

    def test_last_executed_source(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        _run(compiled, jit=True)
        last = jit_module.last_executed_source()
        assert last is not None
        segment, source = last
        assert "@k/entry:0" in segment
        assert "def _jit_segment" in source

    def test_codegen_spans_recorded(self, forced_jit):
        compiled = _compiled(STRAIGHT)
        before = len(jit_module.codegen_spans().spans)
        _run(compiled, jit=True)
        spans = jit_module.codegen_spans().spans
        assert len(spans) > before
        assert any(span.name.startswith("jit:") for span in spans)


class TestPostMortem:
    def test_post_mortem_carries_jit_source(self, forced_jit):
        """A launch that dies after executing JIT code attaches the
        generated source of the last-executed segment to the error's
        post-mortem report."""
        compiled = _compiled(RUNAWAY)
        memory = GlobalMemory()
        machine = GPUMachine(compiled.module, max_issues=1000, jit=True)
        with pytest.raises(LaunchError) as excinfo:
            machine.launch("k", 32, memory=memory)
        report = excinfo.value.post_mortem
        assert "jit" in report
        assert "def _jit_segment" in report["jit"]["source"]
        assert report["jit"]["segment"].startswith("@k/")
