"""Pre-decoded, table-driven kernel execution — the simulator fast path.

:class:`~repro.simt.executor.Executor` normally dispatches every issued
instruction through an ``Opcode``-comparison chain and resolves each operand
with ``isinstance`` checks. That is robust but slow: the dispatch cost is
paid once per issue slot, of which a single sweep point executes millions.

This module flattens each basic block once into a dense tuple of
:class:`DecodedInstruction` records. Decoding interns the operands (each
closure captures exactly what it needs), pre-resolves branch targets and
call entry points to plain strings and function objects, pre-binds the
arithmetic eval function, and freezes the static issue latency from the
cost model. Register operands resolve at decode time to *slot indices* in
the owning function's register allocation
(:meth:`repro.ir.function.Function.reg_slots`), so a register access in a
decoded handler is a single C-speed list index — no name hashing at all.
The warp issue loop then becomes a table lookup plus one specialized
closure call per issue.

Semantics are **bit-identical** to the slow path by construction: every
closure body is a line-for-line specialization of the corresponding
``Executor.execute`` branch, applying per-thread effects in the same lane
order and charging the same cycle costs (``tests/test_conformance.py``
pins this differentially over the Table 2 corpus).

Decoded programs are cached per ``(module, cost model)`` so repeated
launches of the same compiled module — threshold sweeps, scheduler
ablations, golden-trace regeneration — decode once. The cache is keyed
weakly by module identity and validated against a structural token
(function/block names and instruction counts), so rebuilding a module or
appending blocks invalidates stale entries. In-place mutation of an
existing instruction's operands is *not* tracked; compiler passes always
run on clones before launch, which is why this is safe.

On top of the per-instruction decode, :meth:`DecodedProgram.segment_at`
exposes the block's straight-line *segments* for the fused execution layer
(:mod:`repro.simt.segments`); segment tables are built lazily per block,
so machines that never fuse pay nothing.

The fast path is on by default. ``REPRO_FASTPATH=0`` (or
:func:`set_fastpath`/:func:`fastpath_disabled`) falls back to the
interpreted path, which the conformance suite uses as its reference.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager

from repro.errors import SimulationError
from repro.ir.function import structure_token
from repro.obs.counters import ENGINE_COUNTERS
from repro.ir.instructions import Barrier, Imm, Opcode, Reg
from repro.simt.barrier_state import ALL_MEMBERS
from repro.simt.executor import (
    _BINARY_EVAL,
    _UNARY_EVAL,
    _UNIFORM_OPS,
    _WARPSYNC_BARRIER,
)
from repro.simt import soa as _soa
from repro.simt.segments import SegmentTable
from repro.simt.warp import Frame

__all__ = [
    "DecodedInstruction",
    "DecodedProgram",
    "decode_program",
    "fastpath_disabled",
    "fastpath_enabled",
    "set_fastpath",
]

#: Global default for new machines/executors. Flip with ``set_fastpath`` or
#: the ``REPRO_FASTPATH`` environment variable (0/false/off disables).
FASTPATH_ENABLED = os.environ.get("REPRO_FASTPATH", "1").lower() not in (
    "0",
    "false",
    "off",
)


def fastpath_enabled():
    """The current global fast-path default."""
    return FASTPATH_ENABLED


def set_fastpath(enabled):
    """Set the global fast-path default; returns the previous value."""
    global FASTPATH_ENABLED
    previous = FASTPATH_ENABLED
    FASTPATH_ENABLED = bool(enabled)
    return previous


@contextmanager
def fastpath_disabled():
    """Run a block with the interpreted (pre-decode-free) execution path."""
    previous = set_fastpath(False)
    try:
        yield
    finally:
        set_fastpath(previous)


# ---------------------------------------------------------------------------
# Operand access: interned closures instead of per-issue isinstance checks
# ---------------------------------------------------------------------------
def _getter(operand, slots):
    """A ``thread -> value`` accessor mirroring ``Executor._value``."""
    if isinstance(operand, Imm):
        value = operand.value
        return lambda thread: value
    if isinstance(operand, Reg):
        def read(thread, _slot=slots[operand.name]):
            return thread.frames[-1].regs[_slot]

        return read
    if isinstance(operand, Barrier):
        name = operand.name
        return lambda thread: name
    raise SimulationError(f"cannot evaluate operand {operand!r}")


def _barrier_getter(operand, slots):
    """A ``thread -> barrier name`` accessor (literal or barrier register)."""
    if isinstance(operand, Barrier):
        name = operand.name
        return lambda thread: name
    get = _getter(operand, slots)

    def resolve(thread):
        name = get(thread)
        if not isinstance(name, str):
            raise SimulationError(
                f"barrier register holds non-barrier value {name!r}"
            )
        return name

    return resolve


class DecodedInstruction:
    """One pre-decoded instruction: the original record plus its handler.

    ``run(executor, warp, group)`` applies the instruction to every thread
    of ``group`` (in lane order) and returns the cycle cost of the issue.
    """

    __slots__ = ("instr", "opcode", "latency", "run", "uniform",
                 "is_barrier_op")

    def __init__(self, instr, latency, run):
        self.instr = instr
        self.opcode = instr.opcode
        self.latency = latency
        self.run = run
        # Per-issue flags the executor would otherwise recompute with enum
        # set lookups / a property call on every slot.
        self.uniform = instr.opcode in _UNIFORM_OPS
        self.is_barrier_op = instr.is_barrier_op


# ---------------------------------------------------------------------------
# Per-opcode specializations
# ---------------------------------------------------------------------------
def _decode_binary(instr, latency, slots):
    fn = _BINARY_EVAL[instr.opcode]
    dst = slots[instr.dst.name]
    a, b = instr.operands
    if isinstance(a, Reg) and isinstance(b, Reg):
        sa, sb = slots[a.name], slots[b.name]

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                regs[dst] = fn(regs[sa], regs[sb])
                frame.index += 1
            return latency

    elif isinstance(a, Reg) and isinstance(b, Imm):
        sa, bv = slots[a.name], b.value

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                regs[dst] = fn(regs[sa], bv)
                frame.index += 1
            return latency

    elif isinstance(a, Imm) and isinstance(b, Reg):
        av, sb = a.value, slots[b.name]

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                regs[dst] = fn(av, regs[sb])
                frame.index += 1
            return latency

    else:
        get_a, get_b = _getter(a, slots), _getter(b, slots)

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                frame.regs[dst] = fn(get_a(thread), get_b(thread))
                frame.index += 1
            return latency

    return run


def _decode_unary(instr, latency, slots):
    fn = _UNARY_EVAL[instr.opcode]
    dst = slots[instr.dst.name]
    operand = instr.operands[0]
    if isinstance(operand, Reg):
        src = slots[operand.name]

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                regs[dst] = fn(regs[src])
                frame.index += 1
            return latency

    else:
        get = _getter(operand, slots)

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                frame.regs[dst] = fn(get(thread))
                frame.index += 1
            return latency

    return run


def _decode_const(instr, latency, slots):
    dst = slots[instr.dst.name]
    value = instr.operands[0].value

    def run(executor, warp, group):
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = value
            frame.index += 1
        return latency

    return run


def _decode_sel(instr, latency, slots):
    dst = slots[instr.dst.name]
    get_pred = _getter(instr.operands[0], slots)
    get_true = _getter(instr.operands[1], slots)
    get_false = _getter(instr.operands[2], slots)

    def run(executor, warp, group):
        for thread in group:
            picked = (
                get_true(thread)
                if get_pred(thread) != 0
                else get_false(thread)
            )
            frame = thread.frames[-1]
            frame.regs[dst] = picked
            frame.index += 1
        return latency

    return run


def _decode_fma(instr, latency, slots):
    dst = slots[instr.dst.name]
    a, b, c = instr.operands
    if isinstance(a, Reg) and isinstance(b, Imm) and isinstance(c, Imm):
        # The dominant shape in the Table 2 kernels: acc = fma(acc, k1, k2).
        sa, bv, cv = slots[a.name], b.value, c.value

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                regs[dst] = regs[sa] * bv + cv
                frame.index += 1
            return latency

    elif isinstance(a, Reg) and isinstance(b, Reg) and isinstance(c, Reg):
        sa, sb, sc = slots[a.name], slots[b.name], slots[c.name]

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                regs = frame.regs
                regs[dst] = regs[sa] * regs[sb] + regs[sc]
                frame.index += 1
            return latency

    else:
        get_a = _getter(a, slots)
        get_b = _getter(b, slots)
        get_c = _getter(c, slots)

        def run(executor, warp, group):
            for thread in group:
                frame = thread.frames[-1]
                frame.regs[dst] = (
                    get_a(thread) * get_b(thread) + get_c(thread)
                )
                frame.index += 1
            return latency

    return run


def _decode_identity(instr, latency, slots, attr):
    dst = slots[instr.dst.name]

    def run(executor, warp, group):
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = getattr(thread, attr)
            frame.index += 1
        return latency

    return run


def _decode_rand(instr, latency, slots):
    dst = slots[instr.dst.name]

    def run(executor, warp, group):
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = thread.rng.uniform()
            frame.index += 1
        return latency

    return run


def _decode_cta_value(instr, latency, slots, attr):
    # CTA identity is launch-uniform but *not* decode-time constant: the
    # decoded program is shared across every launch (and every CTA) of the
    # module, so the value must come from the executor's CTA context at run
    # time, never be baked into the closure.
    dst = slots[instr.dst.name]
    opcode = instr.opcode

    def run(executor, warp, group):
        value = getattr(executor._cta_ctx(opcode), attr)
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = value
            frame.index += 1
        return latency

    return run


def _decode_shld(instr, latency, slots):
    dst = slots[instr.dst.name]
    get_addr = _getter(instr.operands[0], slots)
    opcode = instr.opcode

    def run(executor, warp, group):
        load = executor._cta_ctx(opcode).shared().load
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = load(get_addr(thread))
            frame.index += 1
        return latency

    return run


def _decode_shst(instr, latency, slots):
    get_addr = _getter(instr.operands[0], slots)
    get_value = _getter(instr.operands[1], slots)
    opcode = instr.opcode

    def run(executor, warp, group):
        store = executor._cta_ctx(opcode).shared().store
        for thread in group:
            store(get_addr(thread), get_value(thread))
            thread.frames[-1].index += 1
        return latency

    return run


def _decode_shatom(instr, latency, slots):
    dst = slots[instr.dst.name]
    get_addr = _getter(instr.operands[0], slots)
    get_value = _getter(instr.operands[1], slots)
    opcode = instr.opcode

    def run(executor, warp, group):
        atom_add = executor._cta_ctx(opcode).shared().atom_add
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = atom_add(get_addr(thread), get_value(thread))
            frame.index += 1
        return latency

    return run


def _decode_ctasync(instr, latency):
    opcode = instr.opcode

    def run(executor, warp, group):
        ctx = executor._cta_ctx(opcode)
        for thread in group:
            thread.frames[-1].index += 1  # resume past the wait when released
            ctx.arrive(thread)
        ctx.maybe_release()
        return latency

    return run


def _decode_ld(instr, cost_model, slots):
    dst = slots[instr.dst.name]
    get_addr = _getter(instr.operands[0], slots)
    memory_cost = cost_model.memory_cost

    def run(executor, warp, group):
        load = executor.memory.load
        addresses = []
        append = addresses.append
        for thread in group:
            addr = get_addr(thread)
            append(addr)
            frame = thread.frames[-1]
            frame.regs[dst] = load(addr)
            frame.index += 1
        return memory_cost(Opcode.LD, addresses)

    return run


def _decode_st(instr, cost_model, slots):
    get_addr = _getter(instr.operands[0], slots)
    get_value = _getter(instr.operands[1], slots)
    memory_cost = cost_model.memory_cost

    def run(executor, warp, group):
        store = executor.memory.store
        addresses = []
        append = addresses.append
        for thread in group:
            addr = get_addr(thread)
            value = get_value(thread)
            append(addr)
            store(addr, value)
            thread.store_trace.append((int(addr), value))
            thread.frames[-1].index += 1
        return memory_cost(Opcode.ST, addresses)

    return run


def _decode_atomadd(instr, cost_model, slots):
    dst = slots[instr.dst.name]
    get_addr = _getter(instr.operands[0], slots)
    get_value = _getter(instr.operands[1], slots)
    memory_cost = cost_model.memory_cost

    def run(executor, warp, group):
        atom_add = executor.memory.atom_add
        addresses = []
        append = addresses.append
        for thread in group:
            addr = get_addr(thread)
            value = get_value(thread)
            append(addr)
            frame = thread.frames[-1]
            frame.regs[dst] = atom_add(addr, value)
            frame.index += 1
        return memory_cost(Opcode.ATOMADD, addresses)

    return run


def _decode_bra(instr, latency, slots):
    target = instr.operands[0].name

    def run(executor, warp, group):
        for thread in group:
            frame = thread.frames[-1]
            frame.block_name = target
            frame.index = 0
        return latency

    return run


def _decode_cbr(instr, latency, slots):
    get_pred = _getter(instr.operands[0], slots)
    true_target = instr.operands[1].name
    false_target = instr.operands[2].name

    def run(executor, warp, group):
        for thread in group:
            frame = thread.frames[-1]
            frame.block_name = (
                true_target if get_pred(thread) != 0 else false_target
            )
            frame.index = 0
        return latency

    return run


def _decode_call(instr, latency, slots, module):
    callee = module.function(instr.operands[0].name)
    entry_name = callee.entry.name
    # Callee registers resolve in the *callee's* slot space; the argument
    # getters resolve in the caller's.
    param_slots = [callee.reg_slots()[p.name] for p in callee.params]
    getters = [_getter(arg, slots) for arg in instr.operands[1:]]
    # ret_dst stays a Reg: Frame linkage writes it back via Frame.write.
    ret_dst = instr.dst

    def run(executor, warp, group):
        for thread in group:
            values = [get(thread) for get in getters]
            frame = Frame(callee, entry_name, ret_dst=ret_dst)
            thread.frames.append(frame)
            regs = frame.regs
            for slot, value in zip(param_slots, values):
                regs[slot] = value
        return latency

    return run


def _decode_ret(instr, latency, slots):
    get_value = _getter(instr.operands[0], slots) if instr.operands else None

    def run(executor, warp, group):
        for thread in group:
            value = get_value(thread) if get_value is not None else None
            if thread.pop_frame(value):
                warp.barriers.withdraw_from_all(thread.lane)
        return latency

    return run


def _decode_exit(instr, latency):
    def run(executor, warp, group):
        for thread in group:
            thread.exit()
            warp.barriers.withdraw_from_all(thread.lane)
        return latency

    return run


def _decode_bssy(instr, latency, slots):
    operand = instr.operands[0]
    if isinstance(operand, Barrier):
        # Literal barrier (the common compiler output): resolve the
        # record once per issue instead of once per thread.
        name = operand.name

        def run(executor, warp, group):
            barrier = warp.barriers.get(name)
            for thread in group:
                barrier.join(thread.lane)
                thread.frames[-1].index += 1
            return latency

        return run
    get_name = _barrier_getter(operand, slots)

    def run(executor, warp, group):
        barriers = warp.barriers
        for thread in group:
            barriers.get(get_name(thread)).join(thread.lane)
            thread.frames[-1].index += 1
        return latency

    return run


def _decode_bsync(instr, latency, slots):
    operand = instr.operands[0]
    if isinstance(operand, Barrier):
        name = operand.name

        def run(executor, warp, group):
            barrier = warp.barriers.get(name)
            for thread in group:
                thread.frames[-1].index += 1  # resume past the wait
                if barrier.park(thread.lane, ALL_MEMBERS):
                    thread.park(name)
                # Not a member: hardware pass-through.
            return latency

        return run
    get_name = _barrier_getter(operand, slots)

    def run(executor, warp, group):
        barriers = warp.barriers
        for thread in group:
            name = get_name(thread)
            thread.frames[-1].index += 1  # resume past the wait when released
            if barriers.get(name).park(thread.lane, ALL_MEMBERS):
                thread.park(name)
            # Not a member: hardware pass-through.
        return latency

    return run


def _decode_bsyncsoft(instr, latency, slots):
    operand = instr.operands[0]
    get_threshold = _getter(instr.operands[1], slots)
    if isinstance(operand, Barrier):
        name = operand.name

        def run(executor, warp, group):
            barrier = warp.barriers.get(name)
            for thread in group:
                threshold = int(get_threshold(thread))
                thread.frames[-1].index += 1
                if threshold <= 1:
                    # Trivial threshold: never worth parking.
                    continue
                if barrier.park(thread.lane, threshold):
                    thread.park(name)
            return latency

        return run
    get_name = _barrier_getter(operand, slots)

    def run(executor, warp, group):
        barriers = warp.barriers
        for thread in group:
            name = get_name(thread)
            threshold = int(get_threshold(thread))
            thread.frames[-1].index += 1
            if threshold <= 1:
                # Trivial threshold: never worth parking.
                continue
            if barriers.get(name).park(thread.lane, threshold):
                thread.park(name)
        return latency

    return run


def _decode_bbreak(instr, latency, slots):
    operand = instr.operands[0]
    if isinstance(operand, Barrier):
        name = operand.name

        def run(executor, warp, group):
            barrier = warp.barriers.get(name)
            for thread in group:
                barrier.withdraw(thread.lane)
                thread.frames[-1].index += 1
            return latency

        return run
    get_name = _barrier_getter(operand, slots)

    def run(executor, warp, group):
        barriers = warp.barriers
        for thread in group:
            barriers.get(get_name(thread)).withdraw(thread.lane)
            thread.frames[-1].index += 1
        return latency

    return run


def _decode_bmov(instr, latency, slots):
    dst = slots[instr.dst.name]
    get_name = _barrier_getter(instr.operands[0], slots)

    def run(executor, warp, group):
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = get_name(thread)
            frame.index += 1
        return latency

    return run


def _decode_barcnt(instr, latency, slots):
    dst = slots[instr.dst.name]
    get_name = _barrier_getter(instr.operands[0], slots)

    def run(executor, warp, group):
        barriers = warp.barriers
        for thread in group:
            frame = thread.frames[-1]
            frame.regs[dst] = barriers.get(get_name(thread)).arrived_count
            frame.index += 1
        return latency

    return run


def _decode_warpsync(instr, latency):
    def run(executor, warp, group):
        barrier = warp.barriers.get(_WARPSYNC_BARRIER)
        # Every live thread participates in a full-warp sync.
        for live in warp.live_threads():
            barrier.join(live.lane)
        for thread in group:
            thread.frames[-1].index += 1
            if barrier.park(thread.lane, ALL_MEMBERS):
                thread.park(_WARPSYNC_BARRIER)
        return latency

    return run


def _decode_advance(instr, latency):
    def run(executor, warp, group):
        for thread in group:
            thread.frames[-1].index += 1
        return latency

    return run


def _decode_delay(instr):
    cycles = int(instr.operands[0].value)

    def run(executor, warp, group):
        for thread in group:
            thread.frames[-1].index += 1
        return cycles

    return run


def _decode_unhandled(instr):
    opcode = instr.opcode

    def run(executor, warp, group):
        raise SimulationError(f"unhandled opcode {opcode.value}")

    return run


def _decode_instruction(instr, cost_model, module, slots):
    """Build the specialized handler for one instruction.

    ``slots`` is the owning function's register allocation; every register
    operand is resolved to its slot index here, at decode time.
    """
    opcode = instr.opcode
    latency = cost_model.latency(opcode)
    if opcode in _BINARY_EVAL:
        run = _decode_binary(instr, latency, slots)
    elif opcode in _UNARY_EVAL:
        run = _decode_unary(instr, latency, slots)
    elif opcode is Opcode.CONST:
        run = _decode_const(instr, latency, slots)
    elif opcode is Opcode.SEL:
        run = _decode_sel(instr, latency, slots)
    elif opcode is Opcode.FMA:
        run = _decode_fma(instr, latency, slots)
    elif opcode is Opcode.TID:
        run = _decode_identity(instr, latency, slots, "tid")
    elif opcode is Opcode.LANE:
        run = _decode_identity(instr, latency, slots, "lane")
    elif opcode is Opcode.WARPID:
        run = _decode_identity(instr, latency, slots, "warp_id")
    elif opcode is Opcode.RAND:
        run = _decode_rand(instr, latency, slots)
    elif opcode is Opcode.CTAID:
        run = _decode_cta_value(instr, latency, slots, "cta_id")
    elif opcode is Opcode.CTADIM:
        run = _decode_cta_value(instr, latency, slots, "cta_dim")
    elif opcode is Opcode.NCTA:
        run = _decode_cta_value(instr, latency, slots, "grid_dim")
    elif opcode is Opcode.SHLD:
        run = _decode_shld(instr, latency, slots)
    elif opcode is Opcode.SHST:
        run = _decode_shst(instr, latency, slots)
    elif opcode is Opcode.SHATOM:
        run = _decode_shatom(instr, latency, slots)
    elif opcode is Opcode.LD:
        run = _decode_ld(instr, cost_model, slots)
    elif opcode is Opcode.ST:
        run = _decode_st(instr, cost_model, slots)
    elif opcode is Opcode.ATOMADD:
        run = _decode_atomadd(instr, cost_model, slots)
    elif opcode is Opcode.BRA:
        run = _decode_bra(instr, latency, slots)
    elif opcode is Opcode.CBR:
        run = _decode_cbr(instr, latency, slots)
    elif opcode is Opcode.CALL:
        run = _decode_call(instr, latency, slots, module)
    elif opcode is Opcode.RET:
        run = _decode_ret(instr, latency, slots)
    elif opcode is Opcode.EXIT:
        run = _decode_exit(instr, latency)
    elif opcode is Opcode.BSSY:
        run = _decode_bssy(instr, latency, slots)
    elif opcode is Opcode.BSYNC:
        run = _decode_bsync(instr, latency, slots)
    elif opcode is Opcode.BSYNCSOFT:
        run = _decode_bsyncsoft(instr, latency, slots)
    elif opcode is Opcode.BBREAK:
        run = _decode_bbreak(instr, latency, slots)
    elif opcode is Opcode.BMOV:
        run = _decode_bmov(instr, latency, slots)
    elif opcode is Opcode.BARCNT:
        run = _decode_barcnt(instr, latency, slots)
    elif opcode is Opcode.WARPSYNC:
        run = _decode_warpsync(instr, latency)
    elif opcode is Opcode.CTASYNC:
        run = _decode_ctasync(instr, latency)
    elif opcode in (Opcode.NOP, Opcode.PREDICT):
        run = _decode_advance(instr, latency)
    elif opcode is Opcode.DELAY:
        run = _decode_delay(instr)
    else:
        run = _decode_unhandled(instr)
    return DecodedInstruction(instr, latency, run)


# ---------------------------------------------------------------------------
# Program-level decode with lazy per-block flattening
# ---------------------------------------------------------------------------
class DecodedProgram:
    """All decoded blocks of one module under one cost model.

    Blocks decode lazily on first execution, so modules with unexecuted
    functions pay nothing for them. ``entry(pc)`` is the per-issue lookup;
    ``segment_at(pc)`` is the fused layer's segment lookup.
    """

    def __init__(self, module, cost_model):
        self.module = module
        self.cost_model = cost_model
        self.token = structure_token(module)
        self._blocks = {}    # (function name, block name) -> tuple of decoded
        self._segments = {}  # (function name, block name) -> SegmentTable
        self._slot_kinds = {}  # function name -> soa.classify_slots result

    def entry(self, pc):
        """The :class:`DecodedInstruction` at ``pc``."""
        function, block, index = pc
        entries = self._blocks.get((function, block))
        if entries is None:
            entries = self._decode_block(function, block)
        if index >= len(entries):
            raise SimulationError(
                f"PC past end of block @{function}/{block}:{index} "
                "(missing terminator?)"
            )
        return entries[index]

    def segment_at(self, pc):
        """The :class:`~repro.simt.segments.Segment` starting at ``pc``, or
        None when no fusable segment (length >= 2) starts there."""
        function, block, index = pc
        return self._segment_table(function, block).at(index)

    def segment_bounded(self, pc, length):
        """Like :meth:`segment_at`, truncated to ``length`` instructions
        (the warp batcher's lockstep epoch length)."""
        function, block, index = pc
        return self._segment_table(function, block).at_bounded(index, length)

    def _segment_table(self, function, block):
        table = self._segments.get((function, block))
        if table is None:
            entries = self._blocks.get((function, block))
            if entries is None:
                entries = self._decode_block(function, block)
            table = SegmentTable(
                function,
                block,
                entries,
                self.module.function(function).reg_slots(),
                self._function_slot_kinds(function),
            )
            self._segments[(function, block)] = table
        return table

    def _function_slot_kinds(self, function):
        """Cached :func:`repro.simt.soa.classify_slots` kinds, or None when
        numpy is unavailable (segments then skip SoA chunk compilation)."""
        if not _soa.soa_available():
            return None
        kinds = self._slot_kinds.get(function)
        if kinds is None:
            kinds = _soa.classify_slots(self.module.function(function))
            self._slot_kinds[function] = kinds
        return kinds

    def _decode_block(self, function, block):
        fn = self.module.function(function)
        slots = fn.reg_slots()
        entries = tuple(
            _decode_instruction(instr, self.cost_model, self.module, slots)
            for instr in fn.block(block).instructions
        )
        self._blocks[(function, block)] = entries
        return entries


def _cost_key(cost_model):
    return (
        tuple(sorted((op.value, lat) for op, lat in cost_model.latencies.items())),
        cost_model.segment_words,
        cost_model.load_segment_cost,
        cost_model.store_segment_cost,
    )


#: module -> {cost key: DecodedProgram}; weak so dead modules free decodes.
_DECODE_CACHE = weakref.WeakKeyDictionary()


def decode_program(module, cost_model):
    """The (cached) :class:`DecodedProgram` for ``module``/``cost_model``."""
    try:
        per_module = _DECODE_CACHE.setdefault(module, {})
    except TypeError:
        # Module not weak-referenceable: decode without caching.
        ENGINE_COUNTERS.fastpath_decode_cache_miss += 1
        return DecodedProgram(module, cost_model)
    key = _cost_key(cost_model)
    program = per_module.get(key)
    if program is None or program.token != structure_token(module):
        ENGINE_COUNTERS.fastpath_decode_cache_miss += 1
        program = DecodedProgram(module, cost_model)
        per_module[key] = program
    else:
        ENGINE_COUNTERS.fastpath_decode_cache_hit += 1
    return program


def clear_decode_cache():
    """Drop every cached decode (tests and long-lived servers).

    Compiled JIT code is keyed (weakly) by the segments the decode cache
    owns, so it is dropped in the same breath — a fresh decode must
    never resurrect stale generated code."""
    _DECODE_CACHE.clear()
    from repro.simt.jit import clear_code_cache

    clear_code_cache()
