"""Tiered segment JIT: hot fused segments compiled to specialized Python.

Segment fusion (:mod:`repro.simt.segments`) already executes straight-line
runs as superinstructions, but each pure chunk is still *interpreted*: one
Python closure call per instruction per thread, dispatched through the
chunk's micro-op tuple. For the hot segments of a sweep — executed tens of
thousands of times against a handful of distinct shapes — that remaining
per-op dispatch is the dominant serial cost.

This module lowers a hot :class:`~repro.simt.segments.Segment` into
**generated Python source**: straight-line slot reads and writes on the
``Frame.regs`` list, one statement per instruction, no closures, no
dispatch, compiled once with :func:`compile`/``exec``. Lowering reuses the
executor's own eval tables as its semantic reference — every generated
expression is a textual specialization of the corresponding
``_BINARY_EVAL`` / ``_UNARY_EVAL`` lambda, preserving evaluation order
exactly (UNDEF raises at the same instruction, ``DIV``/``REM``/``SQRT``/
``LOG`` guards short-circuit identically, NaN and signed zeros flow
through untouched). Statically-known values (``CONST`` results and
anything computable from them) are folded at codegen time with the same
veto-on-any-exception rule as :func:`repro.simt.soa._fold_scalar`; folded
slots are written once at the end of their chunk, which is the same
"virtual constant" containment the SoA chunk compiler already pinned as
bit-identical. Memory ops, barriers, and the terminating branch keep
their decoded handlers — the generated function calls them at exactly the
interpreter's split points.

**Tiering.** Codegen costs real time, so cold segments never pay it:
every segment execution below :data:`JIT_THRESHOLD` runs the interpreted
steps while a per-segment hit counter climbs; crossing the threshold
tiers the segment up through a two-level code cache. Level 1 is the
segment object itself (``Segment.jit_fns``); level 2 is the process-wide
:class:`SegmentCodeCache`, keyed like ``ProgramCache`` by segment
identity (weak) x engine-knob fingerprint x lane-width variant, so a
knob flip invalidates compiled code and flipping it back is a cache hit,
not a recompile. Any codegen failure **deopts** the segment — it runs
interpreted forever after, counted in ``jit.deopts``, never wrong.

Escape hatches mirror every prior layer: ``REPRO_JIT=0``,
:func:`set_jit` / :func:`jit_disabled`, ``GPUMachine(jit=False)``. The
conformance matrix pins jit-on (with a forced threshold of 0) against
jit-off over the corpus, modes, schedulers, and fuzzed kernels.
"""

from __future__ import annotations

import math
import os
import weakref
from contextlib import contextmanager

from repro.core.program_cache import freeze_options
from repro.ir.instructions import Imm, Opcode, Reg
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.spans import SpanRecorder
from repro.simt import soa as _soa
from repro.simt.executor import _BINARY_EVAL, _UNARY_EVAL

__all__ = [
    "JIT_THRESHOLD",
    "SegmentCodeCache",
    "CODE_CACHE",
    "clear_code_cache",
    "codegen_spans",
    "compiled_segments",
    "jit_disabled",
    "jit_enabled",
    "jit_post_mortem",
    "jit_threshold",
    "knob_fingerprint",
    "last_executed_source",
    "set_jit",
    "set_jit_threshold",
    "tier_up",
]

#: Global default for new machines/executors. Flip with ``set_jit`` or the
#: ``REPRO_JIT`` environment variable (0/false/off disables).
JIT_ENABLED = os.environ.get("REPRO_JIT", "1").lower() not in (
    "0",
    "false",
    "off",
)

#: Segment executions before tier-up. 0 compiles on first execution
#: (tests force this); the default keeps one-shot launches codegen-free
#: while anything sweep-shaped tiers up almost immediately. Override with
#: ``REPRO_JIT_THRESHOLD`` or :func:`set_jit_threshold`.
JIT_THRESHOLD = int(os.environ.get("REPRO_JIT_THRESHOLD", "50"))

#: Bumped whenever generated-code shape changes; part of every cache key
#: so stale compiled code can never outlive its codegen.
_CODEGEN_VERSION = 2

#: Modelled cost of one generated straight-line op, in the SoA cost
#: model's units. ``soa._COST_TM`` (17) prices the *interpreted* micro-op
#: the SoA election displaced; compiled code has no per-op dispatch, so
#: the break-even for calling a vector closure from generated code is
#: re-run against this cheaper thread-major baseline (see
#: :func:`_vector_still_wins`).
_JIT_COST_TM = 5


def jit_enabled():
    """The current global segment-JIT default."""
    return JIT_ENABLED


def set_jit(enabled):
    """Set the global segment-JIT default; returns the previous value."""
    global JIT_ENABLED
    previous = JIT_ENABLED
    JIT_ENABLED = bool(enabled)
    return previous


@contextmanager
def jit_disabled():
    """Run a block with interpreted segment execution (JIT off)."""
    previous = set_jit(False)
    try:
        yield
    finally:
        set_jit(previous)


def jit_threshold():
    """The current tier-up threshold (segment executions before codegen)."""
    return JIT_THRESHOLD


def set_jit_threshold(n):
    """Set the tier-up threshold; returns the previous value.

    Takes effect for executors built afterwards (the threshold is read at
    launch setup, never per segment execution).
    """
    global JIT_THRESHOLD
    previous = JIT_THRESHOLD
    JIT_THRESHOLD = int(n)
    return previous


def knob_fingerprint():
    """The engine-knob fingerprint compiled code is keyed under.

    The SoA knobs participate because the lane-width variant choice and
    the vector chunks baked into a segment's ``soa_steps`` depend on
    them; a knob change makes previously-compiled code stale (flipping
    the knob back is a :data:`CODE_CACHE` hit, not a recompile).
    """
    return freeze_options(
        {
            "codegen": _CODEGEN_VERSION,
            "soa": _soa.SOA_ENABLED,
            "soa_lanes": _soa.MIN_SOA_LANES,
            "soa_min_gain": _soa.MIN_VECTOR_GAIN,
        }
    )


# ---------------------------------------------------------------------------
# The tiered code cache
# ---------------------------------------------------------------------------
class SegmentCodeCache:
    """Process-wide compiled-code cache, keyed like ``ProgramCache``.

    Outer key: the :class:`~repro.simt.segments.Segment` itself, held
    weakly — segments live on the (weak) decode cache, so dead modules
    free their compiled code. Inner key: ``(variant, knob fingerprint)``.
    Values are ``(fn, source)`` pairs; ``fn`` is ``False`` for a segment
    codegen vetoed (a deopt is cached too — vetoes are deterministic, so
    retrying would only burn time).
    """

    def __init__(self):
        self._cache = weakref.WeakKeyDictionary()
        self.hits = 0
        self.misses = 0

    def lookup(self, segment, key):
        per_segment = self._cache.get(segment)
        if per_segment is None:
            return None
        return per_segment.get(key)

    def store(self, segment, key, fn, source):
        try:
            per_segment = self._cache.setdefault(segment, {})
        except TypeError:  # pragma: no cover - segments are weakref-able
            return
        per_segment[key] = (fn, source)

    def clear(self):
        """Drop every compiled segment (tests and long-lived servers)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def stats(self):
        return {
            "segments": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
        }

    def entries(self):
        """Live ``(segment, variant, fn, source)`` records (telemetry)."""
        records = []
        for segment, per_segment in self._cache.items():
            for (variant, _fingerprint), (fn, source) in per_segment.items():
                records.append((segment, variant, fn, source))
        return records


#: The process-global compiled-segment cache.
CODE_CACHE = SegmentCodeCache()


def clear_code_cache():
    """Drop every compiled segment (the decode-cache clear calls this)."""
    CODE_CACHE.clear()


#: Wall-time spans for every codegen run (repro.obs.spans shape); pure
#: timing spans — segments have no module-level IR to delta.
_CODEGEN_SPANS = SpanRecorder()


def codegen_spans():
    """The codegen :class:`~repro.obs.spans.SpanRecorder` (telemetry)."""
    return _CODEGEN_SPANS


#: The compiled function of the last JIT-executed segment (set by
#: ``Segment.execute``); its ``__jit_source__`` feeds post-mortems.
LAST_EXECUTED = None


def last_executed_source():
    """``(segment description, generated source)`` of the most recently
    executed JIT segment, or None."""
    fn = LAST_EXECUTED
    if fn is None:
        return None
    return fn.__jit_segment__, fn.__jit_source__


def jit_post_mortem():
    """The ``extra`` dict post-mortem reports carry for JIT launches:
    the generated source of the last-executed JIT segment, or None."""
    last = last_executed_source()
    if last is None:
        return None
    segment, source = last
    return {"jit": {"segment": segment, "source": source}}


def compiled_segments():
    """Telemetry records for every live compiled segment, hottest first.

    ``hits`` is the segment's interpreted execution count at tier-up
    (its hotness when codegen fired); deopted segments carry
    ``deopt: True`` and no source.
    """
    records = []
    for segment, variant, fn, source in CODE_CACHE.entries():
        records.append(
            {
                "segment": (
                    f"@{segment.fname}/{segment.bname}:{segment.start}"
                ),
                "slots": segment.n,
                "variant": "soa" if variant else "tm",
                "hits": segment.jit_hits,
                "deopt": fn is False,
                "source": source if fn is not False else None,
            }
        )
    records.sort(key=lambda r: (-r["hits"], r["segment"], r["variant"]))
    return records


# ---------------------------------------------------------------------------
# Lowering: segment -> specialized Python source
# ---------------------------------------------------------------------------
class CodegenVeto(Exception):
    """Raised when a segment cannot be lowered bit-identically; the
    segment deopts (runs interpreted forever) instead of risking drift."""


#: Expression templates, one per eval-table lambda, preserving the
#: lambda's evaluation order exactly: conditional expressions test their
#: guard first, so an UNDEF operand raises at the same read the closure
#: path raises at. ``int`` is the executor's ``_as_int``; ``{a} != 0`` is
#: its ``_truthy``.
_BINARY_EXPR = {
    Opcode.ADD: "({a} + {b})",
    Opcode.SUB: "({a} - {b})",
    Opcode.MUL: "({a} * {b})",
    Opcode.DIV: "({a} / {b} if {b} != 0 else 0.0)",
    Opcode.REM: "(int({a}) % int({b}) if int({b}) != 0 else 0)",
    Opcode.MIN: "min({a}, {b})",
    Opcode.MAX: "max({a}, {b})",
    Opcode.AND: "(int({a}) & int({b}))",
    Opcode.OR: "(int({a}) | int({b}))",
    Opcode.XOR: "(int({a}) ^ int({b}))",
    Opcode.SHL: "(int({a}) << int({b}))",
    Opcode.SHR: "(int({a}) >> int({b}))",
    Opcode.CMPLT: "(1 if {a} < {b} else 0)",
    Opcode.CMPLE: "(1 if {a} <= {b} else 0)",
    Opcode.CMPGT: "(1 if {a} > {b} else 0)",
    Opcode.CMPGE: "(1 if {a} >= {b} else 0)",
    Opcode.CMPEQ: "(1 if {a} == {b} else 0)",
    Opcode.CMPNE: "(1 if {a} != {b} else 0)",
}

_UNARY_EXPR = {
    Opcode.MOV: "{a}",
    Opcode.NEG: "(-{a})",
    Opcode.NOT: "(0 if {a} != 0 else 1)",
    Opcode.SQRT: "(_sqrt({a}) if {a} > 0 else 0.0)",
    Opcode.SIN: "_sin({a})",
    Opcode.COS: "_cos({a})",
    Opcode.EXP: "_exp(min({a}, 60.0))",
    Opcode.LOG: "(_log({a}) if {a} > 0 else 0.0)",
    Opcode.FLOOR: "int(_floor({a}))",
    Opcode.ABS: "abs({a})",
}

#: Thread-intrinsic expressions (``_t`` is the loop's thread).
_THREAD_EXPR = {
    Opcode.TID: "_t.tid",
    Opcode.LANE: "_t.lane",
    Opcode.WARPID: "_t.warp_id",
    Opcode.RAND: "_t.rng.uniform()",
}

#: Returned by :func:`_fold` when an instruction cannot be folded.
_NO_FOLD = object()


class _Namespace:
    """The generated function's global namespace builder: the math
    functions bound directly (no per-call attribute lookup), decoded
    handlers, SoA vector chunks, and interned constants for values with
    no exact literal form."""

    def __init__(self):
        self.bindings = {
            "_sqrt": math.sqrt,
            "_sin": math.sin,
            "_cos": math.cos,
            "_exp": math.exp,
            "_log": math.log,
            "_floor": math.floor,
        }
        self._const_ids = {}

    def bind(self, prefix, value):
        name = f"{prefix}{len(self.bindings)}"
        self.bindings[name] = value
        return name

    def literal(self, value):
        """An expression producing exactly ``value``.

        ints and finite floats round-trip through ``repr`` (CPython float
        repr is shortest-exact); anything else — inf/nan, bools, strings
        — is interned as a namespace constant so the generated code
        reuses the decoded program's own object.
        """
        if type(value) is int or (
            type(value) is float and math.isfinite(value)
        ):
            text = repr(value)
            return f"({text})" if text.startswith("-") else text
        key = (type(value), id(value))
        name = self._const_ids.get(key)
        if name is None:
            name = self.bind("_k", value)
            self._const_ids[key] = name
        return name


def _fold(instr, known, slots):
    """Statically evaluate an instruction whose operands are all known
    scalars, via the executor's own eval tables; :data:`_NO_FOLD` (and a
    runtime statement) otherwise. Mirrors ``soa._fold_scalar``: lazy SEL,
    ``a * b + c`` FMA, veto on any exception or non-int/float result."""
    opcode = instr.opcode

    def value_of(operand):
        if isinstance(operand, Imm):
            value = operand.value
            return value if type(value) in (int, float) else _NO_FOLD
        if isinstance(operand, Reg):
            return known.get(slots[operand.name], _NO_FOLD)
        return _NO_FOLD

    if opcode is Opcode.CONST:
        return value_of(instr.operands[0])
    if opcode is Opcode.SEL:
        pred = value_of(instr.operands[0])
        if pred is _NO_FOLD:
            return _NO_FOLD
        # Only the picked operand is evaluated (the executor's SEL is
        # lazy), so an unpicked unknown must not block the fold.
        return value_of(instr.operands[1 if pred != 0 else 2])
    values = [value_of(operand) for operand in instr.operands]
    if any(value is _NO_FOLD for value in values):
        return _NO_FOLD
    try:
        if opcode is Opcode.FMA:
            a, b, c = values
            value = a * b + c
        elif opcode in _BINARY_EVAL:
            value = _BINARY_EVAL[opcode](values[0], values[1])
        elif opcode in _UNARY_EVAL:
            value = _UNARY_EVAL[opcode](values[0])
        else:
            return _NO_FOLD
    except Exception:
        return _NO_FOLD
    return value if type(value) in (int, float) else _NO_FOLD


def _lower_chunk(entries, end_index, slots, ns, lines, indent):
    """Emit one pure chunk as a straight-line per-thread loop body.

    Statements write ``_r`` (the thread's regs list) in program order;
    statically-known slots are folded at codegen time and written once at
    the end of the chunk (the SoA chunk compiler's pinned "virtual
    constant" containment), then the frame index advances once. A value
    re-read later in its chunk is additionally bound to a local (``_s<n>``)
    so those reads are LOAD_FASTs instead of list subscripts — the regs
    write still happens in program order, so register state (and UNDEF
    raising, which only happens on *use*) is untouched.
    """
    # Plan pass: resolve folding and operands. Each runtime op becomes
    # (instr, dst slot, operand descriptors) with descriptors already
    # resolved against the fold state: ("lit", value) | ("slot", n).
    known = {}
    plan = []

    def descriptor(operand):
        if isinstance(operand, Imm):
            return ("lit", operand.value)
        if isinstance(operand, Reg):
            slot = slots[operand.name]
            if slot in known:
                return ("lit", known[slot])
            return ("slot", slot)
        raise CodegenVeto(f"unsupported operand {operand!r}")

    for entry in entries:
        instr = entry.instr
        opcode = instr.opcode
        if opcode in (Opcode.NOP, Opcode.PREDICT, Opcode.DELAY):
            continue  # no register effect; index advance folded below
        value = _fold(instr, known, slots)
        if value is not _NO_FOLD:
            known[slots[instr.dst.name]] = value
            continue
        operands = tuple(descriptor(op) for op in instr.operands)
        dst = slots[instr.dst.name]
        plan.append((instr, dst, operands))
        known.pop(dst, None)

    # Liveness pass: is the value defined at position i re-read before
    # the next definition of its slot? Only then is the local binding a
    # win (the ``_r`` write happens either way).
    reused = []
    for i, (_instr, dst, _operands) in enumerate(plan):
        live = False
        for _later, later_dst, later_operands in plan[i + 1:]:
            if any(kind == "slot" and payload == dst
                   for kind, payload in later_operands):
                live = True
                break
            if later_dst == dst:
                break
        reused.append(live)

    # Emit pass.
    body = []
    bound = {}  # slot -> local name holding its current value

    def operand_expr(operand):
        kind, payload = operand
        if kind == "lit":
            return ns.literal(payload)
        name = bound.get(payload)
        return name if name is not None else f"_r[{payload}]"

    for (instr, dst, operands), live in zip(plan, reused):
        opcode = instr.opcode
        if opcode in _BINARY_EXPR:
            a, b = operands
            expr = _BINARY_EXPR[opcode].format(
                a=operand_expr(a), b=operand_expr(b)
            )
        elif opcode in _UNARY_EXPR:
            expr = _UNARY_EXPR[opcode].format(a=operand_expr(operands[0]))
        elif opcode in _THREAD_EXPR:
            expr = _THREAD_EXPR[opcode]
        elif opcode is Opcode.CONST:
            expr = operand_expr(operands[0])
        elif opcode is Opcode.SEL:
            expr = "({t} if {p} != 0 else {f})".format(
                p=operand_expr(operands[0]),
                t=operand_expr(operands[1]),
                f=operand_expr(operands[2]),
            )
        elif opcode is Opcode.FMA:
            expr = "({a} * {b} + {c})".format(
                a=operand_expr(operands[0]),
                b=operand_expr(operands[1]),
                c=operand_expr(operands[2]),
            )
        else:
            raise CodegenVeto(f"no lowering for pure opcode {opcode.value}")
        bound.pop(dst, None)
        if live:
            name = f"_s{dst}"
            body.append(f"{name} = {expr}")
            body.append(f"_r[{dst}] = {name}")
            bound[dst] = name
        else:
            body.append(f"_r[{dst}] = {expr}")
    for slot in sorted(known):
        body.append(f"_r[{slot}] = {ns.literal(known[slot])}")

    if not body:
        lines.append(f"{indent}for _t in group:")
        lines.append(f"{indent}    _t.frames[-1].index = {end_index}")
        return
    lines.append(f"{indent}for _t in group:")
    lines.append(f"{indent}    _f = _t.frames[-1]")
    lines.append(f"{indent}    _r = _f.regs")
    for statement in body:
        lines.append(f"{indent}    {statement}")
    lines.append(f"{indent}    _f.index = {end_index}")


def _vector_still_wins(vector):
    """Does this SoA closure still beat *generated* thread-major code?

    The SoA election priced the vector strategy against interpreted
    micro-ops (``soa._COST_TM`` per op). Generated straight-line code is
    several times cheaper per op, which moves the break-even: a chunk
    that barely cleared ``MIN_VECTOR_GAIN`` against the interpreter (lane
    phases, scatters, narrow vector runs) loses to compiled scalar code.
    Re-run the same inequality with the JIT's per-op cost; the register
    effects are bit-identical either way (both strategies are pinned
    against the interpreter by the conformance matrix), and the chunk's
    static cycles and SoA accounting do not depend on the election.
    """
    covered = getattr(vector, "covered", None)
    if covered is None:
        return True  # no recorded verdict: trust the SoA election
    return (
        covered * _JIT_COST_TM - vector.vector_cost >= _soa.MIN_VECTOR_GAIN
    )


def _lower_segment(segment, variant):
    """Generate ``(fn, source)`` for one segment variant.

    ``variant`` 0 is the thread-major step list; 1 is the SoA list, where
    chunks whose vector closure still wins against generated code call it
    directly (the closure already owns the gather/compute/scatter plan
    and the index write) and the rest inline exactly as variant 0.
    """
    ir = segment.jit_ir
    if ir is None:
        raise CodegenVeto("segment retained no lowering IR")
    records, slots = ir
    steps = segment.steps
    soa_steps = segment.soa_steps
    if variant and soa_steps is None:
        raise CodegenVeto("segment has no SoA variant")

    ns = _Namespace()
    static_total = sum(cycles for _is_chunk, _payload, cycles in steps)
    lines = [
        f"# jit: segment @{segment.fname}/{segment.bname}:{segment.start}"
        f" n={segment.n} variant={'soa' if variant else 'tm'}",
        "def _jit_segment(executor, warp, group):",
        f"    _total = {static_total}",
    ]
    for position, record in enumerate(records):
        if record[0]:  # pure chunk
            _entries, end_index = record[1], record[2]
            vector = soa_steps[position][1] if variant else None
            if (
                vector is not None
                and vector is not steps[position][1]
                and _vector_still_wins(vector)
            ):
                # This chunk compiled a vector closure that still beats
                # generated thread-major code; call it.
                name = ns.bind("_v", vector)
                lines.append(f"    {name}(group)")
            else:
                _lower_chunk(record[1], end_index, slots, ns, lines, "    ")
        else:  # decoded handler step (memory op or terminating branch)
            name = ns.bind("_h", record[1])
            lines.append(f"    _total += {name}(executor, warp, group)")
    lines.append("    return _total")
    source = "\n".join(lines) + "\n"

    filename = (
        f"<jit:{segment.fname}/{segment.bname}:{segment.start}"
        f"#{'soa' if variant else 'tm'}>"
    )
    namespace = dict(ns.bindings)
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    fn = namespace["_jit_segment"]
    fn.__jit_source__ = source
    fn.__jit_segment__ = (
        f"@{segment.fname}/{segment.bname}:{segment.start}"
        f" n={segment.n} variant={'soa' if variant else 'tm'}"
    )
    return fn, source


# ---------------------------------------------------------------------------
# Tier-up
# ---------------------------------------------------------------------------
def tier_up(segment, variant, fingerprint, executor):
    """Compile (or fetch) ``segment``'s JIT function for ``variant``.

    Returns the compiled function, or ``False`` when codegen vetoed (the
    segment deopts: it runs interpreted from now on). Either way the
    result is memoized on the segment under ``fingerprint``, so the
    per-execution dispatch never calls back here until a knob changes.
    """
    profiler = executor.profiler
    profiler.jit_tierups += 1
    key = (variant, fingerprint)
    cached = CODE_CACHE.lookup(segment, key)
    if cached is not None:
        CODE_CACHE.hits += 1
        ENGINE_COUNTERS.jit_cache_hits += 1
        fn = cached[0]
    else:
        CODE_CACHE.misses += 1
        with _CODEGEN_SPANS.span(
            f"jit:{segment.fname}/{segment.bname}:{segment.start}"
            f"#{'soa' if variant else 'tm'}"
        ):
            try:
                fn, source = _lower_segment(segment, variant)
            except CodegenVeto as veto:
                fn, source = False, str(veto)
            except Exception as error:  # pragma: no cover - defensive
                fn, source = False, f"{type(error).__name__}: {error}"
        CODE_CACHE.store(segment, key, fn, source)
        if fn is not False:
            ENGINE_COUNTERS.jit_compiled_segments += 1
    if fn is False:
        profiler.jit_deopts += 1
    recorder = executor.recorder
    if recorder is not None and recorder.verbose:
        recorder.record(
            "jit-compile",
            {
                "segment": (
                    f"@{segment.fname}/{segment.bname}:{segment.start}"
                ),
                "slots": segment.n,
                "variant": "soa" if variant else "tm",
                "deopt": fn is False,
                "cached": cached is not None,
            },
        )
    segment.jit_fns[variant] = (fingerprint, fn)
    return fn
