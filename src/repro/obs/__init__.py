"""Unified observability: events, sinks, metrics, spans, exporters.

The ``repro.obs`` package instruments all three layers of the stack:

* **simulator** — typed, cycle-stamped events (:mod:`repro.obs.events`)
  emitted into a pluggable sink (:mod:`repro.obs.sinks`); the default
  :data:`NULL_SINK` keeps the fast path allocation-free;
* **metrics** — stall-reason cycle attribution, barrier occupancy and
  wait-time distributions, divergence-depth histograms
  (:mod:`repro.obs.metrics`), surfaced via ``launch.metrics`` and
  ``Profiler.summary()``;
* **compiler** — timed pass-pipeline spans with IR deltas
  (:mod:`repro.obs.spans`) attached to ``CompileReport.spans``;
* **export** — Chrome Trace Event Format for ``chrome://tracing`` /
  Perfetto (:mod:`repro.obs.chrome_trace`) and the
  ``python -m repro.tools.trace`` CLI.

See ``docs/observability.md`` for the event taxonomy and examples.
"""

from repro.obs.chrome_trace import (
    chrome_trace,
    simulator_trace_events,
    span_trace_events,
    write_chrome_trace,
)
from repro.obs.events import (
    BarrierArriveEvent,
    BarrierReleaseEvent,
    DivergeEvent,
    IssueEvent,
    ReconvergeEvent,
    TraceEvent,
)
from repro.obs.metrics import (
    ACTIVE,
    STALL_BARRIER,
    STALL_DIVERGED,
    STALL_FINISHED,
    STALL_REASONS,
    Histogram,
    LaunchMetrics,
)
from repro.obs.sinks import (
    NULL_SINK,
    CallbackSink,
    EventSink,
    ListSink,
    NullSink,
)
from repro.obs.spans import IRStats, Span, SpanRecorder, module_stats

__all__ = [
    "ACTIVE",
    "BarrierArriveEvent",
    "BarrierReleaseEvent",
    "CallbackSink",
    "DivergeEvent",
    "EventSink",
    "Histogram",
    "IRStats",
    "IssueEvent",
    "LaunchMetrics",
    "ListSink",
    "NULL_SINK",
    "NullSink",
    "ReconvergeEvent",
    "STALL_BARRIER",
    "STALL_DIVERGED",
    "STALL_FINISHED",
    "STALL_REASONS",
    "Span",
    "SpanRecorder",
    "TraceEvent",
    "chrome_trace",
    "module_stats",
    "simulator_trace_events",
    "span_trace_events",
    "write_chrome_trace",
]
