"""Tests for the synchronization-insertion algorithm (Section 4.2) and the
compiled structure of Figure 4(d)."""

import pytest

from repro.core import (
    BarrierNamer,
    collect_predictions,
    insert_pdom_sync,
    insert_speculative_reconvergence,
)
from repro.errors import TransformError
from repro.ir import Barrier, Opcode, verify_function
from tests.helpers import diamond_function, listing1_module, loop_function


def _ops(block, opcode, role=None):
    return [
        i
        for i in block.instructions
        if i.opcode is opcode and (role is None or i.attrs.get("role") == role)
    ]


class TestPdomSync:
    def test_divergent_diamond_gets_barrier(self):
        module, fn = diamond_function(divergent=True)
        report = insert_pdom_sync(fn)
        barrier, join_point = report.barriers["entry"]
        assert join_point == "join"
        assert _ops(fn.block("entry"), Opcode.BSSY)
        assert _ops(fn.block("join"), Opcode.BSYNC)

    def test_uniform_branch_skipped(self):
        module, fn = diamond_function(divergent=False)
        report = insert_pdom_sync(fn)
        assert report.barriers == {}
        assert ("entry", "uniform") in report.skipped_branches

    def test_assume_all_divergent_overrides(self):
        module, fn = diamond_function(divergent=False)
        report = insert_pdom_sync(fn, assume_all_divergent=True)
        assert "entry" in report.barriers

    def test_loop_exit_reconvergence(self):
        module, fn = loop_function(trip_reg_divergent=True)
        report = insert_pdom_sync(fn)
        barrier, join_point = report.barriers["head"]
        assert join_point == "exit"

    def test_inserted_code_verifies(self):
        module = listing1_module()
        fn = module.function("k")
        insert_pdom_sync(fn)
        assert verify_function(fn)


class TestSRInsertion:
    def _compile_listing1(self):
        module = listing1_module()
        fn = module.function("k")
        namer = BarrierNamer()
        insert_pdom_sync(fn, namer=namer)
        prediction = collect_predictions(fn)[0]
        report = insert_speculative_reconvergence(fn, prediction, namer=namer)
        return fn, report

    def test_figure4d_structure(self):
        fn, report = self._compile_listing1()
        # Join (plus the orthogonal exit join) replaces the directive in BB0.
        entry_joins = _ops(fn.block("entry"), Opcode.BSSY, role="join")
        assert len(entry_joins) == 2
        # WaitBarrier at the top of BB3 followed by RejoinBarrier.
        then = fn.block("then")
        wait = _ops(then, Opcode.BSYNC, role="wait")
        rejoin = _ops(then, Opcode.BSSY, role="rejoin")
        assert wait and rejoin
        assert then.index_of(rejoin[0]) == then.index_of(wait[0]) + 1
        assert report.rejoin_inserted

    def test_cancel_at_region_exit(self):
        fn, report = self._compile_listing1()
        cancels = _ops(fn.block("exit"), Opcode.BBREAK, role="cancel")
        assert cancels
        assert report.cancel_blocks == ["exit"]
        assert Barrier(report.barrier) in [c.operands[0] for c in cancels]

    def test_exit_barrier_waits_after_cancels(self):
        fn, report = self._compile_listing1()
        exit_block = fn.block("exit")
        wait_index = next(
            i
            for i, instr in enumerate(exit_block.instructions)
            if instr.opcode is Opcode.BSYNC
            and instr.operands[0] == Barrier(report.exit_barrier)
        )
        cancel_index = next(
            i
            for i, instr in enumerate(exit_block.instructions)
            if instr.opcode is Opcode.BBREAK
            and instr.operands[0] == Barrier(report.barrier)
        )
        assert cancel_index < wait_index
        assert report.exit_wait_block == "exit"

    def test_directive_consumed(self):
        fn, _ = self._compile_listing1()
        assert not [
            instr
            for _, _, instr in fn.instructions()
            if instr.opcode is Opcode.PREDICT
        ]

    def test_region_blocks_recorded(self):
        fn, report = self._compile_listing1()
        assert report.region_blocks == {"entry", "head", "prolog", "then", "epilog"}

    def test_verifies_after_insertion(self):
        fn, _ = self._compile_listing1()
        assert verify_function(fn)

    def test_soft_prediction_emits_soft_wait(self):
        module = listing1_module()
        fn = module.function("k")
        prediction = collect_predictions(fn)[0]
        prediction.threshold = 8
        insert_speculative_reconvergence(fn, prediction)
        soft = _ops(fn.block("then"), Opcode.BSYNCSOFT)
        assert soft and soft[0].operands[1].value == 8

    def test_interprocedural_prediction_rejected_here(self):
        module = listing1_module()
        fn = module.function("k")
        prediction = collect_predictions(fn)[0]
        prediction.callee = "foo"
        with pytest.raises(TransformError):
            insert_speculative_reconvergence(fn, prediction)

    def test_no_rejoin_for_straightline_region(self):
        """A non-loop region (Fig 2c-like, single pass) needs no rejoin."""
        from repro.ir import Function, IRBuilder, Module

        module = Module("m")
        fn = Function("k", is_kernel=True)
        module.add(fn)
        b = IRBuilder(fn)
        b.new_block("entry", switch=True)
        tid = b.tid()
        b.predict("L1")
        then_block = b.new_block("then", attrs={"label": "L1"})
        join = b.new_block("join")
        b.cbr(b.lt(tid, 16), then_block, join)
        b.set_block(then_block)
        b.store(tid, 1.0)
        b.bra(join)
        b.set_block(join)
        b.exit()
        prediction = collect_predictions(fn)[0]
        report = insert_speculative_reconvergence(fn, prediction)
        assert not report.rejoin_inserted
