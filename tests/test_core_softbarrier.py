"""Soft barrier tests (Section 4.6)."""

from repro.core import (
    ReconvergenceCompiler,
    expand_fig6_style,
    set_prediction_threshold,
    soften_waits,
)
from repro.frontend import compile_kernel_source
from repro.ir import Opcode, verify_function
from repro.simt import GPUMachine
from tests.helpers import listing1_module, loop_merge_source


def _find_wait(function, opcode=Opcode.BSYNC, origin="sr"):
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            if instr.opcode is opcode and instr.attrs.get("origin") == origin:
                return block, index
    raise AssertionError("no wait found")


class TestThresholdConfiguration:
    def test_set_prediction_threshold(self):
        module = listing1_module()
        fn = module.function("k")
        assert set_prediction_threshold(fn, 8) == 1
        predicts = [
            i for _, _, i in fn.instructions() if i.opcode is Opcode.PREDICT
        ]
        assert predicts[0].attrs["threshold"] == 8

    def test_clear_threshold(self):
        module = listing1_module()
        fn = module.function("k")
        set_prediction_threshold(fn, 8)
        set_prediction_threshold(fn, None)
        predicts = [
            i for _, _, i in fn.instructions() if i.opcode is Opcode.PREDICT
        ]
        assert "threshold" not in predicts[0].attrs

    def test_label_filter(self):
        module = listing1_module()
        fn = module.function("k")
        assert set_prediction_threshold(fn, 8, label="other") == 0

    def test_compile_threshold_argument(self):
        prog = ReconvergenceCompiler().compile(
            listing1_module(), mode="sr", threshold=6
        )
        fn = prog.module.function("k")
        soft = [
            i for _, _, i in fn.instructions() if i.opcode is Opcode.BSYNCSOFT
        ]
        assert soft and soft[0].operands[1].value == 6

    def test_soften_waits_post_compile(self):
        prog = ReconvergenceCompiler(allocate=False).compile(
            listing1_module(), mode="sr"
        )
        fn = prog.module.function("k")
        barrier = prog.report.sr_reports[0].barrier
        assert soften_waits(fn, barrier, 10) == 1
        assert verify_function(fn)


class TestFig6Expansion:
    def test_expand_inserts_barcnt(self):
        prog = ReconvergenceCompiler(allocate=False).compile(
            listing1_module(), mode="sr"
        )
        fn = prog.module.function("k")
        block, index = _find_wait(fn)
        barrier, cnt, pred = expand_fig6_style(fn, block.name, index, 8)
        opcodes = [i.opcode for i in block.instructions]
        assert Opcode.BARCNT in opcodes
        assert Opcode.BSYNCSOFT in opcodes
        assert verify_function(fn)

    def test_expanded_kernel_still_correct(self):
        module = listing1_module()
        baseline = ReconvergenceCompiler().compile(module, mode="baseline")
        prog = ReconvergenceCompiler(allocate=False).compile(module, mode="sr")
        fn = prog.module.function("k")
        block, index = _find_wait(fn)
        expand_fig6_style(fn, block.name, index, 8)
        a = GPUMachine(baseline.module).launch("k", 32)
        b = GPUMachine(prog.module).launch("k", 32)
        assert a.memory.snapshot() == b.memory.snapshot()


class TestThresholdSemantics:
    def _run(self, threshold):
        module = compile_kernel_source(loop_merge_source())
        prog = ReconvergenceCompiler().compile(module, mode="sr", threshold=threshold)
        return GPUMachine(prog.module).launch("lm", 32, args=(32 * 5,))

    def test_results_invariant_across_thresholds(self):
        snapshots = {k: self._run(k).memory.snapshot() for k in (None, 1, 8, 31)}
        values = list(snapshots.values())
        assert all(v == values[0] for v in values)

    def test_threshold_one_never_parks(self):
        # k<=1 waits degenerate to pass-through: behaves like free-running.
        result = self._run(1)
        assert result.simt_efficiency > 0

    def test_higher_threshold_gives_higher_label_convergence(self):
        module = compile_kernel_source(loop_merge_source())

        def label_active(threshold):
            prog = ReconvergenceCompiler().compile(
                module, mode="sr", threshold=threshold
            )
            launch = GPUMachine(prog.module).launch("lm", 32, args=(32 * 5,))
            profile = launch.profiler.block_profile("lm", "L.L1")
            return profile.average_active

        assert label_active(24) > label_active(2)
