"""CLI: ``python -m repro.harness [figure ...]``.

Without arguments, regenerates every fast figure (the full 520-app corpus
funnel is opt-in via ``funnel`` or ``--full``). Example::

    python -m repro.harness fig7 fig9
    python -m repro.harness --full          # everything, incl. the funnel
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness.figures import ALL_FIGURES

FAST_FIGURES = [name for name in ALL_FIGURES if name != "funnel"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=sorted(ALL_FIGURES) + [[]],
        help=f"figures to run (default: all except 'funnel'): {sorted(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--full", action="store_true", help="run everything, including the 520-app funnel"
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for parallelizable figures "
             "(default: $REPRO_JOBS or 1; -1 = one per CPU)",
    )
    parser.add_argument(
        "--pipeline", default=None, metavar="DESC",
        help="compile every workload with this pass pipeline instead of the "
             "mode's registered one (sets REPRO_PIPELINE, inherited by "
             "parallel workers); see --list-passes for pass names",
    )
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list the registered compiler passes and exit",
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        from repro.core.passmgr import list_passes

        print(list_passes())
        return 0
    if args.pipeline:
        from repro.core.passmgr import parse_pipeline

        parse_pipeline(args.pipeline)  # fail fast on a bad description
        os.environ["REPRO_PIPELINE"] = args.pipeline

    # Figures whose experiment bags fan out over worker processes.
    parallel_figures = {"fig7", "fig8", "fig9", "fig10"}
    names = args.figures or (sorted(ALL_FIGURES) if args.full else FAST_FIGURES)
    for name in names:
        fn = ALL_FIGURES[name]
        start = time.time()
        if name in ("table2", "funnel"):
            result = fn()
        elif name in parallel_figures:
            result = fn(seed=args.seed, jobs=args.jobs)
        else:
            result = fn(seed=args.seed)
        elapsed = time.time() - start
        print(f"=== {name} ({elapsed:.1f}s) " + "=" * 40)
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
