"""Design-choice ablations called out in DESIGN.md.

* scheduler policy (the convergence optimizer vs alternatives),
* soft-barrier threshold sensitivity for every Loop Merge workload,
* static vs dynamic work distribution (thread coarsening flavors),
* cost-model sensitivity (results should be scale-invariant in shape).
"""

from repro.harness.report import format_table
from repro.simt import CostModel, GPUMachine, GlobalMemory
from repro.workloads import get_workload


def test_scheduler_ablation(once):
    """The convergence optimizer beats naive policies on divergent code."""

    def run():
        workload = get_workload("pathtracer", samples_per_thread=4)
        rows = []
        for scheduler in ("convergence", "oldest-first", "round-robin"):
            result = workload.run(mode="baseline", scheduler=scheduler)
            rows.append((scheduler, result.simt_efficiency, result.cycles))
        return rows

    rows = once(run)
    by_name = {name: eff for name, eff, _ in rows}
    assert by_name["convergence"] >= by_name["round-robin"]
    print("\n" + format_table(["scheduler", "SIMT efficiency", "cycles"], rows,
                              title="Scheduler ablation (pathtracer, PDOM baseline)"))


def test_threshold_sensitivity(once):
    """Per-workload best thresholds differ — the Section 4.6 motivation."""

    def run():
        rows = []
        for name in ("rsbench", "xsbench", "pathtracer"):
            workload = get_workload(name)
            baseline = workload.run(mode="baseline")
            best = None
            for k in (2, 8, 16, 24, None):
                result = workload.run(mode="sr", threshold=k)
                speedup = baseline.cycles / result.cycles
                if best is None or speedup > best[1]:
                    best = (32 if k is None else k, speedup)
            rows.append((name, best[0], f"{best[1]:.2f}x"))
        return rows

    rows = once(run)
    best_k = {name: k for name, k, _ in rows}
    assert best_k["pathtracer"] > best_k["xsbench"]
    print("\n" + format_table(["workload", "best threshold", "speedup"], rows,
                              title="Soft-barrier threshold sensitivity"))


def test_cost_model_sensitivity(once):
    """Scaling all latencies preserves who-wins (shape invariance)."""

    def run():
        workload = get_workload("mcb", steps=16)
        rows = []
        for factor in (0.5, 1.0, 2.0):
            model = CostModel().scaled(factor)
            base_prog = workload.compile(mode="baseline")
            sr_prog = workload.compile(mode="sr")
            results = []
            for prog in (base_prog, sr_prog):
                memory = GlobalMemory()
                args = workload.setup(memory)
                machine = GPUMachine(prog.module, cost_model=model)
                results.append(
                    machine.launch(workload.kernel_name, 32, args=args, memory=memory)
                )
            rows.append((factor, results[0].cycles / results[1].cycles))
        return rows

    rows = once(run)
    assert all(speedup > 1.0 for _, speedup in rows)
    print("\n" + format_table(["latency scale", "SR speedup"], rows,
                              title="Cost-model sensitivity (mcb)"))
