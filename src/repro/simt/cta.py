"""CTA (cooperative thread array) launch context.

One :class:`~repro.simt.machine.GPUMachine.launch` executes exactly one CTA.
A flat ``launch()`` call is the degenerate single-CTA grid — the default
:class:`CTAContext` has ``cta_id == 0``, ``grid_dim == 1`` and zero bases,
so thread ids, warp ids and RNG streams are bit-identical to the pre-grid
engine. :class:`repro.simt.grid.GridLaunch` builds one context per CTA with
global tid/warp bases and schedules them onto simulated SMs.

The context also owns the two pieces of CTA-wide dynamic state:

* the lazily created per-CTA :class:`~repro.simt.memory.SharedMemory`
  scratchpad (``shld`` / ``shst`` / ``shatom``), and
* the CTA-wide barrier (``ctasync``): an arrival set spanning every warp of
  the CTA, distinct from the per-warp Volta convergence barriers — it opens
  only once every *live* thread of the CTA has arrived (exited threads do
  not participate, mirroring the ``warpsync`` live-thread rule).
"""

from __future__ import annotations

import operator

from repro.obs.counters import ENGINE_COUNTERS
from repro.simt.memory import SharedMemory

#: ``Thread.waiting_on`` marker for threads parked at the CTA-wide barrier.
CTASYNC_BARRIER = "__ctasync__"

_by_tid = operator.attrgetter("tid")


class CTAContext:
    """Identity and CTA-wide state of one CTA within a grid launch."""

    __slots__ = (
        "cta_id",
        "grid_dim",
        "cta_dim",
        "tid_base",
        "warp_base",
        "shared_words",
        "warps",
        "arrived",
        "_shared",
    )

    def __init__(
        self,
        cta_id=0,
        grid_dim=1,
        cta_dim=None,
        tid_base=0,
        warp_base=0,
        shared_words=0,
    ):
        self.cta_id = cta_id
        self.grid_dim = grid_dim
        self.cta_dim = cta_dim
        self.tid_base = tid_base
        self.warp_base = warp_base
        self.shared_words = shared_words
        #: the CTA's warps, set by ``GPUMachine.launch`` after warp build
        self.warps = []
        #: tid -> thread, for threads parked at the CTA barrier
        self.arrived = {}
        self._shared = None

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------
    def shared(self):
        """The CTA's scratchpad, created on first access."""
        if self._shared is None:
            self._shared = SharedMemory(self.shared_words)
            ENGINE_COUNTERS.grid_shared_bytes += 8 * self.shared_words
        return self._shared

    # ------------------------------------------------------------------
    # CTA-wide barrier (ctasync)
    # ------------------------------------------------------------------
    def arrive(self, thread):
        """Park ``thread`` at the CTA barrier and record its arrival."""
        thread.park(CTASYNC_BARRIER)
        self.arrived[thread.tid] = thread

    def live_count(self):
        return sum(
            1 for warp in self.warps for t in warp.threads if not t.is_exited
        )

    def maybe_release(self):
        """Open the barrier iff every live CTA thread has arrived.

        Returns True when threads were released. Threads that exited before
        reaching the barrier shrink the membership (the exit path in
        ``GPUMachine._step`` re-checks this, so a late exit in one warp can
        open the barrier for the others).
        """
        if not self.arrived or len(self.arrived) < self.live_count():
            return False
        threads = sorted(self.arrived.values(), key=_by_tid)
        self.arrived.clear()
        for thread in threads:
            thread.unpark()
        # A release crosses warp boundaries, so any sibling warp's patched
        # group cache (GPUMachine._step's uniform carry-over) is stale: it
        # lacks the just-unparked threads.
        for warp in self.warps:
            warp.groups_cache = None
        return True

    def has_ctasync_waiters(self, warp):
        """True if any live thread of ``warp`` is parked at the barrier."""
        return any(
            t.waiting_on == CTASYNC_BARRIER
            for t in warp.threads
            if not t.is_exited
        )

    def others_can_progress(self, warp):
        """True if another CTA warp can still arrive at (or shrink) the
        barrier: it has a runnable thread or a releasable SR barrier.

        Used by the machine's deadlock check so a warp fully parked at
        ``ctasync`` stalls instead of raising while siblings still run.
        ``all_releasable`` is non-destructive, so peeking here cannot
        perturb the sibling's own barrier state.
        """
        for other in self.warps:
            if other is warp or other.done:
                continue
            if other.runnable_threads():
                return True
            if other.barriers.all_releasable():
                return True
        return False

    def __repr__(self):
        return (
            f"<CTAContext cta_id={self.cta_id} grid_dim={self.grid_dim} "
            f"cta_dim={self.cta_dim} tid_base={self.tid_base}>"
        )
