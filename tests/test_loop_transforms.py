"""Loop-transform interaction tests (Section 6)."""

import pytest

from repro.core import ReconvergenceCompiler
from repro.errors import TransformError
from repro.frontend import (
    ast_nodes as A,
    fully_unroll_for,
    parse_kernel_source,
    unroll_labeled_while,
    unroll_while,
)
from repro.frontend.lower import lower_program
from repro.ir import verify_module
from repro.simt import GPUMachine
from tests.helpers import loop_merge_source


def _program(decl):
    return A.Program(functions=[decl])


def _loop_merge_decl():
    return parse_kernel_source(loop_merge_source()).function("lm")


class TestUnrollWhile:
    def test_factor_below_two_rejected(self):
        loop = A.While(A.Num(1), A.Block([]))
        with pytest.raises(TransformError):
            unroll_while(loop, 1)

    def test_needs_a_while(self):
        with pytest.raises(TransformError):
            unroll_while(A.Block([]), 2)

    def test_unrolled_loop_preserves_results(self):
        decl = _loop_merge_decl()
        unrolled = unroll_labeled_while(decl, "L1", 3)
        base_module = lower_program(_program(decl))
        unrolled_module = lower_program(_program(unrolled))
        assert verify_module(unrolled_module)
        a = GPUMachine(base_module).launch("lm", 32, args=(96,))
        b = GPUMachine(unrolled_module).launch("lm", 32, args=(96,))
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_label_survives_once(self):
        decl = _loop_merge_decl()
        unrolled = unroll_labeled_while(decl, "L1", 4)
        module = lower_program(_program(unrolled))
        assert len(module.function("lm").blocks_with_label("L1")) == 1

    def test_missing_label_rejected(self):
        decl = _loop_merge_decl()
        with pytest.raises(TransformError, match="no while loop"):
            unroll_labeled_while(decl, "nope", 2)

    def test_loop_merge_still_applies_with_fewer_waits(self):
        """'Reconvergence is needed only once per N iterations ... which
        may reduce the overhead of synchronization' (Section 6)."""
        decl = _loop_merge_decl()
        unrolled = unroll_labeled_while(decl, "L1", 4)
        compiler = ReconvergenceCompiler()

        def run(d):
            prog = compiler.compile(lower_program(_program(d)), mode="sr")
            return GPUMachine(prog.module).launch("lm", 32, args=(96,))

        plain = run(decl)
        rolled = run(unrolled)
        assert plain.memory.snapshot() == rolled.memory.snapshot()
        # The unrolled variant executes fewer barrier instructions.
        assert rolled.profiler.barrier_issues < plain.profiler.barrier_issues


class TestFullyUnrollFor:
    def test_constant_loop_unrolls(self):
        loop = A.For(
            "i",
            A.Num(0),
            A.Num(3),
            A.Block([A.Store(A.Var("i"), A.Var("i"))]),
        )
        block = fully_unroll_for(loop)
        stores = [s for s in block.statements if isinstance(s, A.Store)]
        assert len(stores) == 3

    def test_unrolled_results_match(self):
        body = A.Block(
            [
                A.Assign("acc", A.Bin("+", A.Var("acc"), A.Var("i"))),
            ]
        )
        loop = A.For("i", A.Num(0), A.Num(5), body)
        rolled = A.FuncDecl(
            "k",
            [],
            A.Block(
                [A.Let("acc", A.Num(0)), loop, A.Store(A.CallExpr("tid", []), A.Var("acc"))]
            ),
            is_kernel=True,
        )
        import copy

        unrolled_loop = fully_unroll_for(copy.deepcopy(loop))
        unrolled = A.FuncDecl(
            "k",
            [],
            A.Block(
                [A.Let("acc", A.Num(0)), unrolled_loop, A.Store(A.CallExpr("tid", []), A.Var("acc"))]
            ),
            is_kernel=True,
        )
        a = GPUMachine(lower_program(_program(rolled))).launch("k", 4)
        b = GPUMachine(lower_program(_program(unrolled))).launch("k", 4)
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_refuses_labeled_body(self):
        """'If a loop is completely unrolled, Iteration Delay and Loop
        Merge cannot be applied' — surfaced as an explicit error."""
        loop = A.For(
            "i",
            A.Num(0),
            A.Num(3),
            A.Block([A.Label("L1", A.Store(A.Num(0), A.Num(1)))]),
        )
        with pytest.raises(TransformError, match="reconvergence point"):
            fully_unroll_for(loop)

    def test_refuses_dynamic_range(self):
        loop = A.For("i", A.Num(0), A.Var("n"), A.Block([]))
        with pytest.raises(TransformError, match="constant-range"):
            fully_unroll_for(loop)
