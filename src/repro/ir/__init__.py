"""Compiler IR: instructions, blocks, functions, text format, verifier."""

from repro.ir.basic_block import BasicBlock, count_static_instructions
from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BARRIER_OPS,
    BINARY_OPS,
    DIVERGENT_SOURCES,
    HAS_DST,
    TERMINATORS,
    UNARY_OPS,
    Barrier,
    BlockRef,
    FuncRef,
    Imm,
    Instruction,
    Opcode,
    Reg,
    make,
)
from repro.ir.parser import parse_function, parse_module
from repro.ir.printer import (
    format_block,
    format_function,
    format_instruction,
    format_module,
    format_operand,
)
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "BARRIER_OPS",
    "BINARY_OPS",
    "DIVERGENT_SOURCES",
    "HAS_DST",
    "TERMINATORS",
    "UNARY_OPS",
    "Barrier",
    "BasicBlock",
    "BlockRef",
    "FuncRef",
    "Function",
    "IRBuilder",
    "Imm",
    "Instruction",
    "Module",
    "Opcode",
    "Reg",
    "count_static_instructions",
    "format_block",
    "format_function",
    "format_instruction",
    "format_module",
    "format_operand",
    "make",
    "parse_function",
    "parse_module",
    "verify_function",
    "verify_module",
]
