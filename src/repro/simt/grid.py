"""Grid-scale launches: CTAs scheduled onto simulated SMs.

A :class:`GridLaunch` partitions ``grid_dim * cta_dim`` threads into
``grid_dim`` CTAs and runs each one as an ordinary
:meth:`~repro.simt.machine.GPUMachine.launch` under a per-CTA
:class:`~repro.simt.cta.CTAContext` carrying its global tid/warp bases and
shared-memory budget. Because the flat ``launch()`` *is* the degenerate
single-CTA grid, a ``GridLaunch(grid_dim=1)`` is bit-identical to calling
``launch()`` directly — same thread ids, warp ids, RNG streams, traces and
profiler numbers.

**Execution semantics.** CTAs are independent by the programming model: the
only cross-CTA channel is global memory, and the grid defines CTA execution
as *atomic in cta_id order* on the shared :class:`GlobalMemory`. That
serialization is deterministic, and whenever
:func:`repro.analysis.memeffects.classify_grid` proves the CTAs' global
footprints pairwise disjoint it is also equal to every other order — which
licenses sharding CTA ranges across the persistent worker pool
(:mod:`repro.harness.parallel`). Workers receive the module as IR text
(re-parsed and cached per process), run their CTA range against a private
copy of the launch memory, and ship back per-CTA traces plus their final
cells; the parent merges each worker's write-delta (disjoint by proof) and
folds worker engine counters through the PR-6
:func:`~repro.harness.parallel.run_tasks_observed` aggregation path.
``REPRO_GRID=0`` (or ``false``/``off``) forces the serial in-process CTA
loop, as do ``jobs<=1``, a single CTA, and a ``"guarded"`` classification.

**SM model.** CTAs issue round-robin onto ``n_sms`` simulated SMs
(CTA ``i`` lands on SM ``i % n_sms``). Each SM is occupancy-limited: it
keeps ``resident = min(max_ctas_per_sm, max_warps_per_sm // warps_per_cta)``
CTAs resident at once and runs them in waves — a wave's time is its slowest
CTA, an SM's time is the sum of its waves, and the grid's
:attr:`~GridResult.cycles` is the busiest SM. This is the coarse
occupancy-throughput model (no intra-SM warp interleaving across CTAs);
per-CTA cycle counts remain exact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import LaunchError
from repro.obs import counters as _counters
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.recorder import make_recorder
from repro.simt.cta import CTAContext
from repro.simt.machine import GPUMachine
from repro.simt.memory import GlobalMemory
from repro.simt.warp import WARP_SIZE

__all__ = [
    "GridLaunch",
    "GridResult",
    "grid_sharding_enabled",
]

#: Volta-style SM envelope (see ROADMAP): 96 kB of shared memory is
#: 12288 8-byte words.
DEFAULT_N_SMS = 80
DEFAULT_MAX_CTAS_PER_SM = 32
DEFAULT_MAX_WARPS_PER_SM = 64
DEFAULT_MAX_SHARED_WORDS = 12288


def grid_sharding_enabled():
    """Worker-pool CTA sharding knob (``REPRO_GRID``, default on).

    Only sharding is gated — grid launches themselves always work; with
    ``REPRO_GRID=0`` every CTA runs on the serial in-process loop.
    """
    value = os.environ.get("REPRO_GRID", "").strip().lower()
    return value not in ("0", "false", "off")


@dataclass
class GridResult:
    """Everything observable about one grid launch.

    ``cta_records`` holds one dict per CTA in ``cta_id`` order with the
    per-CTA observables (``store_traces``, ``retired``, ``cycles``,
    ``issued``, ``active_sum``) — the same shape whether the CTA ran
    in-process or on a pool worker, so consumers never care where it ran.
    """

    kernel: str
    grid_dim: int
    cta_dim: int
    n_threads: int
    memory: GlobalMemory
    cta_records: list
    sm_schedule: list
    cycles: int
    issued: int
    active_sum: int
    sharded: bool
    jobs: int
    classification: str
    counters: dict = field(default=None, repr=False)
    flight_recorder: object = field(default=None, repr=False)

    @property
    def simt_efficiency(self):
        if self.issued == 0:
            return 1.0
        return self.active_sum / (self.issued * WARP_SIZE)

    def store_traces(self):
        """Per-thread ordered (addr, value) store lists over the whole grid,
        keyed by global tid (CTA tids never collide — each CTA owns
        ``[cta_id*cta_dim, (cta_id+1)*cta_dim)``)."""
        merged = {}
        for record in self.cta_records:
            merged.update(record["store_traces"])
        return merged

    def retired_per_thread(self):
        merged = {}
        for record in self.cta_records:
            merged.update(record["retired"])
        return merged

    def summary(self):
        """Grid digest for reports and ``tools.stats``."""
        return {
            "kernel": self.kernel,
            "grid_dim": self.grid_dim,
            "cta_dim": self.cta_dim,
            "n_threads": self.n_threads,
            "issued": self.issued,
            "cycles": self.cycles,
            "simt_efficiency": self.simt_efficiency,
            "sharded": self.sharded,
            "jobs": self.jobs,
            "classification": self.classification,
            "sm_schedule": self.sm_schedule,
            "counters": dict(self.counters or {}),
        }


# ----------------------------------------------------------------------
# Worker side of the pool-sharded path. Module-level so the pool can ship
# it by reference (fork) or qualified name (spawn).
# ----------------------------------------------------------------------

#: (module name, IR text) -> parsed Module, per worker process. A sweep
#: re-submits the same module to the same worker many times; parsing once
#: per process mirrors the compile cache's role on the parent.
_WORKER_MODULES = {}


def _worker_module(text, name):
    key = (name, text)
    module = _WORKER_MODULES.get(key)
    if module is None:
        from repro.ir import parse_module

        module = parse_module(text, name=name)
        _WORKER_MODULES[key] = module
    return module


def _cta_record(cta_id, result):
    return {
        "cta_id": cta_id,
        "store_traces": result.store_traces(),
        "retired": result.retired_per_thread(),
        "cycles": result.cycles,
        "issued": result.profiler.issued,
        "active_sum": result.profiler.active_sum,
    }


def _run_cta_range(
    module_text, module_name, kernel_name, args, cta_ids,
    grid_dim, cta_dim, shared_words, memory_state, machine_kwargs,
):
    """Run a contiguous CTA range against a private copy of the launch
    memory; return ``(records, final_cells)``.

    The worker's memory starts from the parent's pre-launch state, so a
    disjoint-proven CTA sees exactly what it would have seen in-process
    (it never reads another CTA's writes — that is what ``"disjoint"``
    means). The parent merges each worker's write-delta afterwards.
    """
    cells, next_free, regions = memory_state
    memory = GlobalMemory()
    memory._cells = dict(cells)
    memory._next_free = next_free
    memory._regions = dict(regions)
    module = _worker_module(module_text, module_name)
    machine = GPUMachine(module, **machine_kwargs)
    records = []
    for cta_id in cta_ids:
        cta = CTAContext(
            cta_id=cta_id,
            grid_dim=grid_dim,
            cta_dim=cta_dim,
            tid_base=cta_id * cta_dim,
            warp_base=cta_id * cta_dim // WARP_SIZE,
            shared_words=shared_words,
        )
        result = machine.launch(
            kernel_name, cta_dim, args, memory=memory, cta=cta
        )
        records.append(_cta_record(cta_id, result))
    return records, memory._cells


def _chunk(items, parts):
    """Split ``items`` into at most ``parts`` contiguous, balanced chunks."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


class GridLaunch:
    """A ``grid_dim x cta_dim`` kernel launch over simulated SMs.

    Construction validates the hierarchy against the SM envelope; one
    instance can launch many kernels (it holds no per-launch state).

    ``machine_kwargs`` are forwarded to every :class:`GPUMachine` built for
    the grid — scheduler, seed, engine toggles. When the launch shards onto
    the worker pool they cross a process boundary, so they must be plain
    picklable values there (``sink`` is parent-only and never forwarded to
    workers; use ``REPRO_FLIGHT_RECORDER`` rather than an object).
    """

    def __init__(
        self,
        module,
        grid_dim,
        cta_dim,
        *,
        n_sms=DEFAULT_N_SMS,
        max_ctas_per_sm=DEFAULT_MAX_CTAS_PER_SM,
        max_warps_per_sm=DEFAULT_MAX_WARPS_PER_SM,
        max_shared_words=DEFAULT_MAX_SHARED_WORDS,
        shared_words=0,
        jobs=None,
        **machine_kwargs,
    ):
        if grid_dim < 1:
            raise LaunchError(f"grid needs at least one CTA, got {grid_dim}")
        if cta_dim < 1:
            raise LaunchError(
                f"CTA needs at least one thread, got {cta_dim}"
            )
        if grid_dim > 1 and cta_dim % WARP_SIZE != 0:
            # Whole warps must not span CTAs, or the grid's warp membership
            # (and with it the mem-effects warp envelopes and RNG-free warp
            # identity) would diverge from the flat launch of the same
            # thread range.
            raise LaunchError(
                f"multi-CTA grids need cta_dim to be a multiple of "
                f"{WARP_SIZE}, got {cta_dim}"
            )
        if n_sms < 1:
            raise LaunchError(f"grid needs at least one SM, got {n_sms}")
        warps_per_cta = -(-cta_dim // WARP_SIZE)
        if warps_per_cta > max_warps_per_sm:
            raise LaunchError(
                f"one CTA of {cta_dim} threads is {warps_per_cta} warps, "
                f"over the SM limit of {max_warps_per_sm}"
            )
        if shared_words > max_shared_words:
            raise LaunchError(
                f"CTA shared memory of {shared_words} words exceeds the "
                f"SM limit of {max_shared_words}"
            )
        self.module = module
        self.grid_dim = grid_dim
        self.cta_dim = cta_dim
        self.n_sms = n_sms
        self.max_ctas_per_sm = max_ctas_per_sm
        self.max_warps_per_sm = max_warps_per_sm
        self.shared_words = shared_words
        self.jobs = jobs
        self.machine_kwargs = dict(machine_kwargs)
        self.warps_per_cta = warps_per_cta
        #: CTAs an SM keeps resident at once (the occupancy limit).
        self.resident_ctas = min(
            max_ctas_per_sm, max_warps_per_sm // warps_per_cta
        )

    # ------------------------------------------------------------------
    def _cta_context(self, cta_id):
        return CTAContext(
            cta_id=cta_id,
            grid_dim=self.grid_dim,
            cta_dim=self.cta_dim,
            tid_base=cta_id * self.cta_dim,
            warp_base=cta_id * self.cta_dim // WARP_SIZE,
            shared_words=self.shared_words,
        )

    def _sm_schedule(self, cycles_by_cta):
        """Round-robin CTA issue over occupancy-limited SMs.

        Returns ``(schedule, grid_cycles, peak_resident_warps)`` where
        ``schedule`` has one entry per *used* SM.
        """
        by_sm = {}
        for cta_id in range(self.grid_dim):
            by_sm.setdefault(cta_id % self.n_sms, []).append(cta_id)
        schedule = []
        grid_cycles = 0
        peak_warps = 0
        for sm, ctas in sorted(by_sm.items()):
            waves = _chunk(ctas, -(-len(ctas) // self.resident_ctas))
            sm_cycles = sum(
                max(cycles_by_cta[cta_id] for cta_id in wave)
                for wave in waves
            )
            resident = max(len(wave) for wave in waves)
            peak_warps = max(peak_warps, resident * self.warps_per_cta)
            grid_cycles = max(grid_cycles, sm_cycles)
            schedule.append({
                "sm": sm,
                "ctas": ctas,
                "waves": len(waves),
                "resident_ctas": resident,
                "resident_warps": resident * self.warps_per_cta,
                "cycles": sm_cycles,
            })
        return schedule, grid_cycles, peak_warps

    # ------------------------------------------------------------------
    def launch(self, kernel_name, args=(), memory=None):
        """Run the whole grid; returns a :class:`GridResult`."""
        from repro.analysis.memeffects import classify_grid
        from repro.harness.parallel import resolve_jobs

        memory = memory if memory is not None else GlobalMemory()
        total_threads = self.grid_dim * self.cta_dim
        jobs = resolve_jobs(self.jobs)
        classification = classify_grid(
            self.module, kernel_name, args, total_threads
        )
        shard = (
            self.grid_dim > 1
            and jobs > 1
            and classification == "disjoint"
            and grid_sharding_enabled()
        )

        recorder = make_recorder(
            kernel_name, total_threads,
            self.machine_kwargs.get("flight_recorder"),
        )
        if recorder is not None:
            recorder.record("grid-launch", {
                "kernel": kernel_name,
                "grid_dim": self.grid_dim,
                "cta_dim": self.cta_dim,
                "n_sms": self.n_sms,
                "shared_words": self.shared_words,
                "classification": classification,
                "sharded": shard,
                "jobs": jobs if shard else 1,
            })

        before = _counters.snapshot()
        if shard:
            records = self._launch_sharded(kernel_name, args, memory, jobs)
        else:
            records = self._launch_serial(kernel_name, args, memory)
        ENGINE_COUNTERS.grid_ctas_launched += self.grid_dim

        cycles_by_cta = {r["cta_id"]: r["cycles"] for r in records}
        schedule, grid_cycles, peak_warps = self._sm_schedule(cycles_by_cta)
        # Occupancy is a high-water mark, not a flow: record the peak, don't
        # accumulate it.
        if peak_warps > ENGINE_COUNTERS.grid_sm_occupancy:
            ENGINE_COUNTERS.grid_sm_occupancy = peak_warps
        counters = _counters.delta(_counters.snapshot(), before)
        counters = {name: value for name, value in counters.items() if value}

        if recorder is not None:
            recorder.record("grid-end", {
                "cycles": grid_cycles,
                "ctas": self.grid_dim,
                "peak_resident_warps": peak_warps,
            })

        return GridResult(
            kernel=kernel_name,
            grid_dim=self.grid_dim,
            cta_dim=self.cta_dim,
            n_threads=total_threads,
            memory=memory,
            cta_records=records,
            sm_schedule=schedule,
            cycles=grid_cycles,
            issued=sum(r["issued"] for r in records),
            active_sum=sum(r["active_sum"] for r in records),
            sharded=shard,
            jobs=jobs if shard else 1,
            classification=classification,
            counters=counters,
            flight_recorder=recorder,
        )

    # ------------------------------------------------------------------
    def _launch_serial(self, kernel_name, args, memory):
        """The always-correct path: CTAs run atomically in cta_id order on
        the shared memory, in this process."""
        machine = GPUMachine(self.module, **self.machine_kwargs)
        records = []
        for cta_id in range(self.grid_dim):
            result = machine.launch(
                kernel_name, self.cta_dim, args,
                memory=memory, cta=self._cta_context(cta_id),
            )
            records.append(_cta_record(cta_id, result))
        return records

    def _launch_sharded(self, kernel_name, args, memory, jobs):
        """Shard disjoint-proven CTA ranges across the worker pool."""
        from repro.harness.parallel import run_tasks_observed, task
        from repro.ir import format_module

        module_text = format_module(self.module)
        module_name = getattr(self.module, "name", "module")
        base_cells = dict(memory._cells)
        memory_state = (base_cells, memory._next_free, dict(memory._regions))
        worker_kwargs = {
            key: value for key, value in self.machine_kwargs.items()
            if key != "sink"  # parent-local object; never crosses the fork
        }
        tasks = [
            task(
                _run_cta_range, module_text, module_name, kernel_name,
                tuple(args), chunk, self.grid_dim, self.cta_dim,
                self.shared_words, memory_state, worker_kwargs,
            )
            for chunk in _chunk(list(range(self.grid_dim)), jobs)
        ]
        results, _reports = run_tasks_observed(tasks, jobs=jobs)
        records = []
        for worker_records, final_cells in results:
            records.extend(worker_records)
            # Merge this worker's write-delta. Disjointness proves no two
            # workers wrote the same cell, so last-merge-wins never fires.
            cells = memory._cells
            for key, value in final_cells.items():
                if key not in base_cells or base_cells[key] != value:
                    cells[key] = value
        records.sort(key=lambda r: r["cta_id"])
        ENGINE_COUNTERS.grid_pool_sharded_ctas += self.grid_dim
        return records
