"""CFG simplification.

Three clean-ups, each applied to a fixpoint:

* *branch folding* — ``cbr`` on a constant predicate becomes ``bra``;
* *jump threading* — an empty block that only branches onward is bypassed
  (unless it carries a reconvergence ``label`` or other attributes: those
  blocks are anchors for predictions and must survive);
* *block merging* — a block with a single ``bra`` successor whose target
  has a single predecessor is merged with it (same attribute guard).

Unreachable blocks are dropped at the end.
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView, reachable_from
from repro.ir.instructions import BlockRef, Imm, Instruction, Opcode


def _is_anchor(block):
    """Blocks the passes must not remove or merge away."""
    return bool(block.attrs)


def _fold_constant_branches(function):
    changed = 0
    for block in function.blocks:
        term = block.terminator
        if term is None or term.opcode is not Opcode.CBR:
            continue
        pred = term.operands[0]
        if isinstance(pred, Imm):
            target = term.operands[1] if pred.value != 0 else term.operands[2]
            block.instructions[-1] = Instruction(
                Opcode.BRA, operands=[BlockRef(target.name)]
            )
            changed += 1
        elif term.operands[1].name == term.operands[2].name:
            block.instructions[-1] = Instruction(
                Opcode.BRA, operands=[BlockRef(term.operands[1].name)]
            )
            changed += 1
    return changed


def _thread_jumps(function):
    """Bypass trivial bra-only blocks."""
    changed = 0
    trivial = {}
    for block in function.blocks:
        if (
            len(block.instructions) == 1
            and block.terminator is not None
            and block.terminator.opcode is Opcode.BRA
            and not _is_anchor(block)
            and block is not function.entry
        ):
            target = block.terminator.operands[0].name
            if target != block.name:
                trivial[block.name] = target
    if not trivial:
        return 0

    def resolve(name, seen=None):
        seen = seen or set()
        while name in trivial and name not in seen:
            seen.add(name)
            name = trivial[name]
        return name

    for block in function.blocks:
        term = block.terminator
        if term is None:
            continue
        for target in term.block_targets():
            final = resolve(target)
            if final != target:
                term.replace_block_target(target, final)
                changed += 1
    return changed


def _merge_straightline(function):
    """Merge a -> b when a ends in bra b and b has exactly one pred."""
    changed = 0
    preds = function.predecessors()
    for block in list(function.blocks):
        term = block.terminator
        if term is None or term.opcode is not Opcode.BRA:
            continue
        target_name = term.operands[0].name
        if target_name == block.name:
            continue
        target = function.block(target_name)
        if _is_anchor(target) or target is function.entry:
            continue
        if preds[target_name] != [block.name]:
            continue
        block.instructions.pop()  # the bra
        block.instructions.extend(target.instructions)
        function.remove_block(target_name)
        changed += 1
        preds = function.predecessors()
    return changed


def _drop_unreachable(function):
    view = CFGView.of_function(function)
    keep = reachable_from(view)
    dropped = 0
    for block in list(function.blocks):
        if block.name not in keep:
            function.remove_block(block.name)
            dropped += 1
    return dropped


def simplify_function(function, max_iterations=10):
    """Apply all simplifications to a fixpoint; returns total changes."""
    total = 0
    for _ in range(max_iterations):
        changed = _fold_constant_branches(function)
        changed += _thread_jumps(function)
        changed += _drop_unreachable(function)
        changed += _merge_straightline(function)
        total += changed
        if changed == 0:
            break
    return total


def simplify_module(module):
    return sum(simplify_function(fn) for fn in module)
