"""Pre-Volta stack-based reconvergence machine tests (Section 2)."""

import pytest

from repro.core import compile_baseline, compile_sr
from repro.errors import LaunchError
from repro.frontend import compile_kernel_source
from repro.simt import GPUMachine, StackGPUMachine
from tests.helpers import listing1_module, loop_merge_source


class TestCorrectness:
    def test_straightline_kernel(self):
        module = compile_kernel_source("kernel k() { store(tid(), tid() * 2); }")
        result = StackGPUMachine(module).launch("k", 32)
        assert result.memory.load(5) == 10

    def test_if_else_matches_its(self):
        module = compile_kernel_source(
            """
kernel k() {
    if (tid() < 10) { store(tid(), 1.0); } else { store(tid(), 2.0); }
}
"""
        )
        its = GPUMachine(module).launch("k", 32)
        stack = StackGPUMachine(module).launch("k", 32)
        assert its.memory.snapshot() == stack.memory.snapshot()

    def test_divergent_loop_matches_its(self):
        module = compile_baseline(listing1_module()).module
        its = GPUMachine(module).launch("k", 32)
        stack = StackGPUMachine(module).launch("k", 32)
        assert its.memory.snapshot() == stack.memory.snapshot()

    def test_nested_divergence(self):
        module = compile_kernel_source(
            """
kernel k() {
    let x = 0.0;
    let t = tid();
    for i in 0..8 {
        if (hash01(t + i) < 0.5) {
            if (hash01(t * 3.0 + i) < 0.5) { x = x + 1.0; }
            else { x = x + 0.5; }
        }
    }
    store(t, x);
}
"""
        )
        its = GPUMachine(module).launch("k", 32)
        stack = StackGPUMachine(module).launch("k", 32)
        assert its.memory.snapshot() == stack.memory.snapshot()

    def test_function_calls(self):
        module = compile_kernel_source(
            """
func f(x) { if (x < 8) { return x * 2; } return x; }
kernel k() { store(tid(), @f(tid())); }
"""
        )
        stack = StackGPUMachine(module).launch("k", 16)
        assert stack.memory.load(3) == 6
        assert stack.memory.load(12) == 12

    def test_multiwarp(self):
        module = compile_kernel_source("kernel k() { store(tid(), warpid()); }")
        result = StackGPUMachine(module).launch("k", 70)
        assert result.memory.load(65) == 2

    def test_launch_validation(self):
        module = compile_kernel_source("func f() { return 0; }")
        with pytest.raises(LaunchError):
            StackGPUMachine(module).launch("f", 32)


class TestNoSpeculativeReconvergence:
    """SR annotations are inert on the stack machine — the reason the
    technique needs Volta's independent thread scheduling."""

    def test_sr_has_no_effect_on_stack_machine(self):
        module = compile_kernel_source(loop_merge_source())
        base = compile_baseline(module).module
        sr = compile_sr(module).module
        a = StackGPUMachine(base).launch("lm", 32, args=(128,))
        b = StackGPUMachine(sr).launch("lm", 32, args=(128,))
        assert a.memory.snapshot() == b.memory.snapshot()
        assert a.simt_efficiency == pytest.approx(b.simt_efficiency)
        # ITS, in contrast, reacts to the barriers.
        GPUMachine(base).launch("lm", 32, args=(128,))
        its_sr = GPUMachine(sr).launch("lm", 32, args=(128,))
        assert its_sr.profiler.barrier_issues > 0
        assert a.memory.snapshot() == its_sr.memory.snapshot()

    def test_stack_baseline_close_to_its_baseline(self):
        module = compile_baseline(compile_kernel_source(loop_merge_source())).module
        its = GPUMachine(module).launch("lm", 32, args=(128,))
        stack = StackGPUMachine(module).launch("lm", 32, args=(128,))
        assert stack.simt_efficiency == pytest.approx(its.simt_efficiency, abs=0.1)
