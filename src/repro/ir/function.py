"""Functions: ordered collections of basic blocks with an entry block.

A function owns its blocks and virtual-register namespace. Kernel entry
points are ordinary functions with ``is_kernel=True``; device functions are
called via ``call`` and return via ``ret``.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import Opcode, Reg


class Function:
    """A function: named blocks, parameters, and a register namespace."""

    def __init__(self, name, params=None, is_kernel=False):
        self.name = name
        self.params = list(params or [])
        self.is_kernel = is_kernel
        self.blocks = []          # ordered; blocks[0] is the entry
        self._blocks_by_name = {}
        self._reg_counter = 0
        self._block_counter = 0
        self.attrs = {}
        # (token, {name: slot}) cache for reg_slots(); see below.
        self._reg_slots = None

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    @property
    def entry(self):
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, hint="bb", attrs=None):
        """Create a fresh uniquely-named block and append it."""
        name = hint
        while name in self._blocks_by_name:
            self._block_counter += 1
            name = f"{hint}.{self._block_counter}"
        block = BasicBlock(name, function=self, attrs=attrs)
        self.blocks.append(block)
        self._blocks_by_name[name] = block
        return block

    def add_block(self, block):
        """Attach an externally constructed block."""
        if block.name in self._blocks_by_name:
            raise IRError(f"duplicate block name {block.name} in {self.name}")
        block.function = self
        self.blocks.append(block)
        self._blocks_by_name[block.name] = block
        return block

    def block(self, name):
        try:
            return self._blocks_by_name[name]
        except KeyError:
            raise IRError(f"no block named {name} in function {self.name}") from None

    def has_block(self, name):
        return name in self._blocks_by_name

    def remove_block(self, name):
        block = self.block(name)
        self.blocks.remove(block)
        del self._blocks_by_name[name]
        return block

    def move_block_after(self, block, after):
        """Reorder ``block`` to sit immediately after ``after``."""
        self.blocks.remove(block)
        self.blocks.insert(self.blocks.index(after) + 1, block)

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def new_reg(self, hint="t"):
        """Allocate a fresh virtual register."""
        self._reg_counter += 1
        return Reg(f"{hint}.{self._reg_counter}")

    def all_registers(self):
        """Every register referenced in the function (defs, uses, params)."""
        regs = set(self.params)
        for block in self.blocks:
            for instr in block:
                regs.update(instr.defs())
                regs.update(instr.uses())
        return regs

    def reg_slots(self):
        """Decode-time register allocation: name -> dense slot index.

        Covers the parameters and every register defined or used anywhere
        in the function, in first-appearance order (params first), so a
        frame's register file can be a fixed-size list indexed by slot
        instead of a name-keyed dict. Cached against a cheap structural
        token; rebuilding blocks or minting new registers invalidates it.
        In-place operand mutation is not tracked — passes run on clones,
        the same contract the decode cache relies on.
        """
        token = (
            len(self.blocks),
            sum(len(block.instructions) for block in self.blocks),
            self._reg_counter,
        )
        cached = self._reg_slots
        if cached is not None and cached[0] == token:
            return cached[1]
        slots = {}
        for param in self.params:
            if param.name not in slots:
                slots[param.name] = len(slots)
        for block in self.blocks:
            for instr in block.instructions:
                dst = instr.dst
                if dst is not None and dst.name not in slots:
                    slots[dst.name] = len(slots)
                for operand in instr.uses():
                    if operand.name not in slots:
                        slots[operand.name] = len(slots)
        self._reg_slots = (token, slots)
        return slots

    # ------------------------------------------------------------------
    # CFG edges
    # ------------------------------------------------------------------
    def predecessors(self):
        """Map block name -> list of predecessor block names (in order)."""
        preds = {block.name: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successor_names():
                if succ not in preds:
                    raise IRError(
                        f"block {block.name} branches to unknown block {succ}"
                    )
                preds[succ].append(block.name)
        return preds

    def successors(self):
        """Map block name -> list of successor block names."""
        return {block.name: block.successor_names() for block in self.blocks}

    def edges(self):
        """All CFG edges as (src_name, dst_name) pairs."""
        result = []
        for block in self.blocks:
            for succ in block.successor_names():
                result.append((block.name, succ))
        return result

    def exit_blocks(self):
        """Blocks terminated by ``ret`` or ``exit``."""
        exits = []
        for block in self.blocks:
            term = block.terminator
            if term is not None and term.opcode in (Opcode.RET, Opcode.EXIT):
                exits.append(block)
        return exits

    def blocks_with_label(self, label):
        return [block for block in self.blocks if block.attrs.get("label") == label]

    # ------------------------------------------------------------------
    # Edge splitting (needed for precise cancel placement)
    # ------------------------------------------------------------------
    def split_edge(self, src_name, dst_name, hint=None):
        """Insert a fresh block on the edge ``src -> dst`` and return it."""
        from repro.ir.instructions import BlockRef, Instruction

        src = self.block(src_name)
        dst = self.block(dst_name)
        term = src.terminator
        if term is None or dst_name not in term.block_targets():
            raise IRError(f"no edge {src_name} -> {dst_name}")
        mid = self.new_block(hint or f"{src_name}.to.{dst_name}")
        mid.append(Instruction(Opcode.BRA, operands=[BlockRef(dst.name)]))
        term.replace_block_target(dst_name, mid.name)
        self.move_block_after(mid, src)
        return mid

    # ------------------------------------------------------------------
    # Cloning and iteration
    # ------------------------------------------------------------------
    def clone(self, new_name=None):
        """Deep copy (shares immutable Reg/operand objects)."""
        clone = Function(new_name or self.name, list(self.params), self.is_kernel)
        clone._reg_counter = self._reg_counter
        clone._block_counter = self._block_counter
        clone.attrs = dict(self.attrs)
        for block in self.blocks:
            clone.add_block(block.copy_into(clone))
        return clone

    def instructions(self):
        """Iterate (block, index, instruction) over the whole function."""
        for block in self.blocks:
            for index, instr in enumerate(block.instructions):
                yield block, index, instr

    def __repr__(self):
        kind = "kernel" if self.is_kernel else "func"
        return f"<{kind} @{self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A compilation unit: a set of functions, at most one per name."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}

    def add(self, function):
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        self.functions[function.name] = function
        return function

    def function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named @{name}") from None

    def kernels(self):
        return [fn for fn in self.functions.values() if fn.is_kernel]

    def clone(self):
        clone = Module(self.name)
        for fn in self.functions.values():
            clone.add(fn.clone())
        return clone

    def __iter__(self):
        return iter(self.functions.values())

    def __repr__(self):
        return f"<Module {self.name} ({len(self.functions)} functions)>"


def structure_token(module):
    """A cheap structural fingerprint of a module.

    Identity-keyed caches (decoded programs, compiled programs) pair the
    module object with this token so rebuilding a function or adding or
    removing instructions invalidates stale entries. In-place operand
    mutation is deliberately not captured: passes run on clones, and
    hashing every operand would cost more than re-deriving the cache entry.
    """
    return tuple(
        (fn.name, tuple((blk.name, len(blk.instructions)) for blk in fn.blocks))
        for fn in module
    )
