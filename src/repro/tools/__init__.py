"""Command-line tools: the srkc compiler driver, the trace exporter
(``python -m repro.tools.trace``), and the engine-counter reporter
(``python -m repro.tools.stats`` — per-layer counter tables, saved
snapshots, and snapshot diffs). See docs/observability.md."""
