"""Chrome Trace Event Format export (``chrome://tracing`` / Perfetto).

Converts simulator events (:mod:`repro.obs.events`) and compiler pipeline
spans (:mod:`repro.obs.spans`) into the JSON object format that Chrome's
tracer and https://ui.perfetto.dev load directly::

    {"traceEvents": [...], "displayTimeUnit": "ms", ...}

Mapping:

* the compiler is process 0 (one ``X`` slice per pipeline span, wall time
  in microseconds, IR deltas in ``args``);
* the simulator is process 1 with one thread per warp; each issued
  instruction is an ``X`` slice whose timestamp/duration are warp-local
  cycles (rendered as microseconds — 1 cycle = 1 us);
* divergence, barrier arrive/release, and reconvergence are thread-scoped
  instant events; active-lane counts are emitted as counter (``C``)
  events so Perfetto draws the SIMT-occupancy curve.

Use :func:`chrome_trace` for the dict, :func:`write_chrome_trace` for the
file. ``python -m repro.tools.trace`` wires this to workloads.
"""

from __future__ import annotations

import json

__all__ = ["chrome_trace", "write_chrome_trace",
           "simulator_trace_events", "span_trace_events",
           "merged_worker_trace", "write_merged_worker_trace"]

COMPILER_PID = 0
SIMULATOR_PID = 1

#: Worker processes in a merged multi-worker trace start at this pid so
#: they never collide with the compiler (0) / simulator (1) rows.
WORKER_PID_BASE = 10


def _lanes(lanes):
    return sorted(lanes) if lanes else []


def simulator_trace_events(events, pid=SIMULATOR_PID, counters=True):
    """Chrome dicts for an iterable of simulator events (any kinds)."""
    out = []
    warps = set()
    for event in events:
        kind = getattr(event, "kind", None)
        wid = event.warp_id
        warps.add(wid)
        if kind == "issue":
            opcode = getattr(event.opcode, "value", event.opcode)
            out.append({
                "name": f"{opcode} @{event.function}/{event.block}",
                "cat": "sim,issue",
                "ph": "X",
                "ts": event.ts,
                "dur": event.dur,
                "pid": pid,
                "tid": wid,
                "args": {
                    "function": event.function,
                    "block": event.block,
                    "index": event.index,
                    "active": event.active,
                    "lanes": _lanes(event.lanes),
                },
            })
            if counters:
                out.append({
                    "name": f"active lanes (warp {wid})",
                    "cat": "sim",
                    "ph": "C",
                    "ts": event.ts,
                    "pid": pid,
                    "args": {"active": event.active},
                })
        elif kind == "diverge":
            out.append({
                "name": f"diverge @{event.function}/{event.block}",
                "cat": "sim,diverge",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {
                    target: _lanes(lanes)
                    for target, lanes in sorted(event.targets.items())
                },
            })
        elif kind == "barrier_arrive":
            out.append({
                "name": f"arrive {event.barrier}",
                "cat": "sim,barrier",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {"lanes": _lanes(event.lanes),
                         "parked": event.parked},
            })
        elif kind == "barrier_release":
            out.append({
                "name": f"release {event.barrier}",
                "cat": "sim,barrier",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {"lanes": _lanes(event.lanes)},
            })
        elif kind == "reconverge":
            out.append({
                "name": f"reconverge @{event.function}/{event.block}",
                "cat": "sim,reconverge",
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": pid,
                "tid": wid,
                "args": {"lanes": _lanes(event.lanes)},
            })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "simulator (cycles as us)"},
    }]
    for wid in sorted(warps):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": wid,
            "args": {"name": f"warp {wid}"},
        })
    return meta + out


def span_trace_events(spans, pid=COMPILER_PID):
    """Chrome dicts for compiler pipeline spans (wall seconds -> us)."""
    out = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "compiler pipeline"},
    }, {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": "passes"},
    }]
    for span in spans:
        # An unclosed span (``end`` never stamped) would render with a
        # negative duration, which chrome://tracing rejects; clamp to a
        # zero-length slice and flag it instead of dropping the span.
        duration = span.duration
        args = {"ir_delta": span.ir_delta}
        if duration < 0:
            duration = 0.0
            args["unclosed"] = True
        out.append({
            "name": span.name,
            "cat": "compile",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": duration * 1e6,
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    return out


def chrome_trace(launch=None, events=None, report=None, counters=True):
    """Build the Chrome Trace Event JSON object.

    Args:
        launch: a LaunchResult; its ``profiler.trace`` issue events are
            exported (ignored when ``events`` is given, which is the
            superset a sink collected).
        events: an iterable of simulator events (e.g. ``ListSink.events``).
        report: a CompileReport; its ``spans`` become the compiler track.
    """
    trace_events = []
    if events is None and launch is not None:
        events = launch.profiler.trace or []
    if events is not None:
        trace_events.extend(simulator_trace_events(events, counters=counters))
    spans = getattr(report, "spans", None) or []
    if spans:
        trace_events.extend(span_trace_events(spans))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.chrome_trace"},
    }


def write_chrome_trace(path, launch=None, events=None, report=None,
                       counters=True):
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    data = chrome_trace(
        launch=launch, events=events, report=report, counters=counters
    )
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1)
    return data


def merged_worker_trace(worker_events, labels=None, report=None,
                        counters=False):
    """Merge per-worker event streams into one multi-process trace.

    Args:
        worker_events: a list of event iterables, one per worker, in
            submission order (``run_tasks_observed`` report order). Each
            worker becomes its own Chrome process (pid
            ``WORKER_PID_BASE + index``), so warp ids — which restart at
            0 in every worker and would otherwise collide as tids — stay
            distinguishable: the (pid, tid) pair is unique even when the
            tids themselves repeat across workers.
        labels: optional per-worker display names (e.g. ``"worker 3
            (pid 12345)"``); defaults to the worker index.
        report: optional CompileReport; its spans render as the shared
            compiler track (pid 0).
        counters: forwarded to :func:`simulator_trace_events`.
    """
    worker_events = list(worker_events)
    trace_events = []
    for index, events in enumerate(worker_events):
        pid = WORKER_PID_BASE + index
        label = None
        if labels is not None and index < len(labels):
            label = labels[index]
        if label is None:
            label = f"worker {index}"
        worker = simulator_trace_events(events, pid=pid, counters=counters)
        for entry in worker:
            if entry.get("ph") == "M" and entry["name"] == "process_name":
                entry["args"]["name"] = f"{label} (cycles as us)"
        trace_events.extend(worker)
    spans = getattr(report, "spans", None) or []
    if spans:
        trace_events.extend(span_trace_events(spans))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.chrome_trace",
            "workers": len(worker_events),
        },
    }


def write_merged_worker_trace(path, worker_events, labels=None, report=None,
                              counters=False):
    """Serialize :func:`merged_worker_trace` to ``path``; returns the dict."""
    data = merged_worker_trace(
        worker_events, labels=labels, report=report, counters=counters
    )
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1)
    return data
