"""Grid-sized corpus variants: divergent kernels at 10^5+ threads.

The Table 2 workloads run a handful of warps — enough to reproduce the
paper's per-warp SIMT-efficiency trends, far too small to exercise the
grid launch hierarchy. This corpus scales the same divergence *shapes*
(path-length divergence, branchy control flow) to grid scale: each app
launches ``GRID_DIM x CTA_DIM = 100,352`` threads, writes one cell per
global tid, and keeps its memory footprint provably CTA-disjoint so
:class:`repro.simt.grid.GridLaunch` may shard CTAs across the worker pool.

Kernels deliberately avoid ``ctaid()``/shared memory: every app must be
*launch-shape invariant* — a flat ``GPUMachine.launch`` of all 10^5
threads produces bit-identical per-thread store traces to any grid
factorization of the same range. That equality is what
``benchmarks/bench_simulator.py::test_grid_corpus_sweep_speedup`` pins
while gating the sharded grid's wall-clock speedup over the flat launch
(CTA-cooperative kernels are exercised by the conformance and grid test
suites instead, where serial-vs-sharded parity is the oracle).

These apps live in their own registry, not the Table 2 one: every
existing sweep iterates ``workload_names()``, and a 10^5-thread app
there would multiply the cost of each of those benchmarks by ~400x.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.frontend.parser import compile_kernel_source

#: The default grid factorization: 392 CTAs x 256 threads = 100,352.
GRID_CTA_DIM = 256
GRID_GRID_DIM = 392

GRID_REGISTRY = {}


@dataclass
class GridApp:
    """One grid-scale application: source, kernel entry, memory setup."""

    name: str
    source: str
    kernel_name: str
    #: words of output per thread (the setup allocates n_threads * this)
    out_words_per_thread: int = 1
    _module: object = field(default=None, repr=False)

    def module(self):
        if self._module is None:
            self._module = compile_kernel_source(
                self.source, module_name=self.name
            )
        return self._module

    def setup(self, memory, n_threads):
        """Allocate the output region; returns the kernel argument tuple."""
        out = memory.alloc(n_threads * self.out_words_per_thread, name="out")
        return (out,)


def _register(app):
    if app.name in GRID_REGISTRY:
        raise WorkloadError(f"duplicate grid app name {app.name!r}")
    GRID_REGISTRY[app.name] = app
    return app


def grid_corpus():
    """The grid apps in name order."""
    return [GRID_REGISTRY[name] for name in sorted(GRID_REGISTRY)]


def get_grid_app(name):
    try:
        return GRID_REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown grid app {name!r}; available: {sorted(GRID_REGISTRY)}"
        ) from None


# ---------------------------------------------------------------------------
# The corpus. hash01 keyed on the global tid keeps every app deterministic
# and schedule-invariant; per-thread writes go to out + tid, so the
# mem-effects analysis proves warp (hence CTA) disjointness.
# ---------------------------------------------------------------------------

_register(GridApp(
    name="grid_path",
    kernel_name="grid_path",
    source="""
kernel grid_path(out) {
    // Path-length divergence at grid scale: each thread walks a
    // hash-keyed number of fma steps (the pathtracer/rsbench shape).
    let t = tid();
    let x = 0.5;
    let trips = floor(hash01(t * 3.7) * 8.0) + 2;
    let j = 0;
    while (j < trips) {
        x = fma(x, 1.0001, 0.3);
        x = fma(x, 0.9999, 0.1);
        j = j + 1;
    }
    store(out + t, x);
}
""",
))

_register(GridApp(
    name="grid_branch",
    kernel_name="grid_branch",
    source="""
kernel grid_branch(out) {
    // Unbalanced if/else divergence at grid scale (the mummer/meiyamd5
    // shape): half the warp takes the expensive arm each iteration.
    let t = tid();
    let x = 0.25;
    for i in 0..4 {
        if (hash01(t * 7.1 + i) < 0.5) {
            x = fma(x, 1.0002, 0.2);
            x = fma(x, 0.9998, 0.05);
        } else {
            x = fma(x, 0.9997, 0.4);
        }
    }
    store(out + t, x);
}
""",
))
