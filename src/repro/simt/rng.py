"""Deterministic per-thread random number generation (xorshift32).

Each thread owns an independent stream seeded from (kernel seed, global
thread id), so results are reproducible across schedulers and transforms —
the invariant the correctness property tests rely on.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def mix_seed(seed, tid):
    """SplitMix-style seed derivation; never returns zero."""
    z = (seed * 0x9E3779B9 + tid * 0x85EBCA6B + 0x165667B1) & _MASK32
    z ^= z >> 16
    z = (z * 0x7FEB352D) & _MASK32
    z ^= z >> 15
    z = (z * 0x846CA68B) & _MASK32
    z ^= z >> 16
    return z or 0xDEADBEEF


class XorShift32:
    """Tiny, fast, deterministic PRNG; uniform() in [0, 1)."""

    __slots__ = ("state",)

    def __init__(self, seed, tid=0):
        self.state = mix_seed(seed, tid)

    def next_u32(self):
        x = self.state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self.state = x
        return x

    def uniform(self):
        return self.next_u32() / 4294967296.0

    def randint(self, low, high):
        """Uniform integer in [low, high] inclusive."""
        span = high - low + 1
        return low + self.next_u32() % span

    def fork(self, salt):
        """An independent stream derived from this one (for sub-tasks)."""
        return XorShift32(self.next_u32() ^ salt)
