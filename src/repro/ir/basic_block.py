"""Basic blocks: named straight-line instruction sequences.

A block's successors are derived from its terminator's symbolic targets;
predecessor sets are maintained by the owning :class:`repro.ir.Function`.

Blocks carry an ``attrs`` dict. Keys used by the library:

* ``label`` — source-level reconvergence label (target of ``Predict``),
* ``region_start`` — True if a prediction region starts here,
* ``comment`` — free-form note preserved by the printer.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import Instruction, Opcode


class BasicBlock:
    """A named basic block inside a function."""

    def __init__(self, name, function=None, attrs=None):
        self.name = name
        self.function = function
        self.instructions = []
        self.attrs = dict(attrs or {})

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def terminator(self):
        """The block's terminator, or None if the block is unterminated."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successor_names(self):
        term = self.terminator
        if term is None:
            return []
        return term.block_targets()

    def successors(self):
        """Successor BasicBlock objects (requires an owning function)."""
        if self.function is None:
            raise IRError(f"block {self.name} is not attached to a function")
        return [self.function.block(name) for name in self.successor_names()]

    @property
    def label(self):
        """Source-level reconvergence label attached to this block, if any."""
        return self.attrs.get("label")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, instr):
        """Append an instruction; refuses to add past a terminator."""
        if not isinstance(instr, Instruction):
            raise IRError(f"expected Instruction, got {instr!r}")
        if self.terminator is not None:
            raise IRError(f"block {self.name} already terminated; cannot append")
        self.instructions.append(instr)
        return instr

    def insert(self, index, instr):
        """Insert an instruction at ``index`` (may not displace terminator rule)."""
        if not isinstance(instr, Instruction):
            raise IRError(f"expected Instruction, got {instr!r}")
        if instr.is_terminator and index != len(self.instructions):
            raise IRError("terminators may only be appended at block end")
        self.instructions.insert(index, instr)
        return instr

    def prepend(self, instr):
        """Insert an instruction at the top of the block."""
        return self.insert(0, instr)

    def insert_before_terminator(self, instr):
        """Insert just before the terminator (or append if unterminated)."""
        if self.terminator is None:
            return self.append(instr)
        return self.insert(len(self.instructions) - 1, instr)

    def remove(self, instr):
        self.instructions.remove(instr)

    def first_real_index(self):
        """Index after any leading barrier-wait bookkeeping; 0 by default.

        Used by passes that must insert *before* existing synchronization.
        """
        return 0

    def index_of(self, instr):
        for i, existing in enumerate(self.instructions):
            if existing is instr:
                return i
        raise IRError(f"instruction {instr!r} not in block {self.name}")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy_into(self, function):
        """Deep-copy this block into ``function`` (same name)."""
        clone = BasicBlock(self.name, function=function, attrs=dict(self.attrs))
        clone.instructions = [instr.copy() for instr in self.instructions]
        return clone

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"


def count_static_instructions(blocks, *, ignore=frozenset({Opcode.NOP, Opcode.PREDICT})):
    """Total instruction count over ``blocks``, skipping marker opcodes."""
    return sum(
        1
        for block in blocks
        for instr in block.instructions
        if instr.opcode not in ignore
    )
