"""Unified observability: events, sinks, metrics, spans, exporters.

The ``repro.obs`` package instruments all three layers of the stack:

* **simulator** — typed, cycle-stamped events (:mod:`repro.obs.events`)
  emitted into a pluggable sink (:mod:`repro.obs.sinks`); the default
  :data:`NULL_SINK` keeps the fast path allocation-free;
* **metrics** — stall-reason cycle attribution, barrier occupancy and
  wait-time distributions, divergence-depth histograms
  (:mod:`repro.obs.metrics`), surfaced via ``launch.metrics`` and
  ``Profiler.summary()``;
* **compiler** — timed pass-pipeline spans with IR deltas
  (:mod:`repro.obs.spans`) attached to ``CompileReport.spans``;
* **engine counters** — the always-on, namespaced per-layer counter
  registry (:mod:`repro.obs.counters`): decode-cache and compile-cache
  hits, segment-fusion coverage, batch epochs/rollbacks, analysis cache
  traffic, worker-pool reuse — snapshot/diff/merge, rendered by
  ``python -m repro.tools.stats``;
* **flight recorder** — a bounded ring of recent engine decisions per
  launch (:mod:`repro.obs.recorder`), dumped as a structured post-mortem
  on ``LaunchError``/deadlock;
* **export** — Chrome Trace Event Format for ``chrome://tracing`` /
  Perfetto (:mod:`repro.obs.chrome_trace`), including merged
  multi-worker timelines, and the ``python -m repro.tools.trace`` CLI.

See ``docs/observability.md`` for the event taxonomy and examples.
"""

from repro.obs.chrome_trace import (
    chrome_trace,
    merged_worker_trace,
    simulator_trace_events,
    span_trace_events,
    write_chrome_trace,
    write_merged_worker_trace,
)
from repro.obs.counters import (
    COUNTERS,
    ENGINE_COUNTERS,
    EngineCounters,
    counter_layers,
)
from repro.obs.recorder import (
    FlightRecorder,
    attach_post_mortem,
    make_recorder,
    recorder_level,
    set_recorder_level,
)
from repro.obs.events import (
    BarrierArriveEvent,
    BarrierReleaseEvent,
    DivergeEvent,
    IssueEvent,
    ReconvergeEvent,
    TraceEvent,
)
from repro.obs.metrics import (
    ACTIVE,
    STALL_BARRIER,
    STALL_DIVERGED,
    STALL_FINISHED,
    STALL_REASONS,
    Histogram,
    LaunchMetrics,
)
from repro.obs.sinks import (
    NULL_SINK,
    CallbackSink,
    EventSink,
    JsonlSink,
    ListSink,
    NullSink,
    ambient_sink,
    set_ambient_sink,
)
from repro.obs.spans import IRStats, Span, SpanRecorder, module_stats

__all__ = [
    "ACTIVE",
    "BarrierArriveEvent",
    "BarrierReleaseEvent",
    "COUNTERS",
    "CallbackSink",
    "DivergeEvent",
    "ENGINE_COUNTERS",
    "EngineCounters",
    "EventSink",
    "FlightRecorder",
    "Histogram",
    "IRStats",
    "IssueEvent",
    "JsonlSink",
    "LaunchMetrics",
    "ListSink",
    "NULL_SINK",
    "NullSink",
    "ReconvergeEvent",
    "STALL_BARRIER",
    "STALL_DIVERGED",
    "STALL_FINISHED",
    "STALL_REASONS",
    "Span",
    "SpanRecorder",
    "TraceEvent",
    "ambient_sink",
    "attach_post_mortem",
    "chrome_trace",
    "counter_layers",
    "make_recorder",
    "merged_worker_trace",
    "module_stats",
    "recorder_level",
    "set_ambient_sink",
    "set_recorder_level",
    "simulator_trace_events",
    "span_trace_events",
    "write_chrome_trace",
    "write_merged_worker_trace",
]
