#!/usr/bin/env python
"""Quickstart: annotate a divergent kernel and watch SIMT efficiency rise.

This is the Listing 1 / Figure 1 scenario from the paper: a loop whose
body contains a divergent branch guarding expensive code. We write the
kernel in the textual kernel language, mark the reconvergence point with
``predict L1`` + ``label L1:``, compile it twice — baseline PDOM
synchronization vs Speculative Reconvergence — and run both on the
simulator.

Run: ``python examples/quickstart.py``
"""

from repro import GPUMachine, compile_baseline, compile_kernel_source, compile_sr

KERNEL = """
kernel listing1(n_iters) {
    let acc = 0.0;
    let t = tid();
    predict L1, 12;                   // Section 4.1 directive (soft, k=12)
    for i in 0..n_iters {
        // Prolog: advance the per-thread state (cheap).
        let u = hash01(t * 977.0 + i * 83.0);
        if (u < 0.12) {
            // Expensive(): only some threads take this each iteration,
            // but every thread takes it eventually.
            label L1: acc = acc + 0.5;
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
            acc = fma(acc, 0.999, 0.5); acc = fma(acc, 0.999, 0.5);
        }
        // Epilog: bookkeeping (cheap).
        acc = acc * 0.9999;
    }
    store(t, acc);
}
"""


def main():
    module = compile_kernel_source(KERNEL)

    baseline_prog = compile_baseline(module)
    sr_prog = compile_sr(module)

    baseline = GPUMachine(baseline_prog.module).launch("listing1", 32, args=(40,))
    optimized = GPUMachine(sr_prog.module).launch("listing1", 32, args=(40,))

    assert baseline.memory.snapshot() == optimized.memory.snapshot(), (
        "convergence barriers must never change results"
    )

    print("What the SR pass inserted:")
    print(sr_prog.report.describe())
    print()
    print(f"{'':14s}{'SIMT efficiency':>18s}{'cycles':>10s}")
    print(f"{'baseline':14s}{baseline.simt_efficiency:>17.1%}{baseline.cycles:>10d}")
    print(f"{'with SR':14s}{optimized.simt_efficiency:>17.1%}{optimized.cycles:>10d}")
    print(f"\nspeedup: {baseline.cycles / optimized.cycles:.2f}x "
          f"(results verified identical)")


if __name__ == "__main__":
    main()
