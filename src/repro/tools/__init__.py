"""Command-line tools: the srkc compiler driver and the trace exporter
(``python -m repro.tools.trace`` — see docs/observability.md)."""
