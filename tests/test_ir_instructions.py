"""Unit tests for the IR instruction set."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BARRIER_OPS,
    TERMINATORS,
    Barrier,
    BlockRef,
    FuncRef,
    Imm,
    Instruction,
    Opcode,
    Reg,
    make,
)


class TestOperands:
    def test_reg_identity(self):
        assert Reg("a") == Reg("a")
        assert Reg("a") != Reg("b")
        assert hash(Reg("a")) == hash(Reg("a"))

    def test_operand_reprs(self):
        assert repr(Reg("x")) == "%x"
        assert repr(Barrier("b0")) == "$b0"
        assert repr(BlockRef("bb")) == "^bb"
        assert repr(FuncRef("f")) == "@f"

    def test_imm_holds_ints_and_floats(self):
        assert Imm(3).value == 3
        assert Imm(2.5).value == 2.5


class TestInstruction:
    def test_requires_opcode_enum(self):
        with pytest.raises(IRError):
            Instruction("add", dst=Reg("x"))

    def test_uses_and_defs(self):
        instr = make(Opcode.ADD, Reg("d"), Reg("a"), Imm(1))
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == [Reg("a")]

    def test_no_dst_defs_empty(self):
        instr = make(Opcode.ST, None, Reg("addr"), Reg("v"))
        assert instr.defs() == []
        assert set(instr.uses()) == {Reg("addr"), Reg("v")}

    def test_terminator_property(self):
        for opcode in TERMINATORS:
            assert Instruction(opcode).is_terminator
        assert not make(Opcode.ADD, Reg("d"), Reg("a"), Reg("b")).is_terminator

    def test_block_targets_of_cbr(self):
        instr = make(Opcode.CBR, None, Reg("p"), BlockRef("t"), BlockRef("f"))
        assert instr.block_targets() == ["t", "f"]

    def test_replace_block_target(self):
        instr = make(Opcode.CBR, None, Reg("p"), BlockRef("t"), BlockRef("f"))
        instr.replace_block_target("t", "mid")
        assert instr.block_targets() == ["mid", "f"]

    def test_replace_leaves_other_targets(self):
        instr = make(Opcode.BRA, None, BlockRef("x"))
        instr.replace_block_target("y", "z")
        assert instr.block_targets() == ["x"]

    def test_barrier_operand(self):
        instr = make(Opcode.BSSY, None, Barrier("b0"))
        assert instr.barrier_operand() == Barrier("b0")

    def test_barrier_operand_register_indirect(self):
        instr = make(Opcode.BSYNC, None, Reg("bt"))
        assert instr.barrier_operand() == Reg("bt")

    def test_barrier_operand_on_non_barrier_op_raises(self):
        with pytest.raises(IRError):
            make(Opcode.ADD, Reg("d"), Reg("a"), Reg("b")).barrier_operand()

    def test_barrier_operand_missing_raises(self):
        with pytest.raises(IRError):
            Instruction(Opcode.BSSY).barrier_operand()

    def test_is_barrier_op(self):
        for opcode in BARRIER_OPS:
            assert Instruction(opcode, dst=Reg("d") if opcode is Opcode.BARCNT else None,
                               operands=[Barrier("b")]).is_barrier_op
        assert make(Opcode.BMOV, Reg("d"), Barrier("b")).is_barrier_op

    def test_copy_is_deep_enough(self):
        instr = make(Opcode.ADD, Reg("d"), Reg("a"), Imm(1), origin="sr")
        clone = instr.copy()
        clone.operands[1] = Imm(2)
        clone.attrs["origin"] = "x"
        assert instr.operands[1] == Imm(1)
        assert instr.attrs["origin"] == "sr"

    def test_equality_ignores_attrs(self):
        a = make(Opcode.ADD, Reg("d"), Reg("a"), Imm(1), origin="sr")
        b = make(Opcode.ADD, Reg("d"), Reg("a"), Imm(1))
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_shows_dst_and_operands(self):
        text = repr(make(Opcode.ADD, Reg("d"), Reg("a"), Imm(1)))
        assert "%d" in text and "add" in text
