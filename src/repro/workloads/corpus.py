"""The Section 5.4 application corpus.

"Of the 520 CUDA applications we studied, 75 had a SIMT efficiency of less
than about 80%. Our implementation detected non-trivial opportunity in 16
applications, and 5 showed significant improvement in SIMT efficiency and
runtime."

The paper's corpus is a proprietary trace database; we reproduce the
*funnel* with a parametric generator that emits 520 small kernels across
four ground-truth categories:

* ``uniform``    — no thread-varying control flow (high SIMT efficiency);
* ``mild``       — divergence too cheap/balanced to drop efficiency < 80%;
* ``disjoint``   — badly divergent, but the diverged paths share no common
  code (the first category of Section 3 — nothing for SR to exploit);
* ``detectable`` — Loop Merge / Iteration Delay shapes; a ``strong``
  subset has expensive common code (significant upside), the rest are
  marginal and may see no change or regress, as the paper observes.

Each kernel is deterministic given the corpus seed, so the funnel counts
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.pipeline import ReconvergenceCompiler
from repro.frontend.parser import compile_kernel_source
from repro.simt.machine import GPUMachine
from repro.simt.memory import GlobalMemory

CATEGORY_COUNTS = {
    "uniform": 350,
    "mild": 95,
    "disjoint": 59,
    "detectable": 16,
}
STRONG_DETECTABLE = 5  # of the detectable apps, how many have big upside


@dataclass
class CorpusApp:
    """One generated application."""

    name: str
    category: str       # ground truth: uniform | mild | disjoint | detectable
    strong: bool        # detectable apps with significant expected upside
    source: str
    kernel_name: str
    _module: object = field(default=None, repr=False)

    def module(self):
        if self._module is None:
            self._module = compile_kernel_source(self.source, module_name=self.name)
        return self._module

    def run(self, mode="baseline", threshold=None, auto_options=None, seed=2020):
        compiler = ReconvergenceCompiler()
        compiled = compiler.compile(
            self.module(), mode=mode, threshold=threshold,
            auto_options=auto_options,
        )
        machine = GPUMachine(compiled.module, seed=seed)
        launch = machine.launch(self.kernel_name, 32, args=(), memory=GlobalMemory())
        return compiled, launch


def _uniform_source(rng, name):
    trips = rng.randint(6, 20)
    work = rng.randint(3, 8)
    body = "\n".join("        x = fma(x, 1.0001, 0.3);" for _ in range(work))
    return f"""
kernel {name}() {{
    let x = 0.0;
    for i in 0..{trips} {{
{body}
    }}
    store(tid(), x);
}}
"""


def _mild_source(rng, name):
    trips = rng.randint(8, 16)
    prob = rng.uniform(0.3, 0.7)
    return f"""
kernel {name}() {{
    let x = 0.0;
    let t = tid();
    for i in 0..{trips} {{
        x = fma(x, 1.0001, 0.3);
        x = fma(x, 1.0001, 0.3);
        x = fma(x, 1.0001, 0.3);
        if (hash01(t * 7.0 + i) < {prob:.3f}) {{
            x = x + 0.01;
        }}
        x = fma(x, 1.0001, 0.3);
        x = fma(x, 1.0001, 0.3);
    }}
    store(t, x);
}}
"""


def _disjoint_source(rng, name):
    trips = rng.randint(8, 18)
    cost_a = rng.randint(8, 16)
    cost_b = rng.randint(8, 16)
    # Both sides are the same kind of work (fma chains) so the paths are
    # genuinely disjoint-but-balanced: nothing for SR to merge.
    then_body = "\n".join("            x = fma(x, 0.999, 0.5);" for _ in range(cost_a))
    else_body = "\n".join("            y = fma(y, 1.001, 0.3);" for _ in range(cost_b))
    return f"""
kernel {name}() {{
    let x = 0.0;
    let y = 1.0;
    let t = tid();
    for i in 0..{trips} {{
        if (hash01(t * 13.0 + i * 3.0) < 0.5) {{
{then_body}
        }} else {{
{else_body}
        }}
    }}
    store(t, x + y);
}}
"""


def _detectable_source(rng, name, strong):
    # Loop Merge shape: outer task loop + divergent-trip inner loop.
    # Strong apps pull work from a dynamic queue (memory cell 0) so load
    # imbalance does not leave a long low-occupancy tail; weak apps have a
    # cheap inner loop relative to their refill, so SR regresses on them —
    # "many examples with compiler-detected opportunity see no change or
    # even regression" (Section 5.4).
    if strong:
        inner_cost = rng.randint(14, 20)
        trip_hi = rng.randint(40, 64)
        refill = 2
        tasks = rng.randint(6, 8)
        next_task = "task = atomadd(0, 1);"
        first_task = "let task = atomadd(0, 1);"
        out = "store(tid() + 64, x);"
    else:
        inner_cost = rng.randint(3, 5)
        trip_hi = rng.randint(8, 14)
        refill = rng.randint(4, 8)
        tasks = rng.randint(4, 6)
        next_task = "task = task + 32;"
        first_task = "let task = tid();"
        out = "store(tid(), x);"
    body = "\n".join("            x = fma(x, 1.0001, 0.4);" for _ in range(inner_cost))
    prolog = "\n".join("        x = fma(x, 0.999, 0.05);" for _ in range(refill))
    return f"""
kernel {name}() {{
    let x = 0.0;
    {first_task}
    while (task < {tasks * 32}) {{
{prolog}
        let u = hash01(task * 3.33);
        let trips = floor(u * u * {trip_hi}.0) + 1;
        let j = 0;
        while (j < trips) {{
            x = fma(x, 1.0001, 0.4);
{body}
            j = j + 1;
        }}
        {next_task}
    }}
    {out}
}}
"""


def generate_corpus(counts=None, seed=520, strong=STRONG_DETECTABLE):
    """Generate the corpus; returns a list of :class:`CorpusApp`."""
    counts = dict(CATEGORY_COUNTS if counts is None else counts)
    rng = random.Random(seed)
    apps = []
    makers = {
        "uniform": lambda r, n, s: _uniform_source(r, n),
        "mild": lambda r, n, s: _mild_source(r, n),
        "disjoint": lambda r, n, s: _disjoint_source(r, n),
        "detectable": _detectable_source,
    }
    for category in ("uniform", "mild", "disjoint", "detectable"):
        for index in range(counts.get(category, 0)):
            name = f"app_{category}_{index:03d}"
            is_strong = category == "detectable" and index < strong
            source = makers[category](rng, name, is_strong)
            apps.append(
                CorpusApp(
                    name=name,
                    category=category,
                    strong=is_strong,
                    source=source,
                    kernel_name=name,
                )
            )
    return apps


@dataclass
class FunnelResult:
    """Measured Section 5.4 funnel."""

    total: int
    low_efficiency: int          # SIMT efficiency < cutoff
    detected: int                # autodetect accepted >= 1 candidate
    significant: int             # detected AND speedup >= significance
    rows: list = field(default_factory=list)

    def describe(self):
        return (
            f"{self.total} apps -> {self.low_efficiency} below cutoff -> "
            f"{self.detected} detected -> {self.significant} significant"
        )


def run_funnel(
    apps,
    efficiency_cutoff=0.8,
    significance=1.10,
    auto_options=None,
):
    """Measure the paper's funnel over ``apps``.

    For every app: run the PDOM baseline; if automatic detection accepts a
    candidate, compile in ``auto`` mode and rerun; an app is *significant*
    when auto-SR speeds it up by ``significance`` or better.
    """
    rows = []
    low = detected = significant = 0
    for app in apps:
        _, baseline = app.run(mode="baseline")
        base_eff = baseline.simt_efficiency
        row = {
            "name": app.name,
            "category": app.category,
            "strong": app.strong,
            "baseline_eff": base_eff,
            "baseline_cycles": baseline.cycles,
            "detected": False,
            "auto_eff": None,
            "speedup": None,
        }
        if base_eff < efficiency_cutoff:
            low += 1
        compiled, auto_launch = app.run(mode="auto", auto_options=auto_options)
        accepted = [c for c in compiled.report.auto_candidates if c.accepted]
        if accepted:
            detected += 1
            row["detected"] = True
            row["auto_eff"] = auto_launch.simt_efficiency
            row["speedup"] = baseline.cycles / auto_launch.cycles
            if row["speedup"] >= significance:
                significant += 1
        rows.append(row)
    return FunnelResult(
        total=len(apps),
        low_efficiency=low,
        detected=detected,
        significant=significant,
        rows=rows,
    )
