"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad operands, missing terminators, dangling refs."""


class ParseError(ReproError):
    """Raised by the IR text parser and the kernel-language parser."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class VerifierError(IRError):
    """The IR verifier found a structural violation."""


class AnalysisError(ReproError):
    """An analysis was queried on input it cannot handle."""


class TransformError(ReproError):
    """A compiler transform could not be applied."""


class DeconflictionError(TransformError):
    """Conflicting barriers could not be resolved (Section 4.3)."""


class AllocationError(TransformError):
    """Barrier register allocation ran out of physical registers."""


class SimulationError(ReproError):
    """The SIMT simulator hit an invalid execution state."""


class DeadlockError(SimulationError):
    """No thread is runnable and no barrier can be released."""

    def __init__(self, message, warp_id=None, waiting=None):
        super().__init__(message)
        self.warp_id = warp_id
        self.waiting = waiting or []


class LaunchError(SimulationError):
    """Kernel launch configuration is invalid."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""
