"""Shared benchmark configuration.

Each benchmark regenerates one table/figure of the paper exactly once per
session (the experiments are deterministic; statistical repetition would
only re-measure Python overhead) and prints the rows/series the paper
reports. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a figure generator once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
