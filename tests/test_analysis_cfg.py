"""Tests for CFG utilities, dominators, and loops — including a hypothesis
comparison of our dominator algorithm against networkx on random graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CFGView,
    add_virtual_exit,
    can_reach,
    compute_dominators,
    compute_loops,
    compute_post_dominators,
    dominator_tree,
    loop_nest,
    post_dominator_tree,
    reachable_from,
    reverse_postorder,
)
from repro.errors import AnalysisError
from tests.helpers import listing1_module, loop_function

DIAMOND = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
LOOP = {"e": ["h"], "h": ["b", "x"], "b": ["h"], "x": []}
NESTED = {
    "e": ["oh"],
    "oh": ["p", "x"],
    "p": ["ih"],
    "ih": ["ib", "ep"],
    "ib": ["ih"],
    "ep": ["oh"],
    "x": [],
}


class TestCFGView:
    def test_predecessors_computed(self):
        view = CFGView(DIAMOND, "a")
        assert sorted(view.preds["d"]) == ["b", "c"]

    def test_unknown_entry_rejected(self):
        with pytest.raises(AnalysisError):
            CFGView(DIAMOND, "zzz")

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(AnalysisError):
            CFGView({"a": ["ghost"]}, "a")

    def test_reversed_swaps_edges(self):
        view = CFGView(DIAMOND, "a").reversed("d")
        assert sorted(view.succs["d"]) == ["b", "c"]

    def test_of_function(self):
        module, fn = loop_function()
        view = CFGView.of_function(fn)
        assert view.entry == "entry"
        assert "head" in view.succs


class TestOrders:
    def test_rpo_starts_at_entry(self):
        assert reverse_postorder(CFGView(DIAMOND, "a"))[0] == "a"

    def test_rpo_topological_on_dag(self):
        order = reverse_postorder(CFGView(DIAMOND, "a"))
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_rpo_handles_loops(self):
        order = reverse_postorder(CFGView(LOOP, "e"))
        assert set(order) == {"e", "h", "b", "x"}
        assert order[0] == "e"

    def test_reachable_from(self):
        view = CFGView({"a": ["b"], "b": [], "iso": []}, "a")
        assert reachable_from(view) == {"a", "b"}

    def test_can_reach(self):
        view = CFGView(DIAMOND, "a")
        assert can_reach(view, ["d"]) == {"a", "b", "c", "d"}
        assert can_reach(view, ["b"]) == {"a", "b"}

    def test_virtual_exit_attaches_to_sinks(self):
        augmented, exit_name = add_virtual_exit(CFGView(DIAMOND, "a"))
        assert exit_name in augmented.succs["d"]

    def test_virtual_exit_on_infinite_loop(self):
        graph = {"a": ["b"], "b": ["a"]}
        augmented, exit_name = add_virtual_exit(CFGView(graph, "a"))
        assert reachable_from(augmented) >= {"a", "b", exit_name}


class TestDominators:
    def test_diamond_idoms(self):
        tree = compute_dominators(CFGView(DIAMOND, "a"))
        assert tree.idom == {"a": "a", "b": "a", "c": "a", "d": "a"}

    def test_dominates_reflexive(self):
        tree = compute_dominators(CFGView(DIAMOND, "a"))
        assert tree.dominates("b", "b")
        assert not tree.strictly_dominates("b", "b")

    def test_loop_header_dominates_body(self):
        tree = compute_dominators(CFGView(LOOP, "e"))
        assert tree.dominates("h", "b")
        assert tree.idom["b"] == "h"

    def test_nearest_common_dominator(self):
        tree = compute_dominators(CFGView(DIAMOND, "a"))
        assert tree.nearest_common_dominator("b", "c") == "a"

    def test_depth(self):
        tree = compute_dominators(CFGView(LOOP, "e"))
        assert tree.depth("e") == 0
        assert tree.depth("b") == 2

    def test_function_wrapper(self):
        module, fn = loop_function()
        tree = dominator_tree(fn)
        assert tree.dominates("entry", "exit")


class TestPostDominators:
    def test_diamond_ipdoms(self):
        pdom = compute_post_dominators(CFGView(DIAMOND, "a"))
        assert pdom.ipdom("b") == "d"
        assert pdom.ipdom("c") == "d"
        assert pdom.ipdom("a") == "d"
        assert pdom.ipdom("d") is None

    def test_branch_reconvergence_point(self):
        view = CFGView(DIAMOND, "a")
        pdom = compute_post_dominators(view)
        assert pdom.branch_reconvergence_point("a", view) == "d"

    def test_loop_exit_is_pdom_of_header(self):
        view = CFGView(LOOP, "e")
        pdom = compute_post_dominators(view)
        assert pdom.ipdom("h") == "x"
        assert pdom.branch_reconvergence_point("h", view) == "x"

    def test_listing1_reconvergence_at_epilog(self):
        module = listing1_module()
        fn = module.function("k")
        view = CFGView.of_function(fn)
        pdom = post_dominator_tree(fn)
        assert pdom.branch_reconvergence_point("prolog", view) == "epilog"


class TestLoops:
    def test_single_loop_detected(self):
        nest = compute_loops(CFGView(LOOP, "e"))
        assert len(nest) == 1
        loop = nest.loops[0]
        assert loop.header == "h"
        assert loop.body == {"h", "b"}
        assert loop.latches == ["b"]

    def test_nested_loops(self):
        nest = compute_loops(CFGView(NESTED, "e"))
        assert len(nest) == 2
        inner = nest.loop_with_header("ih")
        outer = nest.loop_with_header("oh")
        assert inner.parent is outer
        assert inner.depth == 2
        assert outer.depth == 1

    def test_innermost_containing(self):
        nest = compute_loops(CFGView(NESTED, "e"))
        assert nest.innermost_containing("ib").header == "ih"
        assert nest.innermost_containing("ep").header == "oh"
        assert nest.innermost_containing("x") is None

    def test_exit_edges(self):
        nest = compute_loops(CFGView(NESTED, "e"))
        view = CFGView(NESTED, "e")
        inner = nest.loop_with_header("ih")
        assert inner.exit_edges(view) == [("ih", "ep")]

    def test_loop_depth_outside_is_zero(self):
        nest = compute_loops(CFGView(NESTED, "e"))
        assert nest.loop_depth("e") == 0

    def test_function_wrapper(self):
        module, fn = loop_function()
        nest = loop_nest(fn)
        assert nest.loop_with_header("head") is not None


@st.composite
def random_digraph(draw):
    """A random rooted digraph for cross-checking against networkx."""
    n = draw(st.integers(2, 10))
    nodes = [f"n{i}" for i in range(n)]
    succs = {node: [] for node in nodes}
    # A spine guarantees reachability from the root.
    for i in range(1, n):
        parent = nodes[draw(st.integers(0, i - 1))]
        succs[parent].append(nodes[i])
    extra = draw(st.integers(0, n * 2))
    for _ in range(extra):
        a = nodes[draw(st.integers(0, n - 1))]
        b = nodes[draw(st.integers(0, n - 1))]
        if b not in succs[a]:
            succs[a].append(b)
    return succs, nodes[0]


class TestDominatorsAgainstNetworkx:
    @settings(max_examples=80, deadline=None)
    @given(random_digraph())
    def test_idoms_match_networkx(self, graph_and_root):
        succs, root = graph_and_root
        view = CFGView(succs, root)
        tree = compute_dominators(view)
        graph = nx.DiGraph()
        graph.add_nodes_from(succs)
        for src, targets in succs.items():
            for dst in targets:
                graph.add_edge(src, dst)
        expected = dict(nx.immediate_dominators(graph, root))
        expected[root] = root  # some networkx versions omit the root entry
        assert tree.idom == expected
