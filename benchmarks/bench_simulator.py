"""Raw substrate throughput: simulator issue rate and compile time.

Not a paper figure — tracks the reproduction's own performance so workload
presets stay affordable. ``test_fastpath_corpus_sweep_speedup`` is the
PR-level acceptance benchmark: the full Table 2 corpus sweep on the
fast-path engine (pre-decode + compile cache + parallel runner) against
the interpreted, cache-less, serial configuration, with the result
recorded in ``BENCH_fastpath_sweep.json`` at the repo root.
"""

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro.core import ReconvergenceCompiler
from repro.core.program_cache import PROGRAM_CACHE, cache_disabled
from repro.harness.parallel import run_tasks, task
from repro.obs import counters as obs_counters
from repro.simt.fastpath import clear_decode_cache, fastpath_disabled
from repro.workloads import get_workload, workload_names

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SEED = 2020


def test_simulator_issue_throughput(benchmark):
    workload = get_workload("mcb", steps=16)
    compiled = workload.compile(mode="baseline")

    def launch():
        return workload.run(mode="baseline", compiled=compiled)

    result = benchmark.pedantic(launch, rounds=3, iterations=1)
    assert result.issued > 0
    rate = result.issued / benchmark.stats.stats.mean
    print(f"\nsimulator throughput: {rate:,.0f} issues/s "
          f"({result.issued} issues per launch)")


def test_compile_throughput(benchmark):
    workload = get_workload("rsbench")
    module = workload.module()
    compiler = ReconvergenceCompiler()

    def compile_sr():
        return compiler.compile(module, mode="sr", threshold=16)

    prog = benchmark.pedantic(compile_sr, rounds=5, iterations=1)
    assert prog.report.sr_reports


def _sweep_point(name, mode, seed=_SEED):
    """One compile-and-launch of a Table 2 workload at its default preset.

    Returns everything the speedup claim must hold fixed: SIMT efficiency,
    cycles, and a digest of every thread's ordered store trace.
    """
    workload = get_workload(name)
    result = workload.run(mode=mode, seed=seed)
    traces = {
        str(tid): trace
        for tid, trace in sorted(result.launch.store_traces().items())
    }
    digest = hashlib.sha256(
        json.dumps(traces, sort_keys=True).encode()
    ).hexdigest()
    return {
        "workload": name,
        "mode": mode,
        "simt_efficiency": result.simt_efficiency,
        "cycles": result.cycles,
        "trace_sha256": digest,
    }


def _corpus_sweep(jobs=None):
    """Figure 7/8-shaped sweep: every workload in baseline and sr mode."""
    tasks = [
        task(_sweep_point, name, mode)
        for name in workload_names()
        for mode in ("baseline", "sr")
    ]
    return run_tasks(tasks, jobs=jobs)


def test_fastpath_corpus_sweep_speedup(benchmark):
    """The tentpole's acceptance: >= 2x wall-clock on the corpus sweep with
    bit-identical results.

    Fast configuration: pre-decoded dispatch + compile cache + parallel
    runner (``REPRO_BENCH_JOBS`` workers, default 4). Slow configuration:
    the interpreted executor with caching off, serial — the pre-fastpath
    engine. The required ratio is tunable via ``REPRO_BENCH_MIN_SPEEDUP``
    for slower CI machines; the measured value is written to
    ``BENCH_fastpath_sweep.json``.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))

    # Warm module/program/decode caches in the parent so forked workers
    # inherit them — the steady state of a figure-regeneration session.
    # The counter delta over this serial reference sweep ships with the
    # record so compare.py can attribute timing moves to engine layers.
    counters_before = obs_counters.snapshot()
    reference = _corpus_sweep()
    sweep_counters = obs_counters.delta(
        obs_counters.snapshot(), counters_before
    )
    fast_results = benchmark.pedantic(
        lambda: _corpus_sweep(jobs=jobs), rounds=3, iterations=1
    )
    fast_time = benchmark.stats.stats.min

    with fastpath_disabled(), cache_disabled():
        clear_decode_cache()
        PROGRAM_CACHE.clear()
        start = time.perf_counter()
        slow_results = _corpus_sweep()
        slow_time = time.perf_counter() - start

    # Bit-identical results across engine, caching, and process fan-out.
    assert fast_results == reference
    assert slow_results == reference

    speedup = slow_time / fast_time
    record = {
        "benchmark": "fastpath_corpus_sweep",
        "corpus": sorted(workload_names()),
        "modes": ["baseline", "sr"],
        "seed": _SEED,
        "jobs": jobs,
        "fast_seconds": round(fast_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(slow_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_fastpath_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\ncorpus sweep: fast={fast_time:.2f}s slow={slow_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.1f}x)")
    assert speedup >= min_speedup, (
        f"corpus sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor"
    )


def _multiwarp_sweep_point(name, mode, n_threads=128, seed=_SEED):
    """One compile-and-launch at a multi-warp width (four warps), same
    fixed-point record as :func:`_sweep_point`."""
    workload = get_workload(name)
    workload.n_threads = n_threads
    result = workload.run(mode=mode, seed=seed)
    traces = {
        str(tid): trace
        for tid, trace in sorted(result.launch.store_traces().items())
    }
    digest = hashlib.sha256(
        json.dumps(traces, sort_keys=True).encode()
    ).hexdigest()
    return {
        "workload": name,
        "mode": mode,
        "n_threads": n_threads,
        "simt_efficiency": result.simt_efficiency,
        "cycles": result.cycles,
        "trace_sha256": digest,
    }


def _multiwarp_sweep():
    """The corpus at 128 threads per launch, serial in-process."""
    return [
        _multiwarp_sweep_point(name, mode)
        for name in workload_names()
        for mode in ("baseline", "sr")
    ]


def test_multiwarp_corpus_sweep_speedup(benchmark):
    """PR-level acceptance for warp batching: >= 1.3x wall-clock on the
    multi-warp corpus sweep against the same engine with batching off,
    with bit-identical results.

    Every launch runs 128 threads (four warps), where the serial
    round-robin interleaving — one issue slot per warp per rotation —
    used to dominate. Both sides run serial in-process with fast path,
    segments, and caches warm, so the ratio isolates exactly what the
    batched lockstep epochs add and is independent of core count (like
    the segment sweep, and unlike the process-fan-out one), which is why
    CI's perf gate can track it. The floor is tunable via
    ``REPRO_BENCH_MIN_MULTIWARP_SPEEDUP``; the measured value is written
    to ``BENCH_multiwarp_sweep.json``.
    """
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_MULTIWARP_SPEEDUP", "1.3")
    )

    from repro.simt.batch import warp_batch_disabled

    # Warm module/program/decode caches; also the reference results. The
    # counter delta over this serial sweep ships with the record.
    counters_before = obs_counters.snapshot()
    reference = _multiwarp_sweep()
    sweep_counters = obs_counters.delta(
        obs_counters.snapshot(), counters_before
    )
    batched_results = benchmark.pedantic(
        _multiwarp_sweep, rounds=3, iterations=1
    )
    batched_time = benchmark.stats.stats.min

    with warp_batch_disabled():
        serial_times = []
        serial_results = None
        for _ in range(3):
            start = time.perf_counter()
            serial_results = _multiwarp_sweep()
            serial_times.append(time.perf_counter() - start)
        serial_time = min(serial_times)

    assert batched_results == reference
    assert serial_results == reference

    speedup = serial_time / batched_time
    record = {
        "benchmark": "multiwarp_corpus_sweep",
        "corpus": sorted(workload_names()),
        "modes": ["baseline", "sr"],
        "n_threads": 128,
        "seed": _SEED,
        "jobs": 1,
        "fast_seconds": round(batched_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(serial_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_multiwarp_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\nmultiwarp sweep: batched={batched_time:.2f}s "
          f"serial={serial_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.1f}x)")
    assert speedup >= min_speedup, (
        f"multiwarp sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor"
    )


#: The divergence-heavy half of the Table 2 corpus: loop-carried data
#: divergence (mc-gpu, pathtracer), irregular traversals (mummer, optix),
#: and the lookup kernels (rsbench, xsbench). These are the workloads
#: whose multi-warp phases spend the most slots on non-forced picks —
#: the region speculative rounds exist to absorb.
_DIVERGENT_SLICE = (
    "mc-gpu", "mummer", "optix", "pathtracer", "rsbench", "xsbench",
)

#: The scheduling-ablation policies. Non-forced picks arise differently
#: under each (size ties, program-order racing, rotation), so the spec
#: sweep runs all three rather than only the default.
_SPEC_SCHEDULERS = ("convergence", "oldest-first", "round-robin")


def _spec_sweep_point(name, scheduler, n_threads=128, seed=_SEED):
    """One sr-mode compile-and-launch of a divergent workload at four
    warps under the given scheduler, same fixed-point record as
    :func:`_sweep_point`."""
    workload = get_workload(name)
    workload.n_threads = n_threads
    result = workload.run(mode="sr", seed=seed, scheduler=scheduler)
    traces = {
        str(tid): trace
        for tid, trace in sorted(result.launch.store_traces().items())
    }
    digest = hashlib.sha256(
        json.dumps(traces, sort_keys=True).encode()
    ).hexdigest()
    return {
        "workload": name,
        "scheduler": scheduler,
        "n_threads": n_threads,
        "simt_efficiency": result.simt_efficiency,
        "cycles": result.cycles,
        "trace_sha256": digest,
    }


def _spec_sweep():
    """The divergent slice x every scheduler, serial in-process."""
    return [
        _spec_sweep_point(name, scheduler)
        for name in _DIVERGENT_SLICE
        for scheduler in _SPEC_SCHEDULERS
    ]


def test_spec_corpus_sweep_speedup(benchmark):
    """PR-level acceptance for speculative rounds: the divergent
    multi-warp corpus slice across every scheduler must run no slower
    with speculation on than with it off, with bit-identical results
    and the `spec.*` counters proving the rounds actually engaged.

    Every launch runs 128 threads in sr mode under each of the three
    scheduling-ablation policies — the configurations where the warp
    batcher's forced-pick precondition fails and multi-warp phases fall
    back to the serial per-slot loop. Both sides run serial in-process
    with fast path, segments, batching, and caches warm, so the ratio
    isolates exactly what the speculative layer adds on top of the
    eight below it and is core-count independent (CI-gated like the
    segment sweep). The honest aggregate is near parity: rounds absorb
    a minority of slots (the committed record's counters show the
    committed/absorbed split) at roughly half the per-slot cost, and
    per-workload wins (mummer under oldest-first) are offset by
    attempt overhead where rounds stay short — so like the SoA gate,
    this floor's real job is proving speculation never makes a
    divergent sweep *slower* than the serial non-forced-pick path it
    replaces. The floor is tunable via
    ``REPRO_BENCH_MIN_SPEC_SPEEDUP``; the measured value is written to
    ``BENCH_spec_sweep.json``.
    """
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_SPEC_SPEEDUP", "0.95")
    )

    from repro.simt.spec import spec_disabled

    # Warm module/program/decode caches; also the reference results. The
    # counter delta over this serial sweep ships with the record and
    # carries the engagement proof.
    counters_before = obs_counters.snapshot()
    reference = _spec_sweep()
    sweep_counters = obs_counters.delta(
        obs_counters.snapshot(), counters_before
    )
    assert sweep_counters.get("spec.rounds", 0) > 0, (
        "speculative rounds never engaged on the divergent slice"
    )
    assert sweep_counters.get("spec.committed", 0) > 0, (
        "speculative rounds engaged but never committed a warp"
    )
    # The two sides sit near parity, so slow ambient drift over the
    # measurement window would bias whichever side runs last by more
    # than the margin under test. Interleave them: pedantic calls the
    # setup hook before every measured round, so the schedule is
    # serial/spec alternating and min-of-3 per side sees the same
    # machine.
    serial_times = []
    serial_results = []

    def _serial_round():
        with spec_disabled():
            start = time.perf_counter()
            serial_results.append(_spec_sweep())
            serial_times.append(time.perf_counter() - start)

    spec_results = benchmark.pedantic(
        _spec_sweep, setup=_serial_round, rounds=3, iterations=1
    )
    spec_time = benchmark.stats.stats.min
    serial_time = min(serial_times)

    assert spec_results == reference
    assert all(r == reference for r in serial_results)

    speedup = serial_time / spec_time
    record = {
        "benchmark": "spec_corpus_sweep",
        "corpus": sorted(_DIVERGENT_SLICE),
        "schedulers": sorted(_SPEC_SCHEDULERS),
        "modes": ["sr"],
        "n_threads": 128,
        "seed": _SEED,
        "jobs": 1,
        "fast_seconds": round(spec_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(serial_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_spec_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\nspec sweep: spec={spec_time:.2f}s serial={serial_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.2f}x)")
    assert speedup >= min_speedup, (
        f"spec sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.2f}x floor"
    )


def test_segment_corpus_sweep_speedup(benchmark):
    """PR-level acceptance for segment fusion: >= 1.5x wall-clock on the
    serial corpus sweep against the same engine with fusion off, with
    bit-identical results.

    Both sides run serial with the fast path and all caches warm, so the
    ratio isolates exactly what this engine adds (fused superinstructions,
    slot register files, batched profiling) and is independent of core
    count — which is why CI's perf gate (benchmarks/compare.py) tracks
    this benchmark rather than the fan-out one. The floor is tunable via
    ``REPRO_BENCH_MIN_SEGMENT_SPEEDUP``; the measured value is written to
    ``BENCH_segment_sweep.json``.
    """
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_SEGMENT_SPEEDUP", "1.5")
    )

    from repro.simt.segments import segments_disabled

    # Warm module/program/decode caches; also the reference results. The
    # counter delta over this serial sweep ships with the record.
    counters_before = obs_counters.snapshot()
    reference = _corpus_sweep()
    sweep_counters = obs_counters.delta(
        obs_counters.snapshot(), counters_before
    )
    fused_results = benchmark.pedantic(_corpus_sweep, rounds=3, iterations=1)
    fused_time = benchmark.stats.stats.min

    with segments_disabled():
        unfused_times = []
        unfused_results = None
        for _ in range(3):
            start = time.perf_counter()
            unfused_results = _corpus_sweep()
            unfused_times.append(time.perf_counter() - start)
        unfused_time = min(unfused_times)

    assert fused_results == reference
    assert unfused_results == reference

    speedup = unfused_time / fused_time
    record = {
        "benchmark": "segment_corpus_sweep",
        "corpus": sorted(workload_names()),
        "modes": ["baseline", "sr"],
        "seed": _SEED,
        "jobs": 1,
        "fast_seconds": round(fused_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(unfused_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_segment_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\nsegment sweep: fused={fused_time:.2f}s unfused={unfused_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.1f}x)")
    assert speedup >= min_speedup, (
        f"segment sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor"
    )


def _grid_sweep_point(app, sharded, jobs):
    """One grid-corpus app, either as a sharded grid launch or as the
    single-process flat launch of the same 10^5-thread range.

    Both shapes must produce identical per-thread store traces (the
    kernels are launch-shape invariant by construction), so the record
    carries the same trace digest fixed point as the other sweeps.
    """
    from repro.simt.grid import GridLaunch
    from repro.simt.machine import GPUMachine
    from repro.simt.memory import GlobalMemory
    from repro.workloads import GRID_CTA_DIM, GRID_GRID_DIM

    n_threads = GRID_GRID_DIM * GRID_CTA_DIM
    memory = GlobalMemory()
    args = app.setup(memory, n_threads)
    if sharded:
        launch = GridLaunch(
            app.module(), GRID_GRID_DIM, GRID_CTA_DIM, jobs=jobs, seed=_SEED
        ).launch(app.kernel_name, args, memory=memory)
        issued = launch.issued
        sm_occupancy = max(
            sm["resident_warps"] for sm in launch.sm_schedule
        )
        assert launch.sharded, "grid sweep did not engage the worker pool"
    else:
        result = GPUMachine(app.module(), seed=_SEED).launch(
            app.kernel_name, n_threads, args, memory=memory
        )
        launch, issued, sm_occupancy = result, result.profiler.issued, None
    traces = {
        str(tid): trace
        for tid, trace in sorted(launch.store_traces().items())
    }
    digest = hashlib.sha256(
        json.dumps(traces, sort_keys=True).encode()
    ).hexdigest()
    return {
        "workload": app.name,
        "n_threads": n_threads,
        "issued": issued,
        "sm_occupancy": sm_occupancy,
        "trace_sha256": digest,
    }


def _grid_sweep(sharded, jobs):
    from repro.workloads import grid_corpus

    return [_grid_sweep_point(app, sharded, jobs) for app in grid_corpus()]


def _comparable(points):
    """Strip the grid-only occupancy field for flat-vs-grid equality."""
    return [
        {k: v for k, v in point.items() if k != "sm_occupancy"}
        for point in points
    ]


def test_grid_corpus_sweep_speedup(benchmark):
    """PR-level acceptance for the grid hierarchy: the pool-sharded grid
    launch of the 10^5-thread corpus must beat the single-process flat
    launch of the same thread ranges, with bit-identical per-thread
    store traces.

    The fast side runs each app as ``GRID_GRID_DIM x GRID_CTA_DIM`` CTAs
    sharded across ``REPRO_BENCH_JOBS`` pool workers (mem-effects proves
    the CTAs disjoint); the slow side is today's ``GPUMachine.launch``
    of all threads in one process. Unlike the in-process sweeps, this
    ratio scales with core count — CI gates it with a conservative
    floor via ``REPRO_BENCH_MIN_GRID_SPEEDUP``. The measured value is
    written to ``BENCH_grid_sweep.json`` together with the grid.*
    counter delta and per-app peak SM occupancy.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_GRID_SPEEDUP", "1.3")
    )

    from repro.workloads import GRID_CTA_DIM, GRID_GRID_DIM

    # Warm the pool, module/decode caches, and classification memos so
    # the measured rounds see the steady state; the grid.* counter delta
    # over the measured sharded rounds ships with the record.
    _grid_sweep(sharded=True, jobs=jobs)
    counters_before = obs_counters.snapshot()
    grid_results = benchmark.pedantic(
        lambda: _grid_sweep(sharded=True, jobs=jobs), rounds=2, iterations=1
    )
    sweep_counters = obs_counters.delta(
        obs_counters.snapshot(), counters_before
    )
    sweep_counters = {
        name: value for name, value in sweep_counters.items() if value
    }
    grid_time = benchmark.stats.stats.min

    start = time.perf_counter()
    flat_results = _grid_sweep(sharded=False, jobs=1)
    flat_time = time.perf_counter() - start

    # Bit-identical traces across launch shapes and process fan-out.
    assert _comparable(grid_results) == _comparable(flat_results)

    speedup = flat_time / grid_time
    record = {
        "benchmark": "grid_corpus_sweep",
        "corpus": [point["workload"] for point in flat_results],
        "grid_dim": GRID_GRID_DIM,
        "cta_dim": GRID_CTA_DIM,
        "n_threads": GRID_GRID_DIM * GRID_CTA_DIM,
        "seed": _SEED,
        "jobs": jobs,
        "fast_seconds": round(grid_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(flat_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "sm_occupancy": {
            point["workload"]: point["sm_occupancy"]
            for point in grid_results
        },
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_grid_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\ngrid sweep: sharded={grid_time:.2f}s flat={flat_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.1f}x)")
    assert speedup >= min_speedup, (
        f"grid sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor"
    )


def test_soa_corpus_sweep_speedup(benchmark):
    """PR-level acceptance for SoA vector execution: the serial corpus
    sweep must be no slower (and is typically ~1.1x faster) with the
    numpy column engine on than with it off, with bit-identical results.

    Both sides run serial with fastpath, segment fusion, and all caches
    warm, so the ratio isolates exactly what the SoA layer adds: masked
    column arithmetic plus compile-time constant folding, minus the
    gather/scatter tax the cost gate is supposed to price correctly. A
    regression below 1.0x means the gate is mispricing chunks. The floor
    is tunable via ``REPRO_BENCH_MIN_SOA_SPEEDUP``; the measured value is
    written to ``BENCH_soa_sweep.json``.
    """
    pytest.importorskip("numpy")
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SOA_SPEEDUP", "1.0"))

    from repro.simt.soa import soa_disabled

    # Warm module/program/decode caches; also the reference results. The
    # counter delta over this serial sweep ships with the record so
    # compare.py can see how many chunks vectorized vs fell back.
    counters_before = obs_counters.snapshot()
    reference = _corpus_sweep()
    sweep_counters = obs_counters.delta(
        obs_counters.snapshot(), counters_before
    )
    vector_results = benchmark.pedantic(_corpus_sweep, rounds=3, iterations=1)
    vector_time = benchmark.stats.stats.min

    with soa_disabled():
        scalar_times = []
        scalar_results = None
        for _ in range(3):
            start = time.perf_counter()
            scalar_results = _corpus_sweep()
            scalar_times.append(time.perf_counter() - start)
        scalar_time = min(scalar_times)

    assert vector_results == reference
    assert scalar_results == reference

    speedup = scalar_time / vector_time
    record = {
        "benchmark": "soa_corpus_sweep",
        "corpus": sorted(workload_names()),
        "modes": ["baseline", "sr"],
        "seed": _SEED,
        "jobs": 1,
        "fast_seconds": round(vector_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(scalar_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_soa_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\nsoa sweep: vector={vector_time:.2f}s scalar={scalar_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.1f}x)")
    assert speedup >= min_speedup, (
        f"soa sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor"
    )


def test_jit_corpus_sweep_speedup(benchmark):
    """PR-level acceptance for the tiered segment JIT: the serial corpus
    sweep must be >= 1.3x faster with hot segments compiled to
    specialized Python than with them interpreted, with bit-identical
    results.

    Both sides run serial with fastpath, segment fusion, SoA, and all
    caches warm; the slow side runs under ``jit_disabled()`` — the exact
    pre-JIT engine — so the ratio isolates what compiled segment
    execution adds: no per-op dispatch, no closure calls, constants
    folded into the generated source. The tier-up threshold is forced to
    0 so coverage is deterministic (the warm-up sweep pays all codegen;
    the measured rounds run fully compiled, which is the steady state of
    any sweep-shaped session). The floor is tunable via
    ``REPRO_BENCH_MIN_JIT_SPEEDUP``; the measured value is written to
    ``BENCH_jit_sweep.json`` with the jit.* counter delta.
    """
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_JIT_SPEEDUP", "1.3"))

    from repro.simt.jit import jit_disabled, set_jit, set_jit_threshold

    was_enabled = set_jit(True)
    was_threshold = set_jit_threshold(0)
    try:
        # Warm module/program/decode caches and tier every segment up;
        # the counter delta over this sweep ships with the record so
        # compare.py can see compiles, cache hits, and deopts.
        counters_before = obs_counters.snapshot()
        reference = _corpus_sweep()
        sweep_counters = obs_counters.delta(
            obs_counters.snapshot(), counters_before
        )
        jit_results = benchmark.pedantic(
            _corpus_sweep, rounds=3, iterations=1
        )
        jit_time = benchmark.stats.stats.min

        with jit_disabled():
            interpreted_times = []
            interpreted_results = None
            for _ in range(3):
                start = time.perf_counter()
                interpreted_results = _corpus_sweep()
                interpreted_times.append(time.perf_counter() - start)
            interpreted_time = min(interpreted_times)
    finally:
        set_jit_threshold(was_threshold)
        set_jit(was_enabled)

    assert jit_results == reference
    assert interpreted_results == reference

    speedup = interpreted_time / jit_time
    record = {
        "benchmark": "jit_corpus_sweep",
        "corpus": sorted(workload_names()),
        "modes": ["baseline", "sr"],
        "seed": _SEED,
        "jobs": 1,
        "jit_threshold": 0,
        "fast_seconds": round(jit_time, 4),
        "fast_seconds_mean": round(benchmark.stats.stats.mean, 4),
        "slow_seconds": round(interpreted_time, 4),
        "speedup": round(speedup, 3),
        "min_speedup_required": min_speedup,
        "bit_identical": True,
        "counters": sweep_counters,
    }
    (_REPO_ROOT / "BENCH_jit_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    print(f"\njit sweep: compiled={jit_time:.2f}s "
          f"interpreted={interpreted_time:.2f}s "
          f"speedup={speedup:.2f}x (required {min_speedup:.1f}x)")
    assert speedup >= min_speedup, (
        f"jit sweep speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor"
    )
