"""Plain-text rendering of experiment results (tables and bar rows).

The harness prints the same rows/series the paper's figures report; these
helpers keep the formatting consistent between the CLI, the benchmarks,
and EXPERIMENTS.md generation.
"""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Monospace table with column auto-sizing."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            columns[i].append(_format_cell(cell))
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for r, row in enumerate(rows):
        lines.append(
            "  ".join(
                _format_cell(cell).ljust(w) for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _format_cell(cell):
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_bar(value, scale=40, maximum=1.0, char="#"):
    """An ASCII bar for efficiency-style values in [0, maximum]."""
    filled = int(round(scale * min(value, maximum) / maximum))
    return char * filled


def efficiency_chart(rows, title=None):
    """Rows of (label, baseline_eff, optimized_eff) as paired ASCII bars
    (the Figure 7 layout)."""
    lines = [title] if title else []
    width = max((len(label) for label, *_ in rows), default=0)
    for label, base, opt in rows:
        lines.append(
            f"{label.ljust(width)}  base {base:5.1%} |{format_bar(base):40s}|"
        )
        lines.append(
            f"{''.ljust(width)}  +SR  {opt:5.1%} |{format_bar(opt):40s}|"
        )
    return "\n".join(lines)


def summary_table(summary, title="Launch summary"):
    """A Profiler.summary() dict as a metric/value table (nested dicts —
    opcode counts, stall attribution — get their own tables)."""
    rows = [
        (key, value)
        for key, value in summary.items()
        if not isinstance(value, dict)
    ]
    return format_table(["metric", "value"], rows, title=title)


def stall_table(stall_cycles, active_cycles, title="Cycle attribution"):
    """Stall-reason lane-cycles (repro.obs.metrics) with shares of total."""
    total = active_cycles + sum(stall_cycles.values())
    rows = [("active", active_cycles,
             f"{active_cycles / total:.1%}" if total else "-")]
    for reason, cycles in sorted(stall_cycles.items(), key=lambda kv: -kv[1]):
        rows.append(
            (reason, cycles, f"{cycles / total:.1%}" if total else "-")
        )
    return format_table(["reason", "lane-cycles", "share"], rows, title=title)


def opcode_table(opcode_issues, title="Issues by opcode", limit=12):
    """Top-N per-opcode issue counts from Profiler.summary()."""
    rows = list(opcode_issues.items())[:limit]
    return format_table(["opcode", "issues"], rows, title=title)


def sm_occupancy_table(sm_schedule, title="Simulated SM schedule"):
    """A ``GridResult.sm_schedule`` as a per-SM occupancy table. Only SMs
    that received CTAs appear — a grid smaller than the SM count leaves
    the rest idle and unlisted."""
    rows = [
        (entry["sm"], len(entry["ctas"]), entry["waves"],
         entry["resident_ctas"], entry["resident_warps"], entry["cycles"])
        for entry in sm_schedule
    ]
    return format_table(
        ["sm", "ctas", "waves", "resident ctas", "resident warps", "cycles"],
        rows, title=title,
    )


def counters_table(snapshot, title="Engine counters"):
    """An engine-counter snapshot (``repro.obs.counters``) as a per-layer
    table. Derived ratios (segment coverage) render as percentages."""
    from repro.obs.counters import counter_layers

    rows = []
    for layer, values in counter_layers(snapshot).items():
        for name, value in values.items():
            short = name.partition(".")[2]
            if isinstance(value, float):
                value = f"{value:.1%}"
            rows.append((layer, short, value))
    return format_table(["layer", "counter", "value"], rows, title=title)


def counters_delta_table(after, before, title="Engine counter deltas",
                         skip_zero=True):
    """Per-layer ``after - before`` counter table (two snapshots)."""
    from repro.obs.counters import counter_layers, delta

    moved = delta(after, before)
    rows = []
    for layer, values in counter_layers(moved).items():
        for name, value in values.items():
            if isinstance(value, float):
                continue  # coverage recomputed from deltas is meaningless
            if skip_zero and value == 0:
                continue
            rows.append((layer, name.partition(".")[2], f"{value:+d}"))
    if not rows:
        rows.append(("-", "(no counters moved)", ""))
    return format_table(["layer", "counter", "delta"], rows, title=title)


def markdown_table(headers, rows):
    """GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(c) for c in row) + " |")
    return "\n".join(lines)
