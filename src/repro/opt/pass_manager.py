"""Pass manager: named pass pipelines over modules.

The standard pipeline (``optimize_module``) runs constant folding, DCE and
CFG simplification to a fixpoint, verifying after each pass. It is safe to
run either before the reconvergence pipeline (labels and ``predict``
directives are anchors the passes preserve) or after it (barrier ops are
side effects that never fold or die).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.verifier import verify_module
from repro.opt.constfold import fold_module
from repro.opt.dce import dce_module
from repro.opt.simplify_cfg import simplify_module

STANDARD_PASSES = (
    ("constfold", fold_module),
    ("dce", dce_module),
    ("simplify-cfg", simplify_module),
)


@dataclass
class OptReport:
    """Per-pass change counts across pipeline iterations."""

    iterations: int = 0
    changes: dict = field(default_factory=dict)   # pass name -> total count

    @property
    def total_changes(self):
        return sum(self.changes.values())

    def describe(self):
        parts = [f"{name}: {count}" for name, count in self.changes.items()]
        return f"{self.iterations} iteration(s); " + ", ".join(parts)


class PassManager:
    """Runs a sequence of module passes to a fixpoint."""

    def __init__(self, passes=STANDARD_PASSES, verify=True, max_iterations=5):
        self.passes = list(passes)
        self.verify = verify
        self.max_iterations = max_iterations

    def run(self, module):
        report = OptReport(changes={name: 0 for name, _ in self.passes})
        for _ in range(self.max_iterations):
            round_changes = 0
            for name, pass_fn in self.passes:
                count = pass_fn(module)
                report.changes[name] += count
                round_changes += count
                if self.verify:
                    verify_module(module)
            report.iterations += 1
            if round_changes == 0:
                break
        return report


def optimize_module(module, **kwargs):
    """Run the standard pipeline in place; returns an OptReport."""
    return PassManager(**kwargs).run(module)
