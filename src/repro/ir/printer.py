"""Textual IR printer.

Produces a form the companion :mod:`repro.ir.parser` parses back
(round-trip tested). Example::

    func @kernel() kernel {
    entry:
      %i.1 = const 0
      bra ^loop
    loop: !{label="L1"}
      %p.1 = cmplt %i.1, 10
      cbr %p.1, ^body, ^done
    ...
    }
"""

from __future__ import annotations

from repro.ir.instructions import Barrier, BlockRef, FuncRef, Imm, Reg

#: Instruction / block attributes that survive printing and parsing.
PRINTED_ATTRS = ("label", "role", "origin", "region_start")


def _format_value(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return '"' + str(value).replace('"', '\\"') + '"'


def _format_attrs(attrs):
    kept = [(k, attrs[k]) for k in PRINTED_ATTRS if k in attrs]
    if not kept:
        return ""
    inner = ", ".join(f"{k}={_format_value(v)}" for k, v in kept)
    return " !{" + inner + "}"


def format_operand(op):
    if isinstance(op, Reg):
        return f"%{op.name}"
    if isinstance(op, Barrier):
        return f"${op.name}"
    if isinstance(op, BlockRef):
        return f"^{op.name}"
    if isinstance(op, FuncRef):
        return f"@{op.name}"
    if isinstance(op, Imm):
        return repr(op.value)
    raise TypeError(f"unknown operand {op!r}")


def format_instruction(instr):
    parts = []
    if instr.dst is not None:
        parts.append(f"%{instr.dst.name} = ")
    parts.append(instr.opcode.value)
    if instr.operands:
        parts.append(" " + ", ".join(format_operand(op) for op in instr.operands))
    parts.append(_format_attrs(instr.attrs))
    return "".join(parts)


def format_block(block):
    lines = [f"{block.name}:{_format_attrs(block.attrs)}"]
    for instr in block.instructions:
        lines.append("  " + format_instruction(instr))
    return "\n".join(lines)


def format_function(function):
    params = ", ".join(f"%{p.name}" for p in function.params)
    kind = " kernel" if function.is_kernel else ""
    lines = [f"func @{function.name}({params}){kind} {{"]
    for block in function.blocks:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_module(module):
    return "\n\n".join(format_function(fn) for fn in module) + "\n"
