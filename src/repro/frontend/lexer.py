"""Tokenizer for the textual kernel language."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "kernel",
    "func",
    "let",
    "store",
    "if",
    "else",
    "while",
    "for",
    "in",
    "break",
    "continue",
    "return",
    "predict",
    "label",
    "warpsync",
    "ctasync",
    "delay",
    "and",
    "or",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r\n]+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<at>@[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\.\.|<=|>=|==|!=|[-+*/%<>=!(){},;:])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str       # number | name | keyword | at | op | eof
    text: str
    line: int


def tokenize(source):
    """Tokenize kernel-language source; raises ParseError on bad input."""
    tokens = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}", line=line
            )
        kind = match.lastgroup
        text = match.group()
        start_line = line
        line += text.count("\n")
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "name" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, start_line))
    tokens.append(Token("eof", "", line))
    return tokens
