"""opt — run an arbitrary pass pipeline over textual IR.

The pass-manager counterpart of LLVM's ``opt``: read a module (textual IR
by default, or ``.srk`` kernel source), run a pipeline string from
:mod:`repro.core.passmgr`, and print the result::

    python -m repro.tools.opt kernel.ir --pipeline pdom-sync,allocate,verify
    python -m repro.tools.opt kernel.srk --mode sr --report
    python -m repro.tools.opt --list-passes

Debugging aids (the monolithic compiler never had these):

* ``--print-after-all`` dumps the IR after every pass (stderr);
* ``--stop-after PASS`` halts mid-pipeline and prints the partial IR;
* ``--verify-each`` runs the IR verifier after every pass, naming the
  pass that broke the module;
* ``--record-trace FILE`` writes the per-pass IR trace as JSON;
* ``--bisect FILE`` re-runs the pipeline against such a trace and
  reports the first pass whose output diverges.

``-`` reads the module from stdin.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.passmgr import (
    bisect_pipeline,
    list_passes,
    parse_pipeline,
    record_pipeline_trace,
)
from repro.core.pipeline import ReconvergenceCompiler, pipeline_for_mode
from repro.errors import ReproError
from repro.ir.printer import format_module

MODES = ("baseline", "sr", "auto", "none")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.opt",
        description="run a compiler pass pipeline over textual IR",
    )
    parser.add_argument(
        "input", nargs="?", default=None,
        help="module to compile: a .ir/.txt textual-IR file, a .srk kernel "
             "source, or '-' for textual IR on stdin",
    )
    parser.add_argument(
        "--pipeline", default=None, metavar="DESC",
        help="comma-separated pass pipeline, e.g. "
             "'optimize,pdom-sync,deconflict[static],allocate,verify' "
             "(default: the --mode pipeline)",
    )
    parser.add_argument(
        "--mode", default="sr", choices=MODES,
        help="compile mode whose registered pipeline to run when no "
             "--pipeline is given (default: sr)",
    )
    parser.add_argument(
        "--threshold", type=int, default=None,
        help="soft-barrier threshold applied by collect-predictions",
    )
    parser.add_argument(
        "--optimize", action="store_true",
        help="prefix the mode pipeline with the 'optimize' pass",
    )
    parser.add_argument(
        "--no-allocate", action="store_true",
        help="drop the trailing 'allocate' from the mode pipeline",
    )
    parser.add_argument(
        "--emit-ir", action="store_true", help="print the resulting IR"
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the resulting IR to FILE instead of stdout",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the compile report (predictions, pdom, SR, deconflict)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-pass timing spans and analysis cache hit/miss counts",
    )
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list the registered passes and exit",
    )
    parser.add_argument(
        "--print-after-all", action="store_true",
        help="dump the module IR after every pass (stderr)",
    )
    parser.add_argument(
        "--stop-after", default=None, metavar="PASS",
        help="halt the pipeline after the named pass",
    )
    parser.add_argument(
        "--verify-each", action="store_true",
        help="run the IR verifier after every pass",
    )
    parser.add_argument(
        "--record-trace", default=None, metavar="FILE",
        help="write the per-pass IR trace (JSON) for later --bisect",
    )
    parser.add_argument(
        "--bisect", default=None, metavar="FILE",
        help="compare this run against a recorded trace; report the first "
             "diverging pass",
    )
    return parser


def _load_module(path):
    if path is None:
        raise SystemExit("error: no input module (see --help)")
    if path == "-":
        text, name = sys.stdin.read(), "<stdin>"
    else:
        with open(path) as handle:
            text = handle.read()
        name = path
    if path is not None and path.endswith(".srk"):
        from repro.frontend.parser import compile_kernel_source

        return compile_kernel_source(text, module_name=name)
    from repro.ir.parser import parse_module

    return parse_module(text, name=name)


def main(argv=None):
    args = build_parser().parse_args(argv)

    if args.list_passes:
        print(list_passes())
        return 0

    description = args.pipeline or pipeline_for_mode(
        args.mode, optimize=args.optimize, allocate=not args.no_allocate
    )

    try:
        parse_pipeline(description)
        module = _load_module(args.input)

        if args.record_trace or args.bisect:
            trace = record_pipeline_trace(module, description)
            if args.record_trace:
                with open(args.record_trace, "w") as handle:
                    json.dump(trace, handle, indent=1)
                print(
                    f"recorded {len(trace)} pass snapshots to "
                    f"{args.record_trace}"
                )
            if args.bisect:
                with open(args.bisect) as handle:
                    golden = json.load(handle)
                result = bisect_pipeline(module, description, golden)
                print(result.describe())
                return 1 if result.divergent else 0
            return 0

        compiler = ReconvergenceCompiler(
            pipeline=description,
            verify_each=args.verify_each or None,
            print_after_all=args.print_after_all or None,
            stop_after=args.stop_after,
        )
        program = compiler.compile(
            module, mode=args.mode, threshold=args.threshold
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = program.report
    if args.report:
        print(report.describe())
        if report.opt_report is not None:
            print("opt:", report.opt_report.describe())
    if args.stats:
        print(f"pipeline: {report.pipeline}")
        for span in report.spans:
            print("  span:", span.describe())
        stats = report.analysis_stats
        print(
            f"analysis cache: {stats.get('hits', 0)} hit(s), "
            f"{stats.get('misses', 0)} miss(es), "
            f"{stats.get('invalidated', 0)} invalidated"
        )
        for name, value in sorted(report.pass_stats.items()):
            print(f"  {name}: {value}")

    text = format_module(program.module)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    elif args.emit_ir or not (args.report or args.stats):
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
