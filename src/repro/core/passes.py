"""The standard pass suite, as registered :class:`~repro.core.passmgr.Pass`es.

Every transform of the Section 4 pipeline (and the classic ``repro.opt``
optimizations) is wrapped here as a named pass so pipelines can be
described textually, reordered, bisected, and extended. The wrapped
implementations are unchanged — these classes only adapt them to the
pass-manager protocol (shared :class:`~repro.core.primitives.BarrierNamer`,
:class:`~repro.core.passmgr.AnalysisManager` lookups, report recording,
``preserves()`` declarations).

Mode pipelines (see :data:`repro.core.pipeline.MODE_PIPELINES`)::

    baseline  pdom-sync,strip-directives,mem-effects[,allocate,verify]
    sr        collect-predictions,pdom-sync,sr-insert,deconflict,
              strip-directives,mem-effects[,allocate,verify]
    auto      autodetect,collect-predictions,pdom-sync,sr-insert,
              deconflict,strip-directives,mem-effects[,allocate,verify]
    none      strip-directives,mem-effects[,allocate,verify]
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.allocation import allocate_module
from repro.core.deconfliction import (
    deconflict,
    deconflict_interprocedural,
)
from repro.core.directives import collect_predictions, strip_directives
from repro.core.insertion import insert_speculative_reconvergence
from repro.core.interprocedural import insert_interprocedural_sr
from repro.core.passmgr import (
    ALL_ANALYSES,
    FunctionPass,
    Pass,
    register_pass,
)
from repro.core.pdom_sync import insert_pdom_sync
from repro.core.softbarrier import set_prediction_threshold
from repro.ir.verifier import verify_module

__all__ = [
    "AllocatePass",
    "AutodetectPass",
    "CollectPredictionsPass",
    "ConstFoldPass",
    "DcePass",
    "DeconflictPass",
    "LintPass",
    "MemEffectsPass",
    "OptReport",
    "OptimizePass",
    "PdomSyncPass",
    "SetThresholdPass",
    "SimplifyCfgPass",
    "SrInsertPass",
    "StripDirectivesPass",
    "VerifyPass",
    "run_opt_fixpoint",
]


# ----------------------------------------------------------------------
# Classic optimizations (repro.opt)
# ----------------------------------------------------------------------


@dataclass
class OptReport:
    """Per-pass change counts across fixpoint iterations."""

    iterations: int = 0
    changes: dict = field(default_factory=dict)   # pass name -> total count

    @property
    def total_changes(self):
        return sum(self.changes.values())

    def describe(self):
        parts = [f"{name}: {count}" for name, count in self.changes.items()]
        return f"{self.iterations} iteration(s); " + ", ".join(parts)


def run_opt_fixpoint(module, max_iterations=5, verify=True):
    """Run constfold + DCE + simplify-cfg to a fixpoint, in place.

    The classic-optimization fixpoint loop, usable without a pipeline
    context (tools, benchmarks); :class:`OptimizePass` wraps it for
    pipeline descriptions. Safe to run either before the reconvergence
    pipeline (labels and ``predict`` directives are anchors the passes
    preserve) or after it (barrier ops are side effects that never fold
    or die). Returns an :class:`OptReport`.
    """
    from repro.opt import dce_module, fold_module, simplify_module

    passes = (
        ("constfold", fold_module),
        ("dce", dce_module),
        ("simplify-cfg", simplify_module),
    )
    report = OptReport(changes={name: 0 for name, _ in passes})
    for _ in range(max_iterations):
        round_changes = 0
        for name, pass_fn in passes:
            count = pass_fn(module)
            report.changes[name] += count
            round_changes += count
            if verify:
                verify_module(module)
        report.iterations += 1
        if round_changes == 0:
            break
    return report


@register_pass
class OptimizePass(Pass):
    """The classic-optimization fixpoint as a single registered pass."""

    name = "optimize"
    description = "constfold + DCE + simplify-cfg to a fixpoint (repro.opt)"
    options = ("max_iterations", "verify")
    max_iterations = 5
    verify = True

    def run(self, module, ctx):
        ctx.report.opt_report = run_opt_fixpoint(
            module, max_iterations=self.max_iterations, verify=self.verify
        )


class _CountingPass(Pass):
    """Base for single optimizations that return a change count."""

    def _record(self, ctx, count):
        stats = ctx.report.pass_stats
        stats[self.name] = stats.get(self.name, 0) + count

    def run(self, module, ctx):
        self._record(ctx, self.transform(module))

    @staticmethod
    def transform(module):
        raise NotImplementedError


@register_pass
class ConstFoldPass(_CountingPass):
    name = "constfold"
    description = "fold constant expressions (one round, no fixpoint)"

    @staticmethod
    def transform(module):
        from repro.opt.constfold import fold_module

        return fold_module(module)


@register_pass
class DcePass(_CountingPass):
    name = "dce"
    description = "delete dead pure instructions (one round)"

    @staticmethod
    def transform(module):
        from repro.opt.dce import dce_module

        return dce_module(module)


@register_pass
class SimplifyCfgPass(_CountingPass):
    name = "simplify-cfg"
    description = "merge straight-line blocks, fold trivial branches"

    @staticmethod
    def transform(module):
        from repro.opt.simplify_cfg import simplify_module

        return simplify_module(module)


# ----------------------------------------------------------------------
# The Section 4 reconvergence suite
# ----------------------------------------------------------------------


@register_pass
class AutodetectPass(Pass):
    """Automatic prediction detection (Section 4.5).

    Strips any user directives first (auto mode replaces the user's
    predictions with the heuristics'), then annotates the best candidates.
    Options override the compile call's ``auto_options``.
    """

    name = "autodetect"
    description = "detect + annotate SR candidates (Section 4.5 heuristics)"
    options = (
        "max_per_function",
        "auto_threshold",
        "min_score",
        "trip",
        "memory_penalty",
        "efficiency_cutoff",
    )

    def run(self, module, ctx):
        from repro.core.autodetect import detect_and_annotate

        for function in module:
            strip_directives(function)
        options = dict(ctx.auto_options or {})
        options.update(self.option_values)
        ctx.report.auto_candidates = detect_and_annotate(module, **options)


@register_pass
class SetThresholdPass(FunctionPass):
    """Force a soft-barrier threshold onto ``Predict`` directives
    (:mod:`repro.core.softbarrier`); ``k`` unset restores hard barriers."""

    name = "set-threshold"
    description = "mark Predict directives with a soft threshold k"
    options = ("k", "label")
    positional_option = "k"
    k = None
    label = None

    def run_on_function(self, function, module, ctx):
        set_prediction_threshold(function, self.k, label=self.label)

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class CollectPredictionsPass(FunctionPass):
    """Gather ``Predict`` directives into the context before PDOM
    insertion shifts instruction indices; applies the compile call's
    ``threshold`` to every directive first."""

    name = "collect-predictions"
    description = "apply threshold and collect Predict directives"

    def run_on_function(self, function, module, ctx):
        if ctx.threshold is not None:
            set_prediction_threshold(function, ctx.threshold)
        predictions = collect_predictions(function)
        if predictions:
            ctx.predictions_by_fn[function.name] = predictions
            ctx.report.predictions.extend(predictions)

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class PdomSyncPass(Pass):
    """Baseline post-dominator synchronization (Section 2 / Figure 1a).

    Consumes the shared ``divergence`` analysis; inserts only barrier
    operations (no CFG or register changes), so every cached analysis
    survives it.
    """

    name = "pdom-sync"
    description = "join/wait barriers at divergent branches' post-dominators"
    options = ("assume_all_divergent",)
    assume_all_divergent = None

    def run(self, module, ctx):
        assume = self.assume_all_divergent
        if assume is None:
            assume = ctx.assume_all_divergent
        divergence = None if assume else ctx.analyses.get("divergence")
        for function in module:
            ctx.report.pdom_reports[function.name] = insert_pdom_sync(
                function,
                namer=ctx.namer,
                divergence=None if divergence is None
                else divergence.get(function.name),
                assume_all_divergent=assume,
            )

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class SrInsertPass(Pass):
    """Speculative Reconvergence insertion per collected prediction
    (Sections 4.2 and 4.4); interprocedural predictions also touch the
    callee, so this is a module pass."""

    name = "sr-insert"
    description = "insert SR join/wait/rejoin/cancel per Predict directive"

    def run(self, module, ctx):
        for function in module:
            predictions = ctx.predictions_by_fn.get(function.name, ())
            sr_barriers = []
            for prediction in predictions:
                if prediction.is_interprocedural:
                    sub = insert_interprocedural_sr(
                        module, function, prediction, namer=ctx.namer
                    )
                else:
                    sub = insert_speculative_reconvergence(
                        function, prediction, namer=ctx.namer
                    )
                ctx.report.sr_reports.append(sub)
                sr_barriers.append(sub.barrier)
                if sub.exit_barrier:
                    sr_barriers.append(sub.exit_barrier)
            if sr_barriers:
                ctx.sr_barriers_by_fn[function.name] = sr_barriers


@register_pass
class DeconflictPass(Pass):
    """Deconfliction (Section 4.3, Figure 5): resolve SR-vs-PDOM barrier
    conflicts per function, then call-site conflicts of *soft*
    interprocedural barriers. Strategy defaults to the compiler's."""

    name = "deconflict"
    description = "resolve SR barrier conflicts (dynamic cancels or static)"
    options = ("strategy",)
    positional_option = "strategy"
    strategy = None

    def run(self, module, ctx):
        strategy = self.strategy or ctx.deconfliction
        for function in module:
            sr_barriers = ctx.sr_barriers_by_fn.get(function.name)
            if sr_barriers:
                ctx.report.deconfliction_reports.append(
                    deconflict(function, sr_barriers, strategy=strategy)
                )
        # A soft interprocedural SR barrier waits at its callee's entry,
        # invisible to the per-function analysis above; its conflicts are
        # resolved at the call sites instead.
        for sub in ctx.report.sr_reports:
            if getattr(sub, "callee", None) and sub.threshold is not None:
                interproc = deconflict_interprocedural(
                    module.function(sub.caller),
                    sub.barrier,
                    sub.callee,
                    exit_barrier=sub.exit_barrier,
                    strategy=strategy,
                )
                if interproc.conflicts:
                    ctx.report.deconfliction_reports.append(interproc)


@register_pass
class StripDirectivesPass(FunctionPass):
    """Remove ``predict`` pseudo-instructions (they never reach the
    simulator). Deletes only directive instructions — no CFG, register,
    or barrier change — so every cached analysis survives."""

    name = "strip-directives"
    description = "remove Predict pseudo-instructions"

    def run_on_function(self, function, module, ctx):
        strip_directives(function)

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class AllocatePass(Pass):
    """Barrier register allocation: color abstract barrier names onto the
    16 physical registers (cross-function barriers pinned consistently)."""

    name = "allocate"
    description = "graph-color abstract barriers onto B0..B15"

    def run(self, module, ctx):
        ctx.report.allocation = allocate_module(module)

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class VerifyPass(Pass):
    """Run the IR verifier over the whole module (read-only)."""

    name = "verify"
    description = "verify module IR invariants"

    def run(self, module, ctx):
        verify_module(module)

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class MemEffectsPass(Pass):
    """Per-kernel memory-effect summaries (read-only): which
    parameter-rooted ``GlobalMemory`` regions every kernel reads, writes,
    or ``atom_add``s, with ``"unknown"`` as the explicit top for computed
    addresses. Cached as the ``"memeffects"`` analysis; the summaries land
    on ``report.memory_effects`` (and a region-count line in
    ``report.pass_stats``) for the warp batcher's documentation trail —
    the batcher itself re-resolves against concrete launch arguments."""

    name = "mem-effects"
    description = "summarize per-kernel GlobalMemory reads/writes/atomics"

    def run(self, module, ctx):
        effects = ctx.analyses.get("memeffects")
        ctx.report.memory_effects = {
            kernel: summary.describe() for kernel, summary in effects.items()
        }
        ctx.report.pass_stats["mem-effects"] = {
            kernel: len(summary.sites) for kernel, summary in effects.items()
        }

    def preserves(self):
        return ALL_ANALYSES


@register_pass
class LintPass(Pass):
    """Static barrier lint (read-only diagnostics): orphan waits,
    stranded memberships, unresolved conflicts. Findings are recorded on
    ``report.pass_stats['lint']`` as description strings."""

    name = "lint"
    description = "report orphan waits / stranded joins / unresolved conflicts"

    def run(self, module, ctx):
        from repro.core.barrier_lint import lint_module

        findings = lint_module(module)
        ctx.report.pass_stats["lint"] = [f.describe() for f in findings]

    def preserves(self):
        return ALL_ANALYSES
