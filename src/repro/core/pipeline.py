"""The compiler pipeline tying Section 4 together.

:class:`ReconvergenceCompiler` clones the input module and compiles it in
one of several modes:

* ``baseline`` — PDOM synchronization only; predictions are ignored
  (what the production compiler does today, Figure 1a).
* ``sr`` — PDOM sync + user-guided Speculative Reconvergence with
  deconfliction (the paper's main configuration, dynamic deconfliction).
* ``auto`` — PDOM sync + heuristically detected predictions (Section 4.5).
* ``none`` — no synchronization at all; convergence comes only from the
  scheduler (a stress baseline used in tests).

Soft barriers are configured through prediction thresholds
(``Predict`` attrs or the ``threshold`` compile argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.divergence import analyze_module_divergence
from repro.core.allocation import allocate_module
from repro.core.deconfliction import (
    DYNAMIC,
    deconflict,
    deconflict_interprocedural,
)
from repro.core.directives import collect_predictions, strip_directives
from repro.core.insertion import insert_speculative_reconvergence
from repro.core.interprocedural import insert_interprocedural_sr
from repro.core.pdom_sync import insert_pdom_sync
from repro.core.primitives import BarrierNamer
from repro.core.softbarrier import set_prediction_threshold
from repro.errors import TransformError
from repro.ir.verifier import verify_module
from repro.obs.spans import SpanRecorder

MODES = ("baseline", "sr", "auto", "none")


@dataclass
class CompileReport:
    """Everything the pipeline did, for inspection and tests."""

    mode: str
    predictions: list = field(default_factory=list)       # Prediction records
    pdom_reports: dict = field(default_factory=dict)      # fn -> PdomSyncReport
    sr_reports: list = field(default_factory=list)        # InsertionReports
    deconfliction_reports: list = field(default_factory=list)
    allocation: dict = field(default_factory=dict)        # fn -> {abstract: phys}
    auto_candidates: list = field(default_factory=list)
    opt_report: object = None                             # OptReport if optimize=True
    spans: list = field(default_factory=list)             # obs.spans.Span per phase

    def describe(self, with_spans=False):
        lines = [f"mode={self.mode}"]
        for prediction in self.predictions:
            lines.append("  " + prediction.describe())
        for report in self.sr_reports:
            lines.append("  " + report.describe())
        for report in self.deconfliction_reports:
            lines.append("  deconflict: " + report.describe())
        if with_spans:
            for span in self.spans:
                lines.append("  span: " + span.describe())
        return "\n".join(lines)


@dataclass
class CompiledProgram:
    """A compiled module plus its report; ready for the simulator."""

    module: object
    report: CompileReport


class ReconvergenceCompiler:
    """Compiles modules with configurable reconvergence strategies."""

    def __init__(
        self,
        deconfliction=DYNAMIC,
        assume_all_divergent=False,
        allocate=True,
        verify=True,
        optimize=False,
    ):
        self.deconfliction = deconfliction
        self.assume_all_divergent = assume_all_divergent
        self.allocate = allocate
        self.verify = verify
        # Run the classic optimization pipeline (constfold/DCE/simplify-cfg)
        # before synchronization insertion; labels and predict directives
        # are anchors those passes preserve.
        self.optimize = optimize

    # ------------------------------------------------------------------
    def compile(self, module, mode="sr", threshold=None, auto_options=None):
        """Compile a clone of ``module``; the input is never mutated."""
        if mode not in MODES:
            raise TransformError(f"unknown compile mode {mode!r}; use {MODES}")
        clone = module.clone()
        report = CompileReport(mode=mode)
        namer = BarrierNamer()
        # Every phase runs under a timed span recording wall time and the
        # module's blocks/instructions/barriers before -> after.
        spans = SpanRecorder()

        if self.optimize:
            from repro.opt import optimize_module

            with spans.span("optimize", clone):
                report.opt_report = optimize_module(clone)

        if mode == "none":
            with spans.span("strip-directives", clone):
                for function in clone:
                    strip_directives(function)
            return self._finish(clone, report, spans)

        if mode == "auto":
            from repro.core.autodetect import detect_and_annotate

            with spans.span("autodetect", clone):
                for function in clone:
                    strip_directives(function)
                report.auto_candidates = detect_and_annotate(
                    clone, **(auto_options or {})
                )

        with spans.span("divergence-analysis", clone):
            divergence = analyze_module_divergence(clone)

            # Gather predictions before PDOM insertion shifts indices.
            predictions_by_fn = {}
            if mode in ("sr", "auto"):
                for function in clone:
                    if threshold is not None:
                        set_prediction_threshold(function, threshold)
                    predictions = collect_predictions(function)
                    if predictions:
                        predictions_by_fn[function.name] = predictions
                        report.predictions.extend(predictions)

        # Baseline PDOM synchronization everywhere.
        with spans.span("pdom-sync", clone):
            for function in clone:
                report.pdom_reports[function.name] = insert_pdom_sync(
                    function,
                    namer=namer,
                    divergence=divergence.get(function.name),
                    assume_all_divergent=self.assume_all_divergent,
                )

        # Speculative Reconvergence per prediction, then deconflict.
        sr_barriers_by_fn = {}
        with spans.span("sr-insertion", clone):
            for function in clone:
                predictions = predictions_by_fn.get(function.name, ())
                sr_barriers = []
                for prediction in predictions:
                    if prediction.is_interprocedural:
                        sub = insert_interprocedural_sr(
                            clone, function, prediction, namer=namer
                        )
                    else:
                        sub = insert_speculative_reconvergence(
                            function, prediction, namer=namer
                        )
                    report.sr_reports.append(sub)
                    sr_barriers.append(sub.barrier)
                    if sub.exit_barrier:
                        sr_barriers.append(sub.exit_barrier)
                if sr_barriers:
                    sr_barriers_by_fn[function.name] = sr_barriers

        with spans.span("deconfliction", clone):
            for function in clone:
                sr_barriers = sr_barriers_by_fn.get(function.name)
                if sr_barriers:
                    report.deconfliction_reports.append(
                        deconflict(
                            function, sr_barriers, strategy=self.deconfliction
                        )
                    )
            # A soft interprocedural SR barrier waits at its callee's
            # entry, invisible to the per-function analysis above; its
            # conflicts are resolved at the call sites instead.
            for sub in report.sr_reports:
                if getattr(sub, "callee", None) and sub.threshold is not None:
                    interproc = deconflict_interprocedural(
                        clone.function(sub.caller),
                        sub.barrier,
                        sub.callee,
                        exit_barrier=sub.exit_barrier,
                        strategy=self.deconfliction,
                    )
                    if interproc.conflicts:
                        report.deconfliction_reports.append(interproc)

        with spans.span("strip-directives", clone):
            for function in clone:
                strip_directives(function)

        return self._finish(clone, report, spans)

    # ------------------------------------------------------------------
    def _finish(self, clone, report, spans):
        if self.allocate:
            with spans.span("allocation", clone):
                report.allocation = allocate_module(clone)
        if self.verify:
            with spans.span("verify", clone):
                verify_module(clone)
        report.spans = spans.spans
        return CompiledProgram(module=clone, report=report)


def compile_baseline(module, **kwargs):
    """Convenience: PDOM-only compile."""
    return ReconvergenceCompiler(**kwargs).compile(module, mode="baseline")


def compile_sr(module, threshold=None, deconfliction=DYNAMIC, **kwargs):
    """Convenience: user-guided Speculative Reconvergence compile."""
    compiler = ReconvergenceCompiler(deconfliction=deconfliction, **kwargs)
    return compiler.compile(module, mode="sr", threshold=threshold)
