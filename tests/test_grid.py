"""Grid launch hierarchy: GridLaunch validation, the SM occupancy model,
per-CTA shared memory, the CTA-wide barrier, and serial-vs-sharded parity.

The flat ``GPUMachine.launch`` is the reference semantics: a grid is
defined as its CTAs run atomically in ``cta_id`` order on the shared
global memory, each CTA being one ordinary launch under a
:class:`CTAContext` carrying global tid/warp bases. Everything here pins
that definition — and that the pool-sharded path (licensed only by a
``"disjoint"`` mem-effects proof) is bit-identical to it.
"""

import pytest

from repro.errors import LaunchError, SimulationError
from repro.frontend import compile_kernel_source
from repro.obs import counters as obs_counters
from repro.obs.counters import ENGINE_COUNTERS
from repro.simt import (
    CTAContext,
    GPUMachine,
    GlobalMemory,
    GridLaunch,
    SharedMemory,
    grid_sharding_enabled,
)

DIVERGENT = """
kernel k() {
    let t = tid();
    let trips = floor(hash01(t * 3.1) * 6.0) + 1;
    let x = 0.0;
    let i = 0;
    while (i < trips) {
        x = fma(x, 1.0001, 0.5);
        i = i + 1;
    }
    store(t, x);
}
"""

TID_ONLY = "kernel k() { store(tid(), tid() * 2.0); }"


def _divergent_module():
    return compile_kernel_source(DIVERGENT)


def _observables(result):
    """The comparable surface shared by LaunchResult and GridResult."""
    return (
        result.store_traces(),
        result.retired_per_thread(),
        result.cycles,
        result.simt_efficiency,
    )


class TestValidation:
    def test_rejects_empty_grid(self):
        module = _divergent_module()
        with pytest.raises(LaunchError, match="at least one CTA"):
            GridLaunch(module, 0, 32)

    def test_rejects_empty_cta(self):
        module = _divergent_module()
        with pytest.raises(LaunchError, match="at least one thread"):
            GridLaunch(module, 2, 0)

    def test_multi_cta_needs_whole_warps(self):
        # Warps must never span CTAs, or warp identity (and with it RNG
        # streams and the mem-effects warp envelopes) would diverge from
        # the flat launch of the same thread range.
        module = _divergent_module()
        with pytest.raises(LaunchError, match="multiple of 32"):
            GridLaunch(module, 2, 48)
        # The degenerate single-CTA grid is exactly a flat launch, so any
        # width a flat launch accepts is fine there.
        GridLaunch(module, 1, 48)

    def test_rejects_cta_over_warp_limit(self):
        module = _divergent_module()
        with pytest.raises(LaunchError, match="over the SM limit"):
            GridLaunch(module, 1, 65 * 32)

    def test_rejects_shared_over_sm_limit(self):
        module = _divergent_module()
        with pytest.raises(LaunchError, match="shared memory"):
            GridLaunch(module, 1, 32, shared_words=12289)

    def test_rejects_zero_sms(self):
        module = _divergent_module()
        with pytest.raises(LaunchError, match="at least one SM"):
            GridLaunch(module, 1, 32, n_sms=0)


class TestFlatEquivalence:
    def test_single_cta_grid_is_bit_identical_to_flat_launch(self):
        module = _divergent_module()
        flat = GPUMachine(module, seed=7).launch("k", 96)
        grid = GridLaunch(module, 1, 96, seed=7).launch("k")
        assert grid.store_traces() == flat.store_traces()
        assert grid.retired_per_thread() == flat.retired_per_thread()
        assert grid.cycles == flat.cycles
        assert grid.issued == flat.profiler.issued
        assert grid.simt_efficiency == flat.simt_efficiency
        assert not grid.sharded

    def test_multi_cta_grid_matches_flat_launch_of_same_range(self):
        # The kernel never reads its launch shape, so any factorization of
        # the same 128-thread range produces the same per-thread results.
        module = _divergent_module()
        flat = GPUMachine(module, seed=7).launch("k", 128)
        grid = GridLaunch(module, 4, 32, jobs=1, seed=7).launch("k")
        assert grid.n_threads == 128
        assert grid.store_traces() == flat.store_traces()
        assert grid.retired_per_thread() == flat.retired_per_thread()
        assert grid.issued == flat.profiler.issued


class TestGridIntrinsics:
    def test_ctaid_ctadim_nctas(self):
        module = compile_kernel_source(
            "kernel k() { store(tid(), ctaid() * 100 + ctadim() + nctas()); }"
        )
        result = GridLaunch(module, 3, 32, jobs=1).launch("k")
        memory = result.memory
        for cta_id in range(3):
            for lane in range(32):
                tid = cta_id * 32 + lane
                assert memory.load(tid) == cta_id * 100 + 32 + 3

    def test_flat_launch_is_the_degenerate_grid(self):
        module = compile_kernel_source(
            "kernel k() { store(tid(), ctaid() * 100 + ctadim() + nctas()); }"
        )
        result = GPUMachine(module).launch("k", 8)
        assert result.memory.load(0) == 8 + 1


class TestSharedMemoryUnit:
    def test_store_load_roundtrip(self):
        shared = SharedMemory(16)
        shared.store(3, 2.5)
        assert shared.load(3) == 2.5
        assert shared.load(4) == 0
        assert shared.snapshot() == {3: 2.5}

    def test_atom_add_returns_old_value(self):
        shared = SharedMemory(4)
        assert shared.atom_add(0, 2.0) == 0
        assert shared.atom_add(0, 3.0) == 2.0
        assert shared.load(0) == 5.0

    @pytest.mark.parametrize("addr", [-1, 16, 100])
    def test_out_of_bounds_raises(self, addr):
        shared = SharedMemory(16)
        with pytest.raises(SimulationError, match="out of bounds"):
            shared.load(addr)
        with pytest.raises(SimulationError, match="out of bounds"):
            shared.store(addr, 1.0)
        with pytest.raises(SimulationError, match="out of bounds"):
            shared.atom_add(addr, 1.0)

    def test_negative_size_raises(self):
        with pytest.raises(SimulationError, match="negative"):
            SharedMemory(-1)

    def test_addresses_do_not_alias_global_memory(self):
        # Address 0 in shared memory and address 0 in global memory are
        # different cells: the scratchpad is its own address space.
        module = compile_kernel_source(
            "kernel k() { shst(0, 7.0); store(0, 1.0); store(1, shld(0)); }"
        )
        result = GPUMachine(module).launch(
            "k", 1, cta=CTAContext(shared_words=4)
        )
        assert result.memory.load(0) == 1.0
        assert result.memory.load(1) == 7.0


SHARED_REDUCE = """
kernel k() {
    let ignored = shatom(0, 1.0);
    ctasync;
    if (tid() - ctaid() * ctadim() == 0) {
        store(1000 + ctaid(), shld(0));
    }
}
"""

SHARED_PRIVATE = """
kernel k() {
    if (tid() - ctaid() * ctadim() == 0) {
        shst(0, ctaid() + 1.0);
    }
    ctasync;
    store(tid(), shld(0));
}
"""


class TestSharedMemoryKernels:
    def test_per_cta_reduction(self):
        # Every thread bumps shared[0]; after the CTA barrier, the CTA's
        # lane 0 publishes the count. Each CTA must see exactly cta_dim.
        module = compile_kernel_source(SHARED_REDUCE)
        result = GridLaunch(
            module, 3, 32, jobs=1, shared_words=1
        ).launch("k")
        for cta_id in range(3):
            assert result.memory.load(1000 + cta_id) == 32.0

    def test_scratchpads_are_cta_private(self):
        # CTA i's lane 0 writes i+1 into shared[0]; every thread of CTA i
        # must read i+1 — never a neighbour CTA's value.
        module = compile_kernel_source(SHARED_PRIVATE)
        result = GridLaunch(
            module, 4, 32, jobs=1, shared_words=1
        ).launch("k")
        for tid in range(4 * 32):
            assert result.memory.load(tid) == tid // 32 + 1.0

    def test_kernel_oob_raises(self):
        module = compile_kernel_source("kernel k() { shst(9, 1.0); }")
        with pytest.raises(SimulationError, match="out of bounds"):
            GridLaunch(module, 1, 32, shared_words=4).launch("k")

    def test_flat_launch_needs_explicit_context_for_shared(self):
        # A flat launch defaults to a zero-word scratchpad; shared ops need
        # an explicit CTAContext budget.
        module = compile_kernel_source("kernel k() { shst(0, 1.0); }")
        with pytest.raises(SimulationError, match="out of bounds"):
            GPUMachine(module).launch("k", 1)
        GPUMachine(module).launch("k", 1, cta=CTAContext(shared_words=1))


class TestSMSchedule:
    def test_round_robin_assignment_single_wave(self):
        module = compile_kernel_source(TID_ONLY)
        result = GridLaunch(module, 6, 32, n_sms=4, jobs=1).launch("k")
        by_sm = {entry["sm"]: entry for entry in result.sm_schedule}
        assert by_sm[0]["ctas"] == [0, 4]
        assert by_sm[1]["ctas"] == [1, 5]
        assert by_sm[2]["ctas"] == [2]
        assert by_sm[3]["ctas"] == [3]
        # Default occupancy fits all of an SM's CTAs in one wave.
        assert all(entry["waves"] == 1 for entry in result.sm_schedule)
        assert by_sm[0]["resident_warps"] == 2

    def test_occupancy_limit_splits_waves(self):
        # One SM limited to 2 resident warps runs 4 one-warp CTAs in two
        # waves; SM time is the sum of the wave maxima.
        module = _divergent_module()
        result = GridLaunch(
            module, 4, 32, n_sms=1, max_warps_per_sm=2, jobs=1
        ).launch("k")
        (entry,) = result.sm_schedule
        assert entry["waves"] == 2
        assert entry["resident_ctas"] == 2
        cycles = {r["cta_id"]: r["cycles"] for r in result.cta_records}
        expected = max(cycles[0], cycles[1]) + max(cycles[2], cycles[3])
        assert entry["cycles"] == expected
        assert result.cycles == expected

    def test_grid_cycles_is_busiest_sm(self):
        module = _divergent_module()
        result = GridLaunch(module, 5, 32, n_sms=2, jobs=1).launch("k")
        assert result.cycles == max(
            entry["cycles"] for entry in result.sm_schedule
        )

    def test_occupancy_limited_by_max_ctas(self):
        module = compile_kernel_source(TID_ONLY)
        launch = GridLaunch(module, 1, 32, max_ctas_per_sm=3)
        assert launch.resident_ctas == 3


SHARED_GRID = """
kernel k() {
    let ignored = shatom(0, 1.0);
    ctasync;
    store(tid(), shld(0) + tid());
}
"""

CONFLICTING = "kernel k() { store(0, tid()); }"


class TestSharding:
    def test_sharded_matches_serial(self, monkeypatch):
        # The whole point of the disjointness proof: CTA ranges run on
        # pool workers must be indistinguishable from the in-process loop
        # — traces, retirement, per-CTA cycles, and final memory. The
        # test owns the knob so it still tests sharding under the CI
        # REPRO_GRID=0 leg.
        monkeypatch.delenv("REPRO_GRID", raising=False)
        module = compile_kernel_source(SHARED_GRID)
        serial = GridLaunch(
            module, 8, 32, jobs=1, shared_words=1, seed=11
        ).launch("k")
        sharded = GridLaunch(
            module, 8, 32, jobs=2, shared_words=1, seed=11
        ).launch("k")
        assert not serial.sharded
        assert sharded.sharded
        assert sharded.jobs == 2
        assert _observables(sharded) == _observables(serial)
        assert sharded.cta_records == serial.cta_records
        assert (
            sharded.memory.snapshot() == serial.memory.snapshot()
        )

    def test_guarded_classification_stays_serial(self):
        # All threads hammer cell 0, so CTAs conflict through global
        # memory: the launch must take the deterministic serial loop even
        # when jobs would allow sharding.
        module = compile_kernel_source(CONFLICTING)
        result = GridLaunch(module, 4, 32, jobs=2).launch("k")
        assert result.classification == "guarded"
        assert not result.sharded
        # cta_id order is the defined serialization: the last CTA's last
        # thread wins cell 0.
        assert result.memory.load(0) == 4 * 32 - 1

    def test_repro_grid_0_disables_sharding_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID", "0")
        assert not grid_sharding_enabled()
        module = compile_kernel_source(TID_ONLY)
        result = GridLaunch(module, 4, 32, jobs=2).launch("k")
        assert not result.sharded
        assert result.classification == "disjoint"
        for tid in range(4 * 32):
            assert result.memory.load(tid) == tid * 2.0

    def test_grid_counters(self):
        module = compile_kernel_source(TID_ONLY)
        before = obs_counters.snapshot()
        GridLaunch(module, 3, 32, jobs=1).launch("k")
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["grid.ctas_launched"] == 3
        assert moved["grid.pool_sharded_ctas"] == 0

    def test_sharded_counters_merge_from_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRID", raising=False)
        module = compile_kernel_source(SHARED_GRID)
        before = obs_counters.snapshot()
        result = GridLaunch(
            module, 4, 32, jobs=2, shared_words=1
        ).launch("k")
        assert result.sharded
        moved = obs_counters.delta(obs_counters.snapshot(), before)
        assert moved["grid.ctas_launched"] == 4
        assert moved["grid.pool_sharded_ctas"] == 4
        # Each CTA's lazy scratchpad allocation happened inside a worker;
        # the byte count must still flow back through the pool's counter
        # aggregation (4 CTAs x 1 word x 8 bytes).
        assert moved["grid.shared_bytes"] == 4 * 8

    def test_sm_occupancy_counter_is_high_water(self):
        module = compile_kernel_source(TID_ONLY)
        GridLaunch(module, 2, 64, jobs=1).launch("k")
        peak = ENGINE_COUNTERS.grid_sm_occupancy
        assert peak >= 2
        # A smaller grid must not lower the recorded peak.
        GridLaunch(module, 1, 32, jobs=1).launch("k")
        assert ENGINE_COUNTERS.grid_sm_occupancy == peak


class TestGridResult:
    def test_aggregation_and_summary(self):
        module = _divergent_module()
        result = GridLaunch(module, 3, 32, jobs=1, seed=5).launch("k")
        assert result.issued == sum(
            r["issued"] for r in result.cta_records
        )
        assert result.active_sum == sum(
            r["active_sum"] for r in result.cta_records
        )
        assert 0.0 < result.simt_efficiency <= 1.0
        summary = result.summary()
        assert summary["grid_dim"] == 3
        assert summary["cta_dim"] == 32
        assert summary["n_threads"] == 96
        assert summary["classification"] == "disjoint"
        assert summary["counters"]["grid.ctas_launched"] == 3
        assert [r["cta_id"] for r in result.cta_records] == [0, 1, 2]

    def test_machine_kwargs_reach_every_cta(self):
        # A different seed must change the per-thread RNG streams through
        # the grid path exactly as it does for a flat launch.
        module = compile_kernel_source(
            "kernel k() { store(tid(), rand()); }"
        )
        a = GridLaunch(module, 2, 32, jobs=1, seed=1).launch("k")
        b = GridLaunch(module, 2, 32, jobs=1, seed=2).launch("k")
        flat = GPUMachine(module, seed=1).launch("k", 64)
        assert a.store_traces() == flat.store_traces()
        assert a.store_traces() != b.store_traces()
