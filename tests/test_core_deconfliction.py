"""Conflict analysis and deconfliction (Section 4.3, Figure 5).

Includes the load-bearing demonstration: without deconfliction, the SR
barrier and the PDOM barrier deadlock the warp; either strategy fixes it.
"""

import pytest

from repro.core import (
    BarrierNamer,
    ConflictAnalysis,
    ReconvergenceCompiler,
    collect_predictions,
    deconflict,
    insert_pdom_sync,
    insert_speculative_reconvergence,
    literal_barriers,
    remove_barrier_ops,
)
from repro.errors import DeadlockError, DeconflictionError
from repro.ir import Opcode
from repro.simt import GPUMachine
from tests.helpers import listing1_module


def _inserted(with_deconflict=None):
    """Listing 1 with pdom + SR barriers; optionally deconflicted."""
    module = listing1_module()
    fn = module.function("k")
    namer = BarrierNamer()
    insert_pdom_sync(fn, namer=namer)
    prediction = collect_predictions(fn)[0]
    report = insert_speculative_reconvergence(fn, prediction, namer=namer)
    sr_barriers = [report.barrier, report.exit_barrier]
    if with_deconflict:
        deconflict(fn, sr_barriers, strategy=with_deconflict)
    from repro.core.directives import strip_directives

    strip_directives(fn)
    return module, fn, report


class TestConflictAnalysis:
    def test_sr_conflicts_with_pdom(self):
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        conflicting = analysis.conflicts_with(report.barrier)
        assert conflicting, "SR barrier must conflict with the PDOM barrier"

    def test_exit_barrier_does_not_conflict(self):
        # The orthogonal region-exit barrier covers everything inclusively.
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        assert analysis.conflicts_with(report.exit_barrier) == []

    def test_interference_is_weaker_than_conflict(self):
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        # Exit barrier interferes (overlaps) with everything it encloses
        # even though it conflicts with nothing.
        others = [b for b in analysis.barriers if b != report.exit_barrier]
        assert any(analysis.interferes(report.exit_barrier, b) for b in others)

    def test_literal_barriers_in_first_use_order(self):
        module, fn, report = _inserted()
        names = literal_barriers(fn)
        assert len(names) == len(set(names)) >= 3

    def test_conflict_record_api(self):
        module, fn, report = _inserted()
        conflict = ConflictAnalysis(fn).conflicts[0]
        assert conflict.involves(conflict.first)
        assert conflict.other(conflict.first) == conflict.second
        with pytest.raises(ValueError):
            conflict.other("nope")


class TestDeadlockWithoutDeconfliction:
    def test_conflicting_barriers_deadlock_the_warp(self):
        """The 'unpredictable behavior' of Section 4.3, concretely."""
        module, fn, report = _inserted(with_deconflict=None)
        with pytest.raises(DeadlockError):
            GPUMachine(module).launch("k", 32)

    def test_dynamic_deconfliction_fixes_it(self):
        module, fn, report = _inserted(with_deconflict="dynamic")
        result = GPUMachine(module).launch("k", 32)
        assert result.simt_efficiency > 0

    def test_static_deconfliction_fixes_it(self):
        module, fn, report = _inserted(with_deconflict="static")
        result = GPUMachine(module).launch("k", 32)
        assert result.simt_efficiency > 0


class TestStrategies:
    def test_dynamic_inserts_cancel_before_wait(self):
        module, fn, report = _inserted(with_deconflict="dynamic")
        then = fn.block("then")
        wait_index = next(
            i
            for i, instr in enumerate(then.instructions)
            if instr.opcode is Opcode.BSYNC
        )
        breaks_before = [
            instr
            for instr in then.instructions[:wait_index]
            if instr.opcode is Opcode.BBREAK
            and instr.attrs.get("origin") == "deconflict"
        ]
        assert breaks_before

    def test_dynamic_removes_nothing(self):
        module_plain, fn_plain, _ = _inserted()
        module_dyn, fn_dyn, _ = _inserted(with_deconflict="dynamic")
        count = lambda fn, op: sum(
            1 for _, _, i in fn.instructions() if i.opcode is op
        )
        assert count(fn_dyn, Opcode.BSYNC) == count(fn_plain, Opcode.BSYNC)

    def test_static_removes_pdom_barrier(self):
        module, fn, report = _inserted(with_deconflict="static")
        analysis = ConflictAnalysis(fn)
        assert analysis.conflicts_with(report.barrier) == []
        origins = {
            i.attrs.get("origin")
            for _, _, i in fn.instructions()
            if i.is_barrier_op
        }
        # The conflicting pdom barrier ops are gone; SR ops remain.
        assert "sr" in origins

    def test_static_report_lists_removed(self):
        module = listing1_module()
        fn = module.function("k")
        namer = BarrierNamer()
        insert_pdom_sync(fn, namer=namer)
        prediction = collect_predictions(fn)[0]
        report = insert_speculative_reconvergence(fn, prediction, namer=namer)
        deconf = deconflict(fn, [report.barrier], strategy="static")
        assert deconf.removed_barriers

    def test_unknown_strategy_rejected(self):
        module, fn, report = _inserted()
        with pytest.raises(DeconflictionError):
            deconflict(fn, [report.barrier], strategy="quantum")

    def test_remove_barrier_ops_counts(self):
        module, fn, report = _inserted()
        analysis = ConflictAnalysis(fn)
        victim = analysis.conflicts_with(report.barrier)[0]
        removed = remove_barrier_ops(fn, victim)
        assert removed >= 2  # at least its join and wait

    def test_results_identical_across_strategies(self):
        baseline = ReconvergenceCompiler().compile(listing1_module(), mode="baseline")
        dynamic = ReconvergenceCompiler(deconfliction="dynamic").compile(
            listing1_module(), mode="sr"
        )
        static = ReconvergenceCompiler(deconfliction="static").compile(
            listing1_module(), mode="sr"
        )
        results = {}
        for name, prog in (("base", baseline), ("dyn", dynamic), ("stat", static)):
            results[name] = GPUMachine(prog.module).launch("k", 32).memory.snapshot()
        assert results["base"] == results["dyn"] == results["stat"]


# ---------------------------------------------------------------------------
# Interprocedural deconfliction (soft function-entry waits, Section 4.3+4.4)
# ---------------------------------------------------------------------------
def _soft_interproc_program(label_threshold=2, call_threshold=4):
    """A label prediction and a soft function prediction in one kernel.

    Both branches of a divergent loop body call @helper, whose entry holds
    the interprocedural SR wait; the label's region and the pdom barriers
    span the call sites. Found by the conformance fuzzer: with a soft call
    threshold, stragglers park inside @helper under threshold while the
    members needed to release them sit behind the pdom wait — a cross-
    barrier deadlock invisible to intra-function conflict analysis.
    """
    from repro.frontend import ast_nodes as A

    return A.Program(functions=[
        A.FuncDecl("k", [], A.Block([
            A.Let("acc", A.Num(0.0)),
            A.Let("t", A.CallExpr("tid", [])),
            A.Predict("L1", threshold=label_threshold),
            A.Predict("@helper", threshold=call_threshold),
            A.For("i", A.Num(0), A.Num(2), A.Block([
                A.If(
                    A.Bin("<",
                          A.CallExpr("hash01", [A.Bin(
                              "+",
                              A.Bin("*", A.Var("t"), A.Num(7.0)),
                              A.Var("i"))]),
                          A.Num(0.1015625)),
                    A.Block([
                        A.Label("L1", A.Assign("acc", A.CallExpr(
                            "fma",
                            [A.Var("acc"), A.Num(1.0001), A.Num(0.5)]))),
                        A.Assign("acc", A.CallExpr(
                            "helper", [A.Var("acc")])),
                    ]),
                    A.Block([
                        A.Assign("acc", A.CallExpr("helper", [A.Bin(
                            "+", A.Var("acc"), A.Num(1.0))])),
                    ])),
            ])),
            A.Store(A.Var("t"), A.Var("acc")),
        ]), is_kernel=True),
        A.FuncDecl("helper", ["x"], A.Block([
            A.Let("h", A.Var("x")),
            A.Assign("h", A.CallExpr(
                "fma", [A.Var("h"), A.Num(1.0003), A.Num(0.25)])),
            A.Return(A.Var("h")),
        ]), is_kernel=False),
    ])


class TestInterproceduralDeconfliction:
    def _module(self, **kwargs):
        from repro.frontend.lower import lower_program

        return lower_program(_soft_interproc_program(**kwargs))

    def test_soft_call_threshold_gets_call_site_cancels(self):
        compiled = ReconvergenceCompiler().compile(self._module(), mode="sr")
        interproc = [
            r for r in compiled.report.sr_reports
            if getattr(r, "callee", None) == "helper"
        ]
        assert interproc, "function prediction not lowered"
        barrier = interproc[0].barrier
        cancels = [
            r.cancels_inserted
            for r in compiled.report.deconfliction_reports
            if any(c.first == barrier for c in r.conflicts)
        ]
        assert cancels and cancels[0], "no call-site cancels inserted"

    @pytest.mark.parametrize("strategy", ["dynamic", "static"])
    def test_soft_call_threshold_no_deadlock(self, strategy):
        from repro.simt import GlobalMemory
        from repro.simt.reference import run_reference_launch

        module = self._module()
        reference = run_reference_launch(module, "k", 64)
        for mode in ("baseline", "sr", "none"):
            compiled = ReconvergenceCompiler(deconfliction=strategy).compile(
                module, mode=mode
            )
            launch = GPUMachine(compiled.module).launch(
                "k", 64, memory=GlobalMemory()
            )
            assert launch.store_traces() == reference, (strategy, mode)

    def test_hard_call_threshold_left_untouched(self):
        # The paper's Figure 2(c) claim: a *hard* function-entry wait does
        # not conflict with compiler-inserted reconvergence, so no
        # call-site cancels may appear (funccall's codegen is pinned).
        compiled = ReconvergenceCompiler().compile(
            self._module(call_threshold=None), mode="sr"
        )
        interproc = [
            r for r in compiled.report.sr_reports
            if getattr(r, "callee", None) == "helper"
        ]
        barrier = interproc[0].barrier
        assert not any(
            any(c.first == barrier for c in r.conflicts)
            for r in compiled.report.deconfliction_reports
        )
