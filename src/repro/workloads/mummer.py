"""MUMmerGPU: parallel sequence alignment for genome sequencing (Table 2).

Each thread aligns queries against a reference suffix structure; the inner
match-extension loop runs until the query mismatches, so trip counts follow
the (data-dependent) match-length distribution. Match lengths are mostly
short with occasional long exact matches — moderate imbalance, hence the
moderate gains the paper reports for mummer.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class Mummer(Workload):
    name = "mummer"
    description = (
        "Parallel sequence alignment (suffix-tree walk); inner loop runs "
        "until the query mismatches (data-dependent match lengths)"
    )
    pattern = "loop-merge"
    paper_note = "Moderate trip-count imbalance; moderate gains in Figure 7."
    kernel_name = "mummer_align"
    sr_threshold = 20
    defaults = {
        "queries_per_thread": 10,
        "match_lo": 2,
        "match_hi": 36,
        "extend_cost": 9,
        "ref_size": 2048,
    }

    def source(self):
        p = self.params
        extend = repeat_lines("score = fma(score, 1.0001, 0.25);", p["extend_cost"])
        return f"""
kernel mummer_align(n_queries, reference, scores) {{
    let q = tid();
    let total = 0.0;
    predict L1;
    while (q < n_queries) {{
        // Prolog: load the query head and root suffix-link.
        let node = floor(hash01(q * 1.414213) * {p['ref_size']}.0);
        let u = hash01(q * 6.283185);
        let match_len = floor(u * u * {p['match_hi'] - p['match_lo']}.0) + {p['match_lo']};
        let score = 0.0;
        let k = 0;
        while (k < match_len) {{
            // Proposed reconvergence point: extend the match one base,
            // following the suffix link (one gather per base).
            label L1: node = ld(reference + floor(node) % {p['ref_size']});
{extend}
            k = k + 1;
        }}
        // Epilog: emit the maximal match.
        total = total + score / (match_len + 1.0);
        q = q + 32;
    }}
    store(scores + tid(), total);
}}
"""

    def setup(self, memory):
        size = self.params["ref_size"]
        reference = memory.alloc_array(
            [(i * 16807 + 3) % size for i in range(size)], name="reference"
        )
        scores = memory.alloc(self.n_threads, name="scores")
        n_queries = self.params["queries_per_thread"] * self.n_threads
        return (n_queries, reference, scores)
