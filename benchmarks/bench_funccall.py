"""Section 5.1 microbenchmark: the common-function-call pattern."""

from repro.harness import funccall_microbenchmark
from repro.workloads import get_workload


def test_funccall_microbenchmark(once):
    result = once(funccall_microbenchmark)
    workload = get_workload("funccall")
    optimized = result.data["sr"]
    assert workload.shade_efficiency(optimized.launch) > 0.95
    print("\n" + result.text)
