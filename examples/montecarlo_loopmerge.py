#!/usr/bin/env python
"""Loop Merge on a Monte Carlo workload (the RSBench case study, Figure 3).

Walks through the paper's flagship scenario end to end:

1. build RSBench — an outer task loop (from thread coarsening) around an
   inner loop whose trip count is the material's nuclide count (4..321);
2. show the per-block execution profile under PDOM sync: the inner loop
   runs at low occupancy because the warp serializes stragglers;
3. apply Loop Merge (``predict L1`` at the inner body) and show the inner
   loop repacked near full width, with the prolog/epilog now divergent —
   the exact trade of Figure 3(b);
4. sweep the soft-barrier threshold to find the sweet spot.

Run: ``python examples/montecarlo_loopmerge.py``
"""

from repro.harness import threshold_sweep
from repro.workloads import get_workload


def block_profile_table(launch, kernel, blocks):
    rows = []
    for block in blocks:
        profile = launch.profiler.block_profile(kernel, block)
        rows.append(
            f"  {block:14s} issues={profile.issues:6d} "
            f"avg active lanes={profile.average_active:5.1f}"
        )
    return "\n".join(rows)


def main():
    workload = get_workload("rsbench")
    print(f"workload: {workload.name} — {workload.description}\n")

    baseline = workload.run(mode="baseline")
    optimized = workload.run(mode="sr")

    # L.L1 is the inner-loop body (the predicted reconvergence point);
    # while.body is the prolog, while.exit.3 the epilog.
    interesting = ["L.L1", "while.head.1", "while.body", "while.exit.3"]
    print("PDOM baseline   — inner loop serialized across stragglers:")
    print(block_profile_table(baseline.launch, workload.kernel_name, interesting))
    print(f"  overall SIMT efficiency {baseline.simt_efficiency:.1%}, "
          f"cycles {baseline.cycles}\n")

    print(f"Loop Merge (threshold={workload.sr_threshold}) — inner loop "
          "repacked, prolog/epilog now divergent:")
    print(block_profile_table(optimized.launch, workload.kernel_name, interesting))
    print(f"  overall SIMT efficiency {optimized.simt_efficiency:.1%}, "
          f"cycles {optimized.cycles}")
    print(f"  speedup {baseline.cycles / optimized.cycles:.2f}x\n")

    print("Soft-barrier threshold sweep (Section 4.6):")
    _, points = threshold_sweep("rsbench", thresholds=(0, 8, 16, 24, 28, 32))
    for p in points:
        print(f"  threshold {p.threshold:2d}: efficiency {p.simt_efficiency:.1%}, "
              f"speedup {p.speedup:.2f}x")
    best = max(points, key=lambda p: p.speedup)
    print(f"\nbest threshold for rsbench: {best.threshold} "
          f"({best.speedup:.2f}x)")


if __name__ == "__main__":
    main()
