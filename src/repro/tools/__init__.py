"""Command-line tools: the srkc compiler driver."""
