"""Warp schedulers.

The default :class:`ConvergenceScheduler` models Volta's convergence
optimizer: among the groups of runnable threads that share a PC, it issues
the largest group, "grouping together threads that execute the same code in
parallel for maximum convergence" (Section 2). Ties break deterministically
by program order, so simulations are reproducible.

:class:`RoundRobinScheduler` and :class:`OldestFirstScheduler` are
alternative policies used by the simulator tests and the scheduling
ablation bench — the correctness property (per-thread results are
schedule-invariant) is verified across all of them.
"""

from __future__ import annotations


class SchedulerBase:
    """Picks which PC-group a warp issues next."""

    name = "base"

    def pick(self, groups, program_order):
        """Return the chosen PC key.

        ``groups`` maps pc -> list of threads; ``program_order`` maps pc to a
        sortable program-position tuple.
        """
        raise NotImplementedError

    def forced_pick(self, groups, program_order):
        """The PC this policy is *guaranteed* to pick for the next issue —
        and to keep picking while that group advances through a fusable
        segment — or None when the pick depends on state a fused run would
        change.

        The base answer is conservative: only a single group is forced
        (there is nothing else to pick, and that stays true while the group
        advances, since fusable ops cannot split it or wake other lanes).
        Policies whose key cannot flip mid-segment may widen this. Used by
        the segment-fusion engine (:mod:`repro.simt.segments`); must err on
        the side of None — a wrong non-None answer changes issue order.
        """
        if len(groups) == 1:
            return next(iter(groups))
        return None

    def consume(self, n):
        """Account for ``n`` issue slots granted without calling ``pick``
        (a fused segment). Stateless policies ignore this; stateful ones
        (round-robin) advance their internal position as if ``pick`` had
        run ``n`` times.
        """

    def spec_cursor(self, n_warps, warp_index):
        """A *stateless* pick function over virtual groups, or None.

        The speculative round engine (:mod:`repro.simt.spec`) plans each
        warp's next slots without executing anything and without touching
        scheduler state. It needs the policy's pick sequence as a pure
        function of the evolving group *structure*: the returned callable
        takes ``(vgroups, program_order, slot)`` — where ``vgroups`` maps
        pc to a tuple whose first two fields are ``(size, min_lane)`` and
        ``slot`` is the warp's 0-based slot within the round — and
        returns the pc the real ``pick`` would choose at that slot, given
        that all ``n_warps`` live warps issue one slot per rotation and
        this warp is at position ``warp_index``.

        The base answer is None: a policy that cannot be modelled without
        execution cannot be speculated over. Like ``forced_pick``, a
        wrong non-None answer changes issue order, so implementations
        must mirror ``pick`` exactly.
        """
        return None

    def spec_plan_token(self, n_warps, warp_index):
        """A value classifying this warp's plan among plans for the same
        group structure. Two calls whose tokens are congruent modulo the
        lcm of the group counts along a planned trajectory must yield
        identical pick sequences from identical structures, so the spec
        engine caches plans keyed by ``(structure, n_warps, token % lcm)``.
        Stateless policies pick from structure alone: constant token.
        """
        return 0

    #: True when ``spec_cursor`` is a pure function of the group
    #: structure alone — no internal counters, no slot dependence — so
    #: every plan for a structure is interchangeable (``spec_plan_token``
    #: is constant). Stateful policies (round-robin) leave this False and
    #: return their counter phase from ``spec_plan_token`` instead.
    spec_stateless = False


class ConvergenceScheduler(SchedulerBase):
    """Largest group first; ties broken by program order then lowest lane."""

    name = "convergence"
    spec_stateless = True

    def pick(self, groups, program_order):
        if len(groups) == 1:
            # Fully converged warp (the common case): min of a singleton.
            return next(iter(groups))

        def key(pc):
            threads = groups[pc]
            return (-len(threads), program_order(pc), threads[0].lane)

        return min(groups, key=key)

    def forced_pick(self, groups, program_order):
        # A *strictly* largest group wins regardless of program order or
        # lane, and fusable ops can change neither its size nor any other
        # group's, so the pick stays forced for a whole segment. A size tie
        # is not forced: the tiebreak reads program_order(pc), which moves
        # as the fused group advances.
        if len(groups) == 1:
            return next(iter(groups))
        best = None
        best_len = -1
        tie = False
        for pc, threads in groups.items():
            size = len(threads)
            if size > best_len:
                best = pc
                best_len = size
                tie = False
            elif size == best_len:
                tie = True
        return None if tie else best

    def spec_cursor(self, n_warps, warp_index):
        # pick() reads only the group structure: size, program order, and
        # the lowest lane of the bucket (buckets are lane-sorted, so
        # threads[0].lane is the minimum). All three live in the virtual
        # groups, making the policy fully replayable without execution.
        def cursor(vgroups, program_order, slot):
            if len(vgroups) == 1:
                return next(iter(vgroups))
            return min(
                vgroups,
                key=lambda pc: (
                    -vgroups[pc][0], program_order(pc), vgroups[pc][1]
                ),
            )

        return cursor


class OldestFirstScheduler(SchedulerBase):
    """Earliest program position first (depth-first serialization)."""

    name = "oldest-first"
    spec_stateless = True

    def pick(self, groups, program_order):
        if len(groups) == 1:
            return next(iter(groups))
        return min(groups, key=lambda pc: (program_order(pc), -len(groups[pc])))

    def spec_cursor(self, n_warps, warp_index):
        def cursor(vgroups, program_order, slot):
            if len(vgroups) == 1:
                return next(iter(vgroups))
            return min(
                vgroups,
                key=lambda pc: (program_order(pc), -vgroups[pc][0]),
            )

        return cursor


class RoundRobinScheduler(SchedulerBase):
    """Rotates across groups; exists to stress schedule-invariance tests."""

    name = "round-robin"

    def __init__(self):
        self._counter = 0

    def pick(self, groups, program_order):
        ordered = sorted(groups, key=program_order)
        choice = ordered[self._counter % len(ordered)]
        self._counter += 1
        return choice

    def forced_pick(self, groups, program_order):
        # Only a singleton is forced (the base answer), but even then the
        # counter must advance per slot — see consume().
        if len(groups) == 1:
            return next(iter(groups))
        return None

    def consume(self, n):
        # pick() on a singleton group would have incremented the counter
        # once per issue; a fused run of n slots must advance it by n so
        # the rotation phase matches the per-instruction schedule.
        self._counter += n

    def spec_cursor(self, n_warps, warp_index):
        # The counter is shared across warps and advances once per pick.
        # In the serial rotation every live warp issues exactly one slot
        # per round, so this warp's pick at round-relative ``slot`` sees
        # counter value ``base + slot * n_warps`` — a pure function of
        # the counter snapshot taken here. The spec engine advances the
        # real counter via consume() only at commit.
        base = self._counter + warp_index
        lens = set()
        memo = {}

        def cursor(vgroups, program_order, slot):
            # Loop-resident structures revisit the same key sets many
            # times per plan; memoize the sorted order per key tuple so
            # the steady state pays a dict hit, not a sort plus
            # program_order calls.
            keys = tuple(vgroups)
            ordered = memo.get(keys)
            if ordered is None:
                ordered = sorted(keys, key=program_order)
                memo[keys] = ordered
                # Record every group count the trajectory visits: the
                # spec engine caches this plan keyed by ``base`` modulo
                # their lcm (two congruent bases index every ordered list
                # identically, so by induction they walk the same
                # trajectory).
                lens.add(len(ordered))
            return ordered[(base + slot * n_warps) % len(ordered)]

        cursor.lens = lens
        return cursor

    def spec_plan_token(self, n_warps, warp_index):
        # The same base the cursor snapshots: the plan's identity is the
        # counter phase, not the absolute counter value.
        return self._counter + warp_index


SCHEDULERS = {
    cls.name: cls
    for cls in (ConvergenceScheduler, OldestFirstScheduler, RoundRobinScheduler)
}


def make_scheduler(name="convergence"):
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
