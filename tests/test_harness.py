"""Harness tests: experiment runners, figure generators, report rendering."""

import pytest

from repro.harness import (
    compare_workload,
    efficiency_chart,
    figure9,
    format_bar,
    format_table,
    funccall_microbenchmark,
    markdown_table,
    table2,
    threshold_sweep,
)
from tests.test_workloads import FAST_PARAMS


class TestReportRendering:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 0.125)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_table_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_bar_scales(self):
        assert format_bar(0.5, scale=10) == "#####"
        assert format_bar(2.0, scale=10, maximum=1.0) == "#" * 10

    def test_efficiency_chart(self):
        text = efficiency_chart([("w", 0.25, 0.75)])
        assert "base 25.0%" in text
        assert "+SR  75.0%" in text

    def test_markdown_table(self):
        text = markdown_table(["a", "b"], [(1, 2)])
        assert text.splitlines()[1] == "|---|---|"


class TestExperimentRunners:
    def test_compare_workload(self):
        row = compare_workload("mcb", **FAST_PARAMS["mcb"])
        assert row.workload == "mcb"
        assert 0 < row.baseline_eff <= 1
        assert row.checksum_ok
        assert row.speedup > 0
        assert row.efficiency_gain > 0

    def test_threshold_sweep_hard_tail(self):
        baseline, points = threshold_sweep(
            "mcb", thresholds=(4, 32), **FAST_PARAMS["mcb"]
        )
        assert len(points) == 2
        # threshold >= 32 collapses to the hard barrier
        hard = points[1]
        assert hard.threshold == 32
        assert hard.cycles > 0
        assert baseline.mode == "baseline"

    def test_sweep_speedups_relative_to_baseline(self):
        baseline, points = threshold_sweep(
            "mcb", thresholds=(8,), **FAST_PARAMS["mcb"]
        )
        point = points[0]
        assert point.speedup == pytest.approx(baseline.cycles / point.cycles)


class TestFigureGenerators:
    def test_table2_lists_nine_benchmarks(self):
        result = table2()
        assert len(result.data) == 9
        assert "rsbench" in result.text

    def test_figure9_reduced(self):
        result = figure9(thresholds=(8, 32), workloads=("mcb",))
        assert "mcb" in result.data
        baseline, points = result.data["mcb"]
        assert len(points) == 2
        assert "best threshold" in result.text

    def test_funccall_microbenchmark(self):
        result = funccall_microbenchmark()
        data = result.data
        assert data["sr"].simt_efficiency > data["baseline"].simt_efficiency
        assert "speedup" in result.text
