"""Workload suite tests: every Table 2 benchmark builds, verifies,
runs correctly in every mode, and has coherent metadata."""

import pytest

from repro.errors import WorkloadError
from repro.ir import verify_module
from repro.workloads import (
    FIGURE7_WORKLOADS,
    REGISTRY,
    all_workloads,
    get_workload,
    workload_names,
)

ALL_NAMES = FIGURE7_WORKLOADS + ("funccall",)

#: Smaller presets so the full matrix stays fast in CI.
FAST_PARAMS = {
    "rsbench": {"n_tasks": 96},
    "xsbench": {"n_tasks": 64},
    "mcb": {"steps": 12},
    "pathtracer": {"samples_per_thread": 3},
    "mc-gpu": {"photons_per_thread": 3},
    "mummer": {"queries_per_thread": 4},
    "meiyamd5": {"candidates_per_thread": 2},
    "optix": {"steps": 12},
    "gpu-mcml": {"photons_per_thread": 2},
    "funccall": {"iterations": 8},
}


def fast(name):
    return get_workload(name, **FAST_PARAMS.get(name, {}))


class TestRegistry:
    def test_all_table2_workloads_registered(self):
        assert set(FIGURE7_WORKLOADS) <= set(workload_names())

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("quake3")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("rsbench", flux_capacitor=1)

    def test_all_workloads_helper(self):
        workloads = all_workloads()
        assert len(workloads) == len(REGISTRY)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_metadata_complete(self, name):
        workload = get_workload(name)
        assert workload.description
        assert workload.pattern in ("loop-merge", "iteration-delay", "func-call")
        assert workload.paper_note
        assert workload.kernel_name


class TestBuild:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_module_builds_and_verifies(self, name):
        module = fast(name).module()
        assert verify_module(module)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_has_prediction_annotation(self, name):
        from repro.core import collect_predictions

        workload = fast(name)
        module = workload.module()
        predictions = []
        for fn in module:
            predictions.extend(collect_predictions(fn))
        assert len(predictions) == 1
        assert predictions[0].is_interprocedural == (workload.pattern == "func-call")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_compiles_in_all_modes(self, name):
        workload = fast(name)
        for mode in ("baseline", "sr", "none"):
            prog = workload.compile(mode=mode)
            assert verify_module(prog.module)


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sr_preserves_results(self, name):
        workload = fast(name)
        baseline = workload.run(mode="baseline")
        optimized = workload.run(mode="sr")
        if workload.deterministic_memory:
            assert baseline.launch.memory.snapshot() == optimized.launch.memory.snapshot()
        else:
            assert baseline.checksum == pytest.approx(optimized.checksum, abs=1e-2)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_none_mode_preserves_results(self, name):
        workload = fast(name)
        baseline = workload.run(mode="baseline")
        unsynced = workload.run(mode="none")
        if workload.deterministic_memory:
            assert baseline.launch.memory.snapshot() == unsynced.launch.memory.snapshot()
        else:
            assert baseline.checksum == pytest.approx(unsynced.checksum, abs=1e-2)

    @pytest.mark.parametrize("name", ("rsbench", "pathtracer", "funccall"))
    def test_results_scheduler_invariant(self, name):
        workload = fast(name)
        results = {
            scheduler: workload.run(mode="sr", scheduler=scheduler).checksum
            for scheduler in ("convergence", "oldest-first")
        }
        values = list(results.values())
        assert values[0] == pytest.approx(values[1], abs=1e-2)


class TestMetrics:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_result_fields_sane(self, name):
        result = fast(name).run(mode="baseline")
        assert 0 < result.simt_efficiency <= 1
        assert result.cycles > 0
        assert result.issued > 0

    def test_compare_returns_pair(self):
        baseline, optimized = fast("mcb").compare()
        assert baseline.mode == "baseline"
        assert optimized.mode == "sr"
        assert optimized.speedup_over(baseline) > 0

    def test_threshold_override(self):
        workload = fast("rsbench")
        hard = workload.run(mode="sr", threshold=None)
        soft = workload.run(mode="sr", threshold=8)
        assert hard.threshold is None
        assert soft.threshold == 8
        assert hard.cycles != soft.cycles
