"""Experiment runners shared by the figure generators and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads import get_workload


@dataclass
class ComparisonRow:
    """Baseline-vs-SR measurements for one workload."""

    workload: str
    pattern: str
    baseline_eff: float
    sr_eff: float
    baseline_cycles: int
    sr_cycles: int
    threshold: object
    checksum_ok: bool

    @property
    def efficiency_gain(self):
        return self.sr_eff / self.baseline_eff if self.baseline_eff else float("inf")

    @property
    def speedup(self):
        return self.baseline_cycles / self.sr_cycles if self.sr_cycles else float("inf")


def compare_workload(name, seed=2020, **params):
    """Run one workload baseline vs SR (with its user-chosen threshold)."""
    workload = get_workload(name, **params)
    baseline, optimized = workload.compare(seed=seed)
    if workload.deterministic_memory:
        checksum_ok = baseline.checksum == optimized.checksum
    else:
        checksum_ok = abs(baseline.checksum - optimized.checksum) < 1e-2
    return ComparisonRow(
        workload=name,
        pattern=workload.pattern,
        baseline_eff=baseline.simt_efficiency,
        sr_eff=optimized.simt_efficiency,
        baseline_cycles=baseline.cycles,
        sr_cycles=optimized.cycles,
        threshold=workload.sr_threshold,
        checksum_ok=checksum_ok,
    )


def compare_all(names, seed=2020, params=None):
    """ComparisonRows for a list of workload names."""
    params = params or {}
    return [
        compare_workload(name, seed=seed, **params.get(name, {}))
        for name in names
    ]


@dataclass
class SweepPoint:
    threshold: int
    simt_efficiency: float
    cycles: int
    speedup: float


def threshold_sweep(name, thresholds=None, seed=2020, **params):
    """Soft-barrier threshold sweep for one workload (Figure 9).

    Returns (baseline_result, [SweepPoint...]). ``threshold=32`` and above
    behave as the hard barrier (wait for every member).
    """
    workload = get_workload(name, **params)
    thresholds = list(thresholds) if thresholds is not None else list(range(0, 33, 4))
    baseline = workload.run(mode="baseline", seed=seed)
    points = []
    for k in thresholds:
        effective = None if k >= 32 else k  # >=32 collapses to hard wait
        result = workload.run(mode="sr", threshold=effective, seed=seed)
        points.append(
            SweepPoint(
                threshold=k,
                simt_efficiency=result.simt_efficiency,
                cycles=result.cycles,
                speedup=baseline.cycles / result.cycles,
            )
        )
    return baseline, points
