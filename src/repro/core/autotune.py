"""Automatic soft-barrier threshold discovery.

The paper leaves this open: "We leave the problem of automatically
discovering the ideal threshold parameter for a particular problem to
future work" (Section 5.3). This module implements the obvious offline
search: measure a coarse grid of thresholds on the simulator, then refine
around the best coarse point.

The search space is tiny (0..32) and runs are deterministic, so a
grid-plus-refine scan is exact enough; the interface takes any
``run(threshold) -> cycles`` callable so it works for workloads, corpus
apps, or user kernels alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simt.warp import WARP_SIZE


@dataclass
class TuneResult:
    """Outcome of a threshold search."""

    best_threshold: object          # int, or None for the hard barrier
    best_cycles: int
    baseline_cycles: int
    evaluations: dict = field(default_factory=dict)  # threshold -> cycles

    @property
    def best_speedup(self):
        return self.baseline_cycles / self.best_cycles if self.best_cycles else 0.0

    @property
    def profitable(self):
        return self.best_cycles < self.baseline_cycles


def tune_threshold(
    run,
    baseline_cycles,
    coarse_step=8,
    include_hard=True,
    max_threshold=WARP_SIZE,
):
    """Search for the fastest soft-barrier threshold.

    Args:
        run: callable mapping a threshold (int, or None = hard barrier) to
            measured cycles.
        baseline_cycles: cycles of the PDOM baseline, for the speedup.
        coarse_step: grid stride for the first pass.
        include_hard: also evaluate the hard barrier (threshold None).
    Returns a :class:`TuneResult`.
    """
    evaluations = {}

    def measure(threshold):
        if threshold not in evaluations:
            evaluations[threshold] = run(threshold)
        return evaluations[threshold]

    coarse = list(range(2, max_threshold, coarse_step))
    if include_hard:
        coarse.append(None)
    for threshold in coarse:
        measure(threshold)

    numeric = {k: v for k, v in evaluations.items() if k is not None}
    pivot = min(numeric, key=numeric.get)
    for threshold in range(
        max(2, pivot - coarse_step + 1), min(max_threshold, pivot + coarse_step)
    ):
        measure(threshold)

    best = min(evaluations, key=evaluations.get)
    return TuneResult(
        best_threshold=best,
        best_cycles=evaluations[best],
        baseline_cycles=baseline_cycles,
        evaluations=dict(evaluations),
    )


def tune_workload(workload, seed=2020, **tune_options):
    """Tune a :class:`repro.workloads.Workload`'s threshold end to end."""
    baseline = workload.run(mode="baseline", seed=seed)

    def run(threshold):
        return workload.run(mode="sr", threshold=threshold, seed=seed).cycles

    return tune_threshold(run, baseline.cycles, **tune_options)
