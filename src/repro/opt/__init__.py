"""Classic IR optimizations, safe around reconvergence annotations.

Just the transforms. The fixpoint driver lives with the pipeline passes
(:func:`repro.core.passes.run_opt_fixpoint`, the ``optimize`` pass).
"""

from repro.opt.constfold import fold_function, fold_module
from repro.opt.dce import dce_module, eliminate_dead_code
from repro.opt.simplify_cfg import simplify_function, simplify_module

__all__ = [
    "dce_module",
    "eliminate_dead_code",
    "fold_function",
    "fold_module",
    "simplify_function",
    "simplify_module",
]
