"""The paper's contribution: the Speculative Reconvergence pass suite."""

from repro.core.allocation import (
    PHYSICAL_BARRIERS,
    allocate_barriers,
    allocate_module,
    color_barriers,
)
from repro.core.autodetect import (
    Candidate,
    annotate,
    detect_and_annotate,
    detect_candidates,
)
from repro.core.autotune import TuneResult, tune_threshold, tune_workload
from repro.core.barrier_lint import LintFinding, lint_function, lint_module
from repro.core.barrier_liveness import BarrierLiveness
from repro.core.conflicts import Conflict, ConflictAnalysis, literal_barriers
from repro.core.deconfliction import (
    DYNAMIC,
    STATIC,
    DeconflictionReport,
    deconflict,
    remove_barrier_ops,
)
from repro.core.directives import (
    Prediction,
    collect_predictions,
    find_label_block,
    strip_directives,
)
from repro.core.insertion import InsertionReport, insert_speculative_reconvergence
from repro.core.interprocedural import (
    InterproceduralReport,
    insert_interprocedural_sr,
    make_wrapper,
)
from repro.core.joined_barriers import JoinedBarriers
from repro.core.pdom_sync import PdomSyncReport, insert_pdom_sync
from repro.core.pipeline import (
    MODES,
    CompiledProgram,
    CompileReport,
    ReconvergenceCompiler,
    compile_baseline,
    compile_sr,
)
from repro.core.program_cache import (
    PROGRAM_CACHE,
    ProgramCache,
    cache_disabled,
    compile_cache_enabled,
    compile_cached,
    set_compile_cache,
)
from repro.core.primitives import (
    BarrierNamer,
    cancel_barrier,
    join_barrier,
    rejoin_barrier,
    wait_barrier,
    wait_barrier_soft,
)
from repro.core.regions import PredictionRegion, compute_region
from repro.core.softbarrier import (
    expand_fig6_style,
    set_prediction_threshold,
    soften_waits,
)

__all__ = [
    "BarrierLiveness",
    "BarrierNamer",
    "Candidate",
    "CompileReport",
    "CompiledProgram",
    "Conflict",
    "ConflictAnalysis",
    "DYNAMIC",
    "DeconflictionReport",
    "InsertionReport",
    "InterproceduralReport",
    "JoinedBarriers",
    "MODES",
    "PHYSICAL_BARRIERS",
    "PROGRAM_CACHE",
    "PdomSyncReport",
    "Prediction",
    "PredictionRegion",
    "ProgramCache",
    "ReconvergenceCompiler",
    "TuneResult",
    "STATIC",
    "allocate_barriers",
    "allocate_module",
    "annotate",
    "cache_disabled",
    "cancel_barrier",
    "collect_predictions",
    "color_barriers",
    "compile_baseline",
    "compile_cache_enabled",
    "compile_cached",
    "compile_sr",
    "set_compile_cache",
    "compute_region",
    "deconflict",
    "detect_and_annotate",
    "detect_candidates",
    "expand_fig6_style",
    "find_label_block",
    "insert_interprocedural_sr",
    "insert_pdom_sync",
    "insert_speculative_reconvergence",
    "join_barrier",
    "LintFinding",
    "lint_function",
    "lint_module",
    "literal_barriers",
    "make_wrapper",
    "rejoin_barrier",
    "remove_barrier_ops",
    "set_prediction_threshold",
    "soften_waits",
    "strip_directives",
    "tune_threshold",
    "tune_workload",
    "wait_barrier",
    "wait_barrier_soft",
]
