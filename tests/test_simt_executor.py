"""Opcode-level executor tests: tiny kernels checked against expected
per-thread results."""

import math

import pytest

from repro.errors import DeadlockError, LaunchError, SimulationError
from repro.frontend import compile_kernel_source
from repro.ir import Function, IRBuilder, Module
from repro.simt import GPUMachine, GlobalMemory


def run_kernel(source, kernel, n_threads=32, args=(), memory=None, **machine_kwargs):
    module = compile_kernel_source(source)
    machine = GPUMachine(module, **machine_kwargs)
    return machine.launch(kernel, n_threads, args=args, memory=memory)


def run_expr(expr, n_threads=4):
    """Store an expression per thread; returns the memory cells."""
    result = run_kernel(
        f"kernel k() {{ store(tid(), {expr}); }}", "k", n_threads=n_threads
    )
    return [result.memory.load(i) for i in range(n_threads)]


class TestArithmetic:
    def test_add_mul(self):
        assert run_expr("tid() * 2 + 1") == [1, 3, 5, 7]

    def test_division_is_float(self):
        assert run_expr("7 / 2")[0] == 3.5

    def test_division_by_zero_yields_zero(self):
        assert run_expr("1 / 0")[0] == 0.0

    def test_rem(self):
        assert run_expr("tid() % 3") == [0, 1, 2, 0]

    def test_rem_by_zero_yields_zero(self):
        assert run_expr("5 % 0")[0] == 0

    def test_min_max(self):
        assert run_expr("min(tid(), 2)") == [0, 1, 2, 2]
        assert run_expr("max(tid(), 2)") == [2, 2, 2, 3]

    def test_bitwise(self):
        assert run_expr("xor(tid(), 1)") == [1, 0, 3, 2]
        assert run_expr("shl(1, tid())") == [1, 2, 4, 8]
        assert run_expr("shr(8, tid())") == [8, 4, 2, 1]
        assert run_expr("bitand(tid(), 1)") == [0, 1, 0, 1]
        assert run_expr("bitor(tid(), 4)") == [4, 5, 6, 7]

    def test_comparisons_produce_01(self):
        assert run_expr("tid() < 2") == [1, 1, 0, 0]
        assert run_expr("tid() >= 2") == [0, 0, 1, 1]
        assert run_expr("tid() == 1") == [0, 1, 0, 0]

    def test_unary_math(self):
        values = run_expr("sqrt(tid() + 0.0)")
        assert values[3] == pytest.approx(math.sqrt(3))
        assert run_expr("floor(2.7)")[0] == 2
        assert run_expr("abs(0 - 5)")[0] == 5

    def test_sqrt_of_negative_is_zero(self):
        assert run_expr("sqrt(0.0 - 4.0)")[0] == 0.0

    def test_log_of_nonpositive_is_zero(self):
        assert run_expr("log(0.0)")[0] == 0.0

    def test_fma(self):
        assert run_expr("fma(tid(), 2.0, 1.0)") == [1.0, 3.0, 5.0, 7.0]

    def test_exp_clamped(self):
        assert run_expr("exp(1000.0)")[0] == pytest.approx(math.exp(60.0))


class TestThreadIdentity:
    def test_tid_global(self):
        result = run_kernel("kernel k() { store(tid(), tid()); }", "k", n_threads=40)
        assert result.memory.load(39) == 39

    def test_lane_wraps_per_warp(self):
        result = run_kernel("kernel k() { store(tid(), lane()); }", "k", n_threads=40)
        assert result.memory.load(35) == 3

    def test_warpid(self):
        result = run_kernel("kernel k() { store(tid(), warpid()); }", "k", n_threads=40)
        assert result.memory.load(5) == 0
        assert result.memory.load(36) == 1

    def test_rand_deterministic_per_seed(self):
        a = run_kernel("kernel k() { store(tid(), rand()); }", "k", seed=1)
        b = run_kernel("kernel k() { store(tid(), rand()); }", "k", seed=1)
        c = run_kernel("kernel k() { store(tid(), rand()); }", "k", seed=2)
        assert a.memory.snapshot() == b.memory.snapshot()
        assert a.memory.snapshot() != c.memory.snapshot()


class TestMemoryOps:
    def test_ld_st(self):
        memory = GlobalMemory()
        memory.store(100, 42)
        result = run_kernel(
            "kernel k() { store(tid(), ld(100)); }", "k", memory=memory
        )
        assert result.memory.load(0) == 42

    def test_atomadd_assigns_unique_values(self):
        result = run_kernel(
            "kernel k() { let t = atomadd(1000, 1); store(t, 1); }", "k"
        )
        assert result.memory.load(1000) == 32
        assert all(result.memory.load(i) == 1 for i in range(32))

    def test_store_trace_recorded(self):
        result = run_kernel("kernel k() { store(tid(), 7.0); }", "k", n_threads=2)
        traces = result.store_traces()
        assert traces[0] == [(0, 7.0)]
        assert traces[1] == [(1, 7.0)]


class TestControlFlow:
    def test_if_else(self):
        run_expr("tid()")  # warm-up sanity
        result = run_kernel(
            """
kernel k() {
    if (tid() < 2) { store(tid(), 1.0); } else { store(tid(), 2.0); }
}
""",
            "k",
            n_threads=4,
        )
        assert [result.memory.load(i) for i in range(4)] == [1.0, 1.0, 2.0, 2.0]

    def test_while_loop(self):
        result = run_kernel(
            """
kernel k() {
    let i = 0;
    let s = 0;
    while (i < tid()) { s = s + i; i = i + 1; }
    store(tid(), s);
}
""",
            "k",
            n_threads=5,
        )
        assert [result.memory.load(i) for i in range(5)] == [0, 0, 1, 3, 6]

    def test_for_loop_with_break_continue(self):
        result = run_kernel(
            """
kernel k() {
    let s = 0;
    for i in 0..10 {
        if (i == 3) { continue; }
        if (i == 6) { break; }
        s = s + i;
    }
    store(tid(), s);
}
""",
            "k",
            n_threads=1,
        )
        assert result.memory.load(0) == 0 + 1 + 2 + 4 + 5

    def test_function_call_and_return(self):
        result = run_kernel(
            """
func square(x) { return x * x; }
kernel k() { store(tid(), @square(tid())); }
""",
            "k",
            n_threads=4,
        )
        assert [result.memory.load(i) for i in range(4)] == [0, 1, 4, 9]

    def test_nested_calls(self):
        result = run_kernel(
            """
func inc(x) { return x + 1; }
func twice(x) { return @inc(@inc(x)); }
kernel k() { store(tid(), @twice(10)); }
""",
            "k",
            n_threads=1,
        )
        assert result.memory.load(0) == 12

    def test_recursive_call(self):
        result = run_kernel(
            """
func fact(n) { if (n < 2) { return 1; } return n * @fact(n - 1); }
kernel k() { store(tid(), @fact(5)); }
""",
            "k",
            n_threads=2,
        )
        assert result.memory.load(0) == 120


class TestBarrierOpcodeSemantics:
    def _barrier_module(self):
        module = Module("m")
        fn = Function("k", is_kernel=True)
        module.add(fn)
        b = IRBuilder(fn)
        b.new_block("entry", switch=True)
        return module, fn, b

    def test_bsync_without_join_is_passthrough(self):
        module, fn, b = self._barrier_module()
        b.bsync("b0")
        b.store(b.tid(), 1.0)
        b.exit()
        result = GPUMachine(module).launch("k", 4)
        assert result.memory.load(3) == 1.0

    def test_barcnt_counts_members(self):
        module, fn, b = self._barrier_module()
        b.bssy("b0")
        cnt = b.barcnt("b0")
        b.store(b.tid(), cnt)
        b.exit()
        result = GPUMachine(module).launch("k", 4)
        assert result.memory.load(0) == 4

    def test_bmov_indirection(self):
        module, fn, b = self._barrier_module()
        bt = fn.new_reg("bt")
        b.bmov(bt, "b0")
        b.bssy(bt)
        cnt = b.barcnt("b0")
        b.store(b.tid(), cnt)
        b.exit()
        result = GPUMachine(module).launch("k", 2)
        assert result.memory.load(0) == 2

    def test_warpsync_released_when_other_lanes_exit(self):
        # A lane that exits the kernel is drained from every barrier (the
        # forward-progress guarantee), so a divergent warpsync completes
        # once the non-syncing lanes have exited.
        result = run_kernel(
            """
kernel k() {
    if (tid() < 1) { warpsync; }
    store(tid(), 1.0);
}
""",
            "k",
            n_threads=2,
        )
        assert result.memory.load(0) == 1.0

    def test_cross_barrier_deadlock_detected(self):
        # Two groups parked on each other's barriers: the exact
        # "conflicting barriers" hazard of Section 4.3.
        module = compile_kernel_source(
            """
kernel k() {
    if (tid() < 1) { store(0, 1.0); } else { store(1, 1.0); }
}
"""
        )
        fn = module.function("k")
        from repro.ir import IRBuilder

        b = IRBuilder(fn)
        entry = fn.entry
        b.set_block(entry)
        # join both barriers up front, then wait on different ones per side
        from repro.ir.instructions import Barrier, Instruction, Opcode as Op

        entry.prepend(Instruction(Op.BSSY, operands=[Barrier("x")]))
        entry.prepend(Instruction(Op.BSSY, operands=[Barrier("y")]))
        fn.block("then").prepend(Instruction(Op.BSYNC, operands=[Barrier("x")]))
        fn.block("else").prepend(Instruction(Op.BSYNC, operands=[Barrier("y")]))
        with pytest.raises(DeadlockError):
            GPUMachine(module).launch("k", 2)

    def test_warpsync_converged_passes(self):
        result = run_kernel(
            "kernel k() { warpsync; store(tid(), 1.0); }", "k", n_threads=4
        )
        assert result.memory.load(3) == 1.0

    def test_delay_adds_cycles(self):
        fast = run_kernel("kernel k() { store(tid(), 1.0); }", "k")
        slow = run_kernel("kernel k() { delay(500); store(tid(), 1.0); }", "k")
        assert slow.cycles >= fast.cycles + 500


class TestLaunchValidation:
    def test_launch_needs_kernel(self):
        module = compile_kernel_source("func f(x) { return x; }")
        with pytest.raises(LaunchError):
            GPUMachine(module).launch("f", 32)

    def test_launch_arity_checked(self):
        module = compile_kernel_source("kernel k(a) { store(0, a); }")
        with pytest.raises(LaunchError):
            GPUMachine(module).launch("k", 32, args=())

    def test_launch_positive_threads(self):
        module = compile_kernel_source("kernel k() { store(0, 1.0); }")
        with pytest.raises(LaunchError):
            GPUMachine(module).launch("k", 0)

    def test_runaway_loop_detected(self):
        module = compile_kernel_source(
            "kernel k() { let i = 0; while (1) { i = i + 1; } }"
        )
        with pytest.raises(SimulationError, match="issue slots"):
            GPUMachine(module, max_issues=1000).launch("k", 32)
