"""Barrier-discipline lint tests."""

from repro.core import BarrierNamer, ReconvergenceCompiler, collect_predictions
from repro.core.barrier_lint import (
    SEVERITY_ERROR,
    lint_function,
    lint_module,
)
from repro.core.insertion import insert_speculative_reconvergence
from repro.core.pdom_sync import insert_pdom_sync
from repro.ir import Barrier, Function, Instruction, Opcode, make
from tests.helpers import listing1_module


class TestCleanOutput:
    def test_pipeline_output_is_conflict_free(self):
        for mode in ("baseline", "sr"):
            prog = ReconvergenceCompiler().compile(listing1_module(), mode=mode)
            errors = lint_module(prog.module, errors_only=True)
            assert errors == [], [f.describe() for f in errors]

    def test_workload_pipelines_clean(self):
        from repro.workloads import get_workload

        for name in ("rsbench", "mcb", "funccall"):
            prog = get_workload(name).compile(mode="sr")
            errors = lint_module(prog.module, errors_only=True)
            assert errors == [], (name, [f.describe() for f in errors])

    def test_barrier_free_function_has_no_findings(self):
        fn = Function("f", is_kernel=True)
        fn.new_block("entry").append(Instruction(Opcode.EXIT))
        assert lint_function(fn) == []


class TestHazardDetection:
    def test_orphan_wait_flagged(self):
        fn = Function("f", is_kernel=True)
        block = fn.new_block("entry")
        block.append(make(Opcode.BSYNC, None, Barrier("b0")))
        block.append(Instruction(Opcode.EXIT))
        findings = lint_function(fn)
        assert any(f.kind == "orphan-wait" for f in findings)

    def test_unresolved_conflict_flagged_as_error(self):
        # SR insertion without deconfliction: the Section 4.3 hazard.
        module = listing1_module()
        fn = module.function("k")
        namer = BarrierNamer()
        insert_pdom_sync(fn, namer=namer)
        prediction = collect_predictions(fn)[0]
        insert_speculative_reconvergence(fn, prediction, namer=namer)
        findings = lint_function(fn)
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        assert any(f.kind == "unresolved-conflict" for f in errors)

    def test_deconfliction_silences_the_error(self):
        prog = ReconvergenceCompiler().compile(listing1_module(), mode="sr")
        findings = lint_module(prog.module)
        assert not any(f.kind == "unresolved-conflict" for f in findings)

    def test_finding_describe(self):
        fn = Function("f", is_kernel=True)
        block = fn.new_block("entry")
        block.append(make(Opcode.BSYNC, None, Barrier("b0")))
        block.append(Instruction(Opcode.EXIT))
        finding = lint_function(fn)[0]
        text = finding.describe()
        assert "orphan-wait" in text and "b0" in text
