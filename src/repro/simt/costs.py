"""Instruction latency model.

Latencies are issue-slot costs in cycles, loosely shaped after Volta-class
throughput ratios (ALU 1, SFU transcendentals ~4, DIV ~8, global LD ~20 with
a per-extra-segment coalescing penalty). Absolute values are not calibrated
to silicon — only relative shape matters for reproducing the paper's trends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Opcode

_DEFAULT_LATENCIES = {
    Opcode.CONST: 1,
    Opcode.MOV: 1,
    Opcode.SEL: 1,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 1,
    Opcode.DIV: 8,
    Opcode.REM: 8,
    Opcode.MIN: 1,
    Opcode.MAX: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.NEG: 1,
    Opcode.NOT: 1,
    Opcode.FMA: 1,
    Opcode.SQRT: 4,
    Opcode.SIN: 4,
    Opcode.COS: 4,
    Opcode.EXP: 4,
    Opcode.LOG: 4,
    Opcode.FLOOR: 1,
    Opcode.ABS: 1,
    Opcode.CMPLT: 1,
    Opcode.CMPLE: 1,
    Opcode.CMPGT: 1,
    Opcode.CMPGE: 1,
    Opcode.CMPEQ: 1,
    Opcode.CMPNE: 1,
    Opcode.TID: 1,
    Opcode.LANE: 1,
    Opcode.WARPID: 1,
    Opcode.RAND: 2,
    Opcode.CTAID: 1,
    Opcode.CTADIM: 1,
    Opcode.NCTA: 1,
    Opcode.LD: 20,
    Opcode.ST: 4,
    Opcode.ATOMADD: 20,
    # Shared memory: on-chip, no coalescing model — flat latency well under
    # the global LD/ST/ATOMADD costs.
    Opcode.SHLD: 4,
    Opcode.SHST: 2,
    Opcode.SHATOM: 6,
    Opcode.BRA: 1,
    Opcode.CBR: 1,
    Opcode.RET: 2,
    Opcode.EXIT: 1,
    Opcode.CALL: 2,
    Opcode.BSSY: 1,
    Opcode.BSYNC: 1,
    Opcode.BSYNCSOFT: 1,
    Opcode.BBREAK: 1,
    Opcode.BMOV: 1,
    Opcode.BARCNT: 1,
    Opcode.PREDICT: 0,
    Opcode.WARPSYNC: 1,
    Opcode.CTASYNC: 1,
    Opcode.NOP: 1,
    Opcode.DELAY: 0,  # cost comes from the immediate operand
}


@dataclass
class CostModel:
    """Per-opcode latencies plus the memory coalescing model.

    A memory access by ``n`` active lanes touching ``s`` distinct
    ``segment_words``-sized segments costs ``base + (s - 1) * segment_cost``
    cycles. The base models per-instruction issue + latency exposure (what
    divergent serialization wastes: each extra issue pays it again); the
    per-segment increment models bandwidth, which is conserved no matter
    how the lanes are scheduled. Keeping the increment small relative to
    the base is what lets repacking amortize gather latency, the effect
    that makes memory-bound XSBench profitable on real hardware.
    """

    latencies: dict = field(default_factory=lambda: dict(_DEFAULT_LATENCIES))
    segment_words: int = 8          # 32-byte segments of 4-byte words
    load_segment_cost: int = 2
    store_segment_cost: int = 2

    def latency(self, opcode):
        return self.latencies.get(opcode, 1)

    def memory_cost(self, opcode, addresses):
        """Cycles for a LD/ST/ATOMADD over the active lanes' addresses."""
        base = self.latency(opcode)
        if not addresses:
            return base
        segments = {int(addr) // self.segment_words for addr in addresses}
        per_segment = (
            self.store_segment_cost
            if opcode is Opcode.ST
            else self.load_segment_cost
        )
        return base + (len(segments) - 1) * per_segment

    def scaled(self, factor):
        """A copy with all latencies scaled (for sensitivity studies)."""
        clone = CostModel(
            latencies={
                # Nonzero latencies never scale below one cycle.
                op: (max(1, int(round(lat * factor))) if lat > 0 else 0)
                for op, lat in self.latencies.items()
            },
            segment_words=self.segment_words,
            load_segment_cost=self.load_segment_cost,
            store_segment_cost=self.store_segment_cost,
        )
        return clone


DEFAULT_COST_MODEL = CostModel()
