"""Textual IR parser (inverse of :mod:`repro.ir.printer`).

Grammar (line-oriented)::

    module    := function*
    function  := 'func' '@' NAME '(' params? ')' 'kernel'? '{' block+ '}'
    block     := NAME ':' attrs? NEWLINE instruction*
    instr     := ('%' NAME '=')? OPCODE operands? attrs?
    operand   := '%' NAME | '$' NAME | '^' NAME | '@' NAME | NUMBER
    attrs     := '!{' NAME '=' value (',' NAME '=' value)* '}'
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Barrier,
    BlockRef,
    FuncRef,
    Imm,
    Instruction,
    Opcode,
    Reg,
)

_OPCODES_BY_NAME = {op.value: op for op in Opcode}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+[eE][+-]?\d+|-?\d+)
  | (?P<sigil>[%$^@])
  | (?P<attrs>!\{)
  | (?P<punct>[(){}=:,])
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)


class _Lexer:
    """Tokenizes the IR text, tracking line numbers for error messages."""

    def __init__(self, text):
        self.tokens = []
        line = 1
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ParseError(f"unexpected character {text[pos]!r}", line=line)
            kind = match.lastgroup
            value = match.group()
            line += value.count("\n")
            if kind not in ("ws", "comment"):
                self.tokens.append((kind, value, line))
            pos = match.end()
        self.index = 0

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return ("eof", "", -1)

    def next(self):
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            want = value or kind
            raise ParseError(f"expected {want!r}, got {token[1]!r}", line=token[2])
        return token

    def accept(self, kind, value=None):
        token = self.peek()
        if token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return token
        return None


def _parse_number(text):
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    return float(text)


def _parse_attr_value(lexer):
    token = lexer.next()
    kind, value, line = token
    if kind == "string":
        return value[1:-1].replace('\\"', '"')
    if kind == "number":
        return _parse_number(value)
    if kind == "name" and value in ("true", "false"):
        return value == "true"
    raise ParseError(f"bad attribute value {value!r}", line=line)


def _parse_attrs(lexer):
    """Parse ``!{k=v, ...}`` if present; returns a dict."""
    attrs = {}
    if not lexer.accept("attrs"):
        return attrs
    while True:
        key = lexer.expect("name")[1]
        lexer.expect("punct", "=")
        attrs[key] = _parse_attr_value(lexer)
        if lexer.accept("punct", ","):
            continue
        lexer.expect("punct", "}")
        break
    return attrs


def _parse_operand(lexer):
    token = lexer.next()
    kind, value, line = token
    if kind == "sigil":
        name = lexer.expect("name")[1]
        if value == "%":
            return Reg(name)
        if value == "$":
            return Barrier(name)
        if value == "^":
            return BlockRef(name)
        if value == "@":
            return FuncRef(name)
    if kind == "number":
        return Imm(_parse_number(value))
    raise ParseError(f"bad operand {value!r}", line=line)


def _parse_instruction(lexer):
    dst = None
    if lexer.peek()[:2] == ("sigil", "%"):
        # Could be `%dst = op ...`; registers never begin instructions
        # otherwise, so a leading % always introduces a destination.
        lexer.next()
        dst = Reg(lexer.expect("name")[1])
        lexer.expect("punct", "=")
    token = lexer.expect("name")
    opcode_name = token[1]
    # `bsync.soft` lexes as a single name thanks to '.' in NAME.
    opcode = _OPCODES_BY_NAME.get(opcode_name)
    if opcode is None:
        raise ParseError(f"unknown opcode {opcode_name!r}", line=token[2])
    operands = []
    while lexer.peek()[0] in ("sigil", "number"):
        # `%name =` is the next instruction's destination, not an operand.
        if lexer.peek()[:2] == ("sigil", "%"):
            after = (
                lexer.tokens[lexer.index + 2][:2]
                if lexer.index + 2 < len(lexer.tokens)
                else ("eof", "")
            )
            if after == ("punct", "="):
                break
        operands.append(_parse_operand(lexer))
        if not lexer.accept("punct", ","):
            break
    attrs = _parse_attrs(lexer)
    return Instruction(opcode, dst=dst, operands=operands, attrs=attrs)


def _at_block_header(lexer):
    """A block header is `NAME ':'`."""
    token = lexer.peek()
    if token[0] != "name":
        return False
    nxt = (
        lexer.tokens[lexer.index + 1]
        if lexer.index + 1 < len(lexer.tokens)
        else ("eof", "", -1)
    )
    return nxt[:2] == ("punct", ":")


def _parse_function(lexer):
    lexer.expect("name", "func")
    lexer.expect("sigil", "@")
    name = lexer.expect("name")[1]
    lexer.expect("punct", "(")
    params = []
    while not lexer.accept("punct", ")"):
        lexer.expect("sigil", "%")
        params.append(Reg(lexer.expect("name")[1]))
        lexer.accept("punct", ",")
    is_kernel = lexer.accept("name", "kernel") is not None
    function = Function(name, params=params, is_kernel=is_kernel)
    lexer.expect("punct", "{")
    while not lexer.accept("punct", "}"):
        if not _at_block_header(lexer):
            token = lexer.peek()
            raise ParseError(
                f"expected block header, got {token[1]!r}", line=token[2]
            )
        block_name = lexer.expect("name")[1]
        lexer.expect("punct", ":")
        attrs = _parse_attrs(lexer)
        block = BasicBlock(block_name, attrs=attrs)
        function.add_block(block)
        while lexer.peek()[0] != "eof" and not _at_block_header(lexer):
            if lexer.peek()[:2] == ("punct", "}"):
                break
            block.instructions.append(_parse_instruction(lexer))
    return function


def parse_module(text, name="module"):
    """Parse a full module from IR text."""
    lexer = _Lexer(text)
    module = Module(name)
    while lexer.peek()[0] != "eof":
        module.add(_parse_function(lexer))
    return module


def parse_function(text):
    """Parse a single function from IR text."""
    module = parse_module(text)
    functions = list(module)
    if len(functions) != 1:
        raise ParseError(f"expected exactly one function, got {len(functions)}")
    return functions[0]
