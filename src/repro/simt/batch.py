"""Batched multi-warp segment execution (lockstep epochs).

``GPUMachine.launch`` interleaves live warps round-robin one issue slot
at a time so cross-warp atomics are deterministic. That loop is the last
place the per-slot machine overhead survives after PR 4: the segment
engine only engaged once a single warp remained. This module extends it
to the multi-warp phase without changing a single observable value.

The unit of batched progress is the **lockstep epoch**. One epoch:

1. Every live warp must offer a *forced* pick (counter-independent, see
   ``SchedulerBase.forced_pick``) at the head of a fusable segment with
   no other group inside the segment's run — otherwise the machine falls
   back to one ordinary per-slot round.
2. ``L`` is the minimum segment length over the live warps; every warp
   executes exactly ``L`` slots (longer segments are cut by
   ``DecodedProgram.segment_bounded``). Equal lengths keep every warp's
   issued-slot count aligned with the serial schedule at all times, so
   deadlock/issue-budget errors surface at the identical slot, and the
   shared round-robin counter is advanced by ``consume(L)`` per warp
   exactly as ``L`` singleton picks would have.
3. Segments cannot park, exit, diverge, call, or release barriers
   (``FUSABLE_OPS``), so the only cross-warp channel inside an epoch is
   global memory. When the launch-time classification
   (:func:`repro.analysis.memeffects.classify_launch`) proves the
   kernel's footprints **disjoint**, warps simply run their segments
   back-to-back. When it is **guarded**, each memory-touching burst runs
   optimistically against a :class:`~repro.simt.memory.FootprintMemory`
   and the epoch is rolled back — memory undone, thread state restored
   from checkpoints — if any burst's footprint overlaps an earlier
   burst's (or overflows the footprint cap). Rolled-back warps replay
   their ``L`` slots through the ordinary per-slot ``_step``, preserving
   the reference interleaving bit-for-bit; register-pure bursts commit
   either way since they cannot interact.

Why commit-time accounting: retirement counts, profiler records, warp
cycles, scheduler consumption, and the groups-cache patch all happen
only after a burst is known conflict-free, so a rollback needs to
restore nothing but thread state (registers, RNG, frame position, store
trace length) and memory.

``REPRO_WARP_BATCH=0`` (or :func:`set_warp_batch` /
:func:`warp_batch_disabled`, or ``GPUMachine(warp_batch=False)``)
disables the layer and restores the exact serial path; observability
sinks, metrics, traces, and disabled fastpath/segments disable it
implicitly because no fused segments exist then. Repeated conflicts
(``_MAX_CONFLICT_STREAK`` epochs in a row) switch the batcher off for
the rest of the launch — correctness never depends on the guess.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.analysis.memeffects import classify_launch
from repro.obs.counters import ENGINE_COUNTERS
from repro.obs.recorder import dump_post_mortem
from repro.simt.memory import FootprintMemory, FootprintOverflow
from repro.simt.warp import WARP_SIZE

__all__ = [
    "WarpBatcher",
    "make_batcher",
    "set_warp_batch",
    "warp_batch_disabled",
    "warp_batch_enabled",
]

#: Global default for new machines. Flip with ``set_warp_batch`` or the
#: ``REPRO_WARP_BATCH`` environment variable (0/false/off disables).
WARP_BATCH_ENABLED = os.environ.get("REPRO_WARP_BATCH", "1").lower() not in (
    "0",
    "false",
    "off",
)

#: Consecutive conflicted epochs before the batcher gives up on a launch.
_MAX_CONFLICT_STREAK = 8

#: Footprint cap per guarded epoch (addresses); overflow means rollback.
_FOOTPRINT_LIMIT = 4096


def warp_batch_enabled():
    """The current global warp-batching default."""
    return WARP_BATCH_ENABLED


def set_warp_batch(enabled):
    """Set the global warp-batching default; returns the previous value."""
    global WARP_BATCH_ENABLED
    previous = WARP_BATCH_ENABLED
    WARP_BATCH_ENABLED = bool(enabled)
    return previous


@contextmanager
def warp_batch_disabled():
    """Run a block with the serial multi-warp interleaving (batching off)."""
    previous = set_warp_batch(False)
    try:
        yield
    finally:
        set_warp_batch(previous)


def make_batcher(machine, executor, scheduler, kernel_name, args, n_threads):
    """A :class:`WarpBatcher` for this launch, or None when batching
    cannot engage (knob off, no fused segments available, single warp)."""
    enabled = (
        machine.warp_batch
        if machine.warp_batch is not None
        else WARP_BATCH_ENABLED
    )
    if not enabled or n_threads <= WARP_SIZE:
        return None
    if executor.segment_at is None:
        # Observability sink, metrics, issue trace, fastpath off, or
        # segments off: no fused segments exist, nothing to batch.
        return None
    classification = classify_launch(
        machine.module, kernel_name, tuple(args), n_threads
    )
    guarded = classification != "disjoint"
    if guarded:
        ENGINE_COUNTERS.batch_guarded_launches += 1
    else:
        ENGINE_COUNTERS.batch_disjoint_launches += 1
    recorder = machine._recorder
    if recorder is not None:
        recorder.record("batch-classify", {"classification": classification})
    return WarpBatcher(machine, executor, scheduler, guarded=guarded)


class WarpBatcher:
    """Advances all live warps one lockstep epoch at a time."""

    __slots__ = (
        "machine", "executor", "scheduler", "profiler", "guarded",
        "enabled", "_streak", "_segment_bounded",
    )

    def __init__(self, machine, executor, scheduler, guarded):
        self.machine = machine
        self.executor = executor
        self.scheduler = scheduler
        self.profiler = executor.profiler
        self.guarded = guarded
        self.enabled = True
        self._streak = 0
        self._segment_bounded = executor._decoded.segment_bounded

    # ------------------------------------------------------------------
    def try_epoch(self, live_warps, issues):
        """Run one lockstep epoch across ``live_warps``.

        Returns the updated issue count, or None when the epoch cannot
        engage — the caller then runs one ordinary per-slot round, after
        which conditions may hold again.
        """
        if not self.enabled:
            return None
        executor = self.executor
        scheduler = self.scheduler
        segment_at = executor.segment_at
        program_order = executor.program_order

        plan = []
        length = None
        for warp in live_warps:
            groups = warp.groups_cache
            if groups is None:
                groups = warp.groups()
                warp.groups_cache = groups
            if not groups:
                return None  # needs drain/done/deadlock handling
            pc = scheduler.forced_pick(groups, program_order)
            if pc is None:
                return None
            segment = segment_at(pc)
            if segment is None:
                return None
            if len(groups) > 1 and segment.conflicts(groups):
                return None
            plan.append((warp, groups, pc, segment))
            if length is None or segment.n < length:
                length = segment.n

        total = length * len(plan)
        if issues + total > self.machine.max_issues:
            # Let the per-slot loop raise LaunchError at the exact slot
            # the serial schedule would have.
            return None

        for i, (warp, groups, pc, segment) in enumerate(plan):
            if segment.n > length:
                # Conflict-freedom was proven over the maximal run, so
                # the bounded prefix cannot merge with resident groups.
                plan[i] = (warp, groups, pc,
                           self._segment_bounded(pc, length))

        if self.guarded:
            committed = self._guarded_epoch(plan, length)
        else:
            for warp, groups, pc, segment in plan:
                group = groups[pc]
                cycles = segment.execute(executor, warp, group)
                self._commit(warp, groups, pc, segment, cycles, group)
            committed = True

        profiler = self.profiler
        profiler.batch_epochs += 1
        recorder = self.machine._recorder
        if committed:
            self._streak = 0
            if recorder is not None and recorder.verbose:
                recorder.record(
                    "epoch-commit",
                    {"warps": len(plan), "slots": length},
                )
        else:
            profiler.batch_rollbacks += 1
            self._streak += 1
            if recorder is not None:
                recorder.record(
                    "epoch-rollback",
                    {"warps": len(plan), "slots": length,
                     "streak": self._streak},
                )
            if self._streak >= _MAX_CONFLICT_STREAK:
                # Persistent sharing: stop guessing for this launch.
                self.enabled = False
                ENGINE_COUNTERS.batch_guard_disables += 1
                if recorder is not None:
                    recorder.record(
                        "guard-disable", {"streak": self._streak}
                    )
                    dump_post_mortem(recorder, "guard-disable")
        return issues + total

    # ------------------------------------------------------------------
    def _guarded_epoch(self, plan, length):
        """Optimistic epoch under the write-set guard. Returns True when
        every burst committed, False when the epoch conflicted and the
        memory-touching warps were replayed per-slot instead."""
        executor = self.executor

        # Register-pure bursts touch only thread-private state, so they
        # commit unconditionally, in any order, conflict or not.
        memory_plan = []
        for warp, groups, pc, segment in plan:
            if segment.touches_memory:
                memory_plan.append((warp, groups, pc, segment))
            else:
                group = groups[pc]
                cycles = segment.execute(executor, warp, group)
                self._commit(warp, groups, pc, segment, cycles, group)
        if not memory_plan:
            return True

        guard = FootprintMemory(executor.memory, limit=_FOOTPRINT_LIMIT)
        real = executor.memory
        acc_reads = set()
        acc_writes = set()
        done = []
        restore = []
        conflict = False
        for warp, groups, pc, segment in memory_plan:
            group = groups[pc]
            saved = _checkpoint(group)
            restore.append((group, saved))
            executor.memory = guard
            try:
                cycles = segment.execute(executor, warp, group)
                overflow = False
            except FootprintOverflow:
                overflow = True
            finally:
                executor.memory = real
            reads, writes = guard.take()
            if (
                overflow
                or not writes.isdisjoint(acc_writes)
                or not writes.isdisjoint(acc_reads)
                or not reads.isdisjoint(acc_writes)
            ):
                conflict = True
                break
            acc_reads |= reads
            acc_writes |= writes
            done.append((warp, groups, pc, segment, cycles, group))

        profiler = self.profiler
        if guard.peak > profiler.batch_peak_footprint:
            profiler.batch_peak_footprint = guard.peak

        if not conflict:
            guard.commit()
            for warp, groups, pc, segment, cycles, group in done:
                self._commit(warp, groups, pc, segment, cycles, group)
            return True

        # Roll back every optimistic burst: memory first (newest write
        # undone first), then thread state. Nothing was committed for
        # these warps, so accounting needs no repair.
        guard.rollback()
        for group, saved in restore:
            _restore(group, saved)

        # Replay the memory-touching warps per-slot in rotation order —
        # the exact reference interleaving among the warps that can
        # interact. Every pick inside the bursts is forced (plan checked
        # that over the maximal runs), so _step retraces them verbatim.
        machine = self.machine
        scheduler = self.scheduler
        for _round in range(length):
            for warp, _groups, _pc, _segment in memory_plan:
                machine._step(warp, executor, scheduler)
        profiler.batch_replayed_slots += length * len(memory_plan)
        return False

    # ------------------------------------------------------------------
    def _commit(self, warp, groups, pc, segment, cycles, group):
        """Post-burst accounting, mirroring ``GPUMachine._run_exclusive``:
        retire, profile, charge cycles, consume scheduler slots, and
        patch the issued bucket over to ``end_pc``."""
        n = segment.n
        self.scheduler.consume(n)
        for thread in group:
            thread.retired += n
        self.profiler.record_segment(warp.warp_id, pc, segment, len(group),
                                     cycles)
        warp.cycles += cycles
        del groups[pc]
        end_pc = segment.end_pc
        resident = groups.get(end_pc)
        if resident is None:
            groups[end_pc] = group
        else:
            resident.extend(group)
            resident.sort(key=lambda thread: thread.lane)
        warp.groups_cache = groups


def _checkpoint(group):
    """Thread state a rolled-back burst must restore: frame position,
    registers, RNG stream, and store-trace length. Fusable ops cannot
    push/pop frames, park, or exit, so nothing else can change."""
    saved = []
    for thread in group:
        frame = thread.frames[-1]
        saved.append((
            frame.block_name,
            frame.index,
            frame.regs[:],
            thread.rng.state,
            len(thread.store_trace),
        ))
    return saved


def _restore(group, saved):
    for thread, (block_name, index, regs, rng_state, trace_len) in zip(
        group, saved
    ):
        frame = thread.frames[-1]
        frame.block_name = block_name
        frame.index = index
        frame.regs[:] = regs
        thread.rng.state = rng_state
        del thread.store_trace[trace_len:]
