"""Common-function-call microbenchmark (Figure 2c, Section 4.4).

"We did not find any applications that exhibit the common function call
pattern ... instead, we validated this pattern using microbenchmarks."

Both sides of a divergent branch call the same expensive device function
``shade``; post-dominator analysis cannot reconverge at the shared body
because the calls come from different program locations. ``predict @shade``
makes threads collect at the function entry so the body runs convergently
— with no prolog/epilog cost, since reconverging inside the callee
"does not conflict with the compiler inserted reconvergence point".
"""

from __future__ import annotations

from repro.workloads.base import Workload, register, repeat_lines


@register
class MicroFuncCall(Workload):
    name = "funccall"
    description = (
        "Microbenchmark: common function called from both sides of a "
        "divergent branch (interprocedural Speculative Reconvergence)"
    )
    pattern = "func-call"
    paper_note = "Validates Figure 2(c); no applications exhibited it."
    kernel_name = "funccall_micro"
    sr_threshold = None
    defaults = {
        "iterations": 24,
        "branch_prob": 0.5,
        "shade_cost": 40,
        "else_extra": 4,
    }

    def source(self):
        p = self.params
        body = repeat_lines("x = fma(x, 1.0000002, 0.3);", p["shade_cost"], indent=4)
        else_extra = repeat_lines("acc = acc * 0.9999;", p["else_extra"])
        return f"""
func shade(x) {{
{body}
    return x;
}}

kernel funccall_micro(n_iters, results) {{
    let t = tid();
    let acc = 0.0;
    predict @shade;
    for i in 0..n_iters {{
        let u = hash01(t * 47.0 + i * 7.0);
        if (u < {p['branch_prob']}) {{
            acc = acc + @shade(acc + 1.0);
        }} else {{
{else_extra}
            acc = acc + @shade(acc + 2.0);
        }}
    }}
    store(results + t, acc);
}}
"""

    def setup(self, memory):
        results = memory.alloc(self.n_threads, name="results")
        return (self.params["iterations"], results)

    def shade_efficiency(self, launch):
        """SIMT efficiency inside the shared function body (the metric the
        microbenchmark validates)."""
        keys = [
            key
            for key in launch.profiler.block_profiles
            if key[0] == "shade"
        ]
        return launch.profiler.region_efficiency(keys)
