"""Recursive-descent parser for the textual kernel language.

Grammar sketch::

    program    := function*
    function   := ('kernel' | 'func') NAME '(' params? ')' block
    block      := '{' statement* '}'
    statement  := 'let' NAME '=' expr ';'
                | NAME '=' expr ';'
                | 'store' '(' expr ',' expr ')' ';'
                | 'if' '(' expr ')' block ('else' block)?
                | 'while' '(' expr ')' block
                | 'for' NAME 'in' expr '..' expr block
                | 'break' ';'  |  'continue' ';'
                | 'return' expr? ';'
                | 'predict' (NAME | @NAME) (',' NUMBER)? ';'
                | 'label' NAME ':' statement
                | 'warpsync' ';'
                | 'ctasync' ';'
                | 'delay' '(' NUMBER ')' ';'
                | expr ';'
    expr       := or_expr; standard precedence with 'and'/'or', comparisons,
                  additive, multiplicative, unary, call/parenthesized atoms.

Example::

    kernel axpy(n) {
        let i = tid();
        if (i < n) { store(i, ld(i) * 2.0 + 1.0); }
    }
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.lexer import tokenize

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, offset=0):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self):
        token = self.peek()
        if token.kind != "eof":
            self.index += 1
        return token

    def accept(self, kind, text=None):
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind, text=None):
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, got {token.text!r}", line=token.line
            )
        return token

    # -- declarations ---------------------------------------------------
    def parse_program(self):
        functions = []
        while self.peek().kind != "eof":
            functions.append(self.parse_function())
        return A.Program(functions=functions)

    def parse_function(self):
        keyword = self.next()
        if keyword.kind != "keyword" or keyword.text not in ("kernel", "func"):
            raise ParseError(
                f"expected 'kernel' or 'func', got {keyword.text!r}",
                line=keyword.line,
            )
        name = self.expect("name").text
        self.expect("op", "(")
        params = []
        while not self.accept("op", ")"):
            params.append(self.expect("name").text)
            self.accept("op", ",")
        body = self.parse_block()
        return A.FuncDecl(
            name=name, params=params, body=body, is_kernel=keyword.text == "kernel"
        )

    # -- statements -----------------------------------------------------
    def parse_block(self):
        self.expect("op", "{")
        statements = []
        while not self.accept("op", "}"):
            statements.append(self.parse_statement())
        return A.Block(statements)

    def parse_statement(self):
        token = self.peek()
        if token.kind == "keyword":
            handler = getattr(self, f"_stmt_{token.text}", None)
            if handler is not None:
                return handler()
        if token.kind == "name" and self.peek(1).text == "=" and self.peek(1).kind == "op":
            name = self.next().text
            self.expect("op", "=")
            value = self.parse_expr()
            self.expect("op", ";")
            return A.Assign(name, value)
        expr = self.parse_expr()
        self.expect("op", ";")
        return A.ExprStmt(expr)

    def _stmt_let(self):
        self.next()
        name = self.expect("name").text
        self.expect("op", "=")
        value = self.parse_expr()
        self.expect("op", ";")
        return A.Let(name, value)

    def _stmt_store(self):
        self.next()
        self.expect("op", "(")
        address = self.parse_expr()
        self.expect("op", ",")
        value = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return A.Store(address, value)

    def _stmt_if(self):
        self.next()
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self.parse_block()
        return A.If(cond, then_body, else_body)

    def _stmt_while(self):
        self.next()
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        return A.While(cond, self.parse_block())

    def _stmt_for(self):
        self.next()
        var = self.expect("name").text
        self.expect("keyword", "in")
        start = self.parse_expr()
        self.expect("op", "..")
        stop = self.parse_expr()
        return A.For(var, start, stop, self.parse_block())

    def _stmt_break(self):
        self.next()
        self.expect("op", ";")
        return A.Break()

    def _stmt_continue(self):
        self.next()
        self.expect("op", ";")
        return A.Continue()

    def _stmt_return(self):
        self.next()
        if self.accept("op", ";"):
            return A.Return(None)
        value = self.parse_expr()
        self.expect("op", ";")
        return A.Return(value)

    def _stmt_predict(self):
        self.next()
        token = self.next()
        if token.kind == "at":
            target = token.text  # "@foo"
        elif token.kind == "name":
            target = token.text
        else:
            raise ParseError(
                f"predict needs a label or @function, got {token.text!r}",
                line=token.line,
            )
        threshold = None
        if self.accept("op", ","):
            threshold = int(self.expect("number").text)
        self.expect("op", ";")
        return A.Predict(target, threshold)

    def _stmt_label(self):
        self.next()
        name = self.expect("name").text
        self.expect("op", ":")
        return A.Label(name, self.parse_statement())

    def _stmt_warpsync(self):
        self.next()
        self.expect("op", ";")
        return A.Warpsync()

    def _stmt_ctasync(self):
        self.next()
        self.expect("op", ";")
        return A.Ctasync()

    def _stmt_delay(self):
        self.next()
        self.expect("op", "(")
        cycles = int(float(self.expect("number").text))
        self.expect("op", ")")
        self.expect("op", ";")
        return A.DelayStmt(cycles)

    # -- expressions ----------------------------------------------------
    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        node = self._parse_and()
        while self.accept("keyword", "or"):
            node = A.Bin("or", node, self._parse_and())
        return node

    def _parse_and(self):
        node = self._parse_cmp()
        while self.accept("keyword", "and"):
            node = A.Bin("and", node, self._parse_cmp())
        return node

    def _parse_cmp(self):
        node = self._parse_add()
        token = self.peek()
        if token.kind == "op" and token.text in _COMPARISONS:
            self.next()
            node = A.Bin(token.text, node, self._parse_add())
        return node

    def _parse_add(self):
        node = self._parse_mul()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.next()
                node = A.Bin(token.text, node, self._parse_mul())
            else:
                return node

    def _parse_mul(self):
        node = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self.next()
                node = A.Bin(token.text, node, self._parse_unary())
            else:
                return node

    def _parse_unary(self):
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!"):
            self.next()
            return A.Un(token.text, self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self):
        token = self.next()
        if token.kind == "number":
            text = token.text
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return A.Num(value)
        if token.kind == "at":
            # @foo(args): explicit user-function call.
            name = token.text
            self.expect("op", "(")
            return A.CallExpr(name, self._parse_args())
        if token.kind == "name":
            if self.accept("op", "("):
                return A.CallExpr(token.text, self._parse_args())
            return A.Var(token.text)
        if token.kind == "op" and token.text == "(":
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        raise ParseError(f"unexpected token {token.text!r}", line=token.line)

    def _parse_args(self):
        args = []
        while not self.accept("op", ")"):
            args.append(self.parse_expr())
            self.accept("op", ",")
        return args


def parse_kernel_source(source):
    """Parse kernel-language source text into an AST Program."""
    return _Parser(tokenize(source)).parse_program()


def compile_kernel_source(source, module_name="program"):
    """Parse and lower kernel-language source to an IR Module."""
    from repro.frontend.lower import lower_program

    return lower_program(parse_kernel_source(source), module_name=module_name)
