"""The compiler pipeline tying Section 4 together.

:class:`ReconvergenceCompiler` is a thin façade over the pass manager
(:mod:`repro.core.passmgr`): it resolves the compile mode to a declarative
pipeline description, builds the :class:`~repro.core.passmgr.PassContext`,
and runs a :class:`~repro.core.passmgr.PassManager` over a clone of the
input module. The modes:

* ``baseline`` — PDOM synchronization only; predictions are ignored
  (what the production compiler does today, Figure 1a).
* ``sr`` — PDOM sync + user-guided Speculative Reconvergence with
  deconfliction (the paper's main configuration, dynamic deconfliction).
* ``auto`` — PDOM sync + heuristically detected predictions (Section 4.5).
* ``none`` — no synchronization at all; convergence comes only from the
  scheduler (a stress baseline used in tests).

Every mode is just a pipeline string (see :data:`MODE_PIPELINES`); an
explicit ``pipeline=`` argument — or the ``REPRO_PIPELINE`` environment
variable — replaces the mode's description entirely, so arbitrary pass
orders can be compiled (and simulated) without code changes.

Soft barriers are configured through prediction thresholds
(``Predict`` attrs or the ``threshold`` compile argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deconfliction import DYNAMIC
from repro.core.passmgr import (
    AnalysisManager,
    PassContext,
    PassManager,
    default_pipeline,
    format_pipeline,
    parse_pipeline,
)
from repro.core.primitives import BarrierNamer
from repro.errors import TransformError
from repro.obs.spans import SpanRecorder

MODES = ("baseline", "sr", "auto", "none")

#: The registered pipeline description for each compile mode (before the
#: optional ``optimize`` prefix and ``allocate``/``verify`` suffix).
MODE_PIPELINES = {
    "baseline": ("pdom-sync", "strip-directives", "mem-effects"),
    "sr": (
        "collect-predictions",
        "pdom-sync",
        "sr-insert",
        "deconflict",
        "strip-directives",
        "mem-effects",
    ),
    "auto": (
        "autodetect",
        "collect-predictions",
        "pdom-sync",
        "sr-insert",
        "deconflict",
        "strip-directives",
        "mem-effects",
    ),
    "none": ("strip-directives", "mem-effects"),
}


def pipeline_for_mode(mode, optimize=False, allocate=True, verify=True):
    """The textual pipeline a compile mode resolves to."""
    if mode not in MODE_PIPELINES:
        raise TransformError(f"unknown compile mode {mode!r}; use {MODES}")
    parts = []
    if optimize:
        parts.append("optimize")
    parts.extend(MODE_PIPELINES[mode])
    if allocate:
        parts.append("allocate")
    if verify:
        parts.append("verify")
    return ",".join(parts)


@dataclass
class CompileReport:
    """Everything the pipeline did, for inspection and tests."""

    mode: str
    pipeline: str = ""                                    # canonical description
    predictions: list = field(default_factory=list)       # Prediction records
    pdom_reports: dict = field(default_factory=dict)      # fn -> PdomSyncReport
    sr_reports: list = field(default_factory=list)        # InsertionReports
    deconfliction_reports: list = field(default_factory=list)
    allocation: dict = field(default_factory=dict)        # fn -> {abstract: phys}
    auto_candidates: list = field(default_factory=list)
    opt_report: object = None                             # OptReport if optimize=True
    spans: list = field(default_factory=list)             # obs.spans.Span per pass
    analysis_stats: dict = field(default_factory=dict)    # AnalysisManager.stats()
    pass_stats: dict = field(default_factory=dict)        # per-pass extras
    memory_effects: dict = field(default_factory=dict)    # kernel -> mem summary

    def describe(self, with_spans=False):
        lines = [f"mode={self.mode}"]
        if self.pipeline:
            lines.append(f"  pipeline: {self.pipeline}")
        for candidate in self.auto_candidates:
            lines.append("  auto: " + candidate.describe())
        for prediction in self.predictions:
            lines.append("  " + prediction.describe())
        for name in sorted(self.pdom_reports):
            lines.append(f"  pdom@{name}: " + self.pdom_reports[name].describe())
        for report in self.sr_reports:
            lines.append("  " + report.describe())
        for report in self.deconfliction_reports:
            lines.append("  deconflict: " + report.describe())
        if with_spans:
            for span in self.spans:
                lines.append("  span: " + span.describe())
        return "\n".join(lines)


@dataclass
class CompiledProgram:
    """A compiled module plus its report; ready for the simulator."""

    module: object
    report: CompileReport


class ReconvergenceCompiler:
    """Compiles modules with configurable reconvergence strategies.

    ``pipeline`` (constructor or :meth:`compile` argument) overrides the
    mode's registered pipeline with an arbitrary description; the
    ``REPRO_PIPELINE`` environment variable does the same process-wide.
    ``verify_each`` / ``print_after_all`` / ``stop_after`` forward to
    :class:`~repro.core.passmgr.PassManager` (each also has an
    environment default — see that class).
    """

    def __init__(
        self,
        deconfliction=DYNAMIC,
        assume_all_divergent=False,
        allocate=True,
        verify=True,
        optimize=False,
        pipeline=None,
        verify_each=None,
        print_after_all=None,
        stop_after=None,
    ):
        self.deconfliction = deconfliction
        self.assume_all_divergent = assume_all_divergent
        self.allocate = allocate
        self.verify = verify
        # Run the classic optimization pipeline (constfold/DCE/simplify-cfg)
        # before synchronization insertion; labels and predict directives
        # are anchors those passes preserve.
        self.optimize = optimize
        self.pipeline = pipeline
        self.verify_each = verify_each
        self.print_after_all = print_after_all
        self.stop_after = stop_after

    # ------------------------------------------------------------------
    def resolve_pipeline(self, mode="sr", pipeline=None):
        """The parsed pipeline a compile call would run.

        Priority: explicit ``pipeline`` argument, then the compiler's
        ``pipeline``, then ``REPRO_PIPELINE``, then the mode's registered
        description.
        """
        if mode not in MODES:
            raise TransformError(f"unknown compile mode {mode!r}; use {MODES}")
        description = pipeline or self.pipeline or default_pipeline()
        if description is None:
            description = pipeline_for_mode(
                mode,
                optimize=self.optimize,
                allocate=self.allocate,
                verify=self.verify,
            )
        return parse_pipeline(description)

    def compile(self, module, mode="sr", threshold=None, auto_options=None,
                pipeline=None):
        """Compile a clone of ``module``; the input is never mutated."""
        specs = self.resolve_pipeline(mode, pipeline)
        clone = module.clone()
        report = CompileReport(mode=mode, pipeline=format_pipeline(specs))
        # Every pass runs under a timed span recording wall time and the
        # module's blocks/instructions/barriers before -> after.
        spans = SpanRecorder()
        ctx = PassContext(
            report=report,
            namer=BarrierNamer(),
            analyses=AnalysisManager(clone, spans=spans),
            spans=spans,
            mode=mode,
            threshold=threshold,
            auto_options=auto_options,
            deconfliction=self.deconfliction,
            assume_all_divergent=self.assume_all_divergent,
        )
        manager = PassManager(
            specs,
            verify_each=self.verify_each,
            print_after_all=self.print_after_all,
            stop_after=self.stop_after,
        )
        manager.run(clone, ctx)
        report.spans = spans.spans
        report.analysis_stats = ctx.analyses.stats()
        return CompiledProgram(module=clone, report=report)


def compile_baseline(module, **kwargs):
    """Convenience: PDOM-only compile."""
    return ReconvergenceCompiler(**kwargs).compile(module, mode="baseline")


def compile_sr(module, threshold=None, deconfliction=DYNAMIC, **kwargs):
    """Convenience: user-guided Speculative Reconvergence compile."""
    compiler = ReconvergenceCompiler(deconfliction=deconfliction, **kwargs)
    return compiler.compile(module, mode="sr", threshold=threshold)
