"""Interprocedural SR (Section 4.4): insertion, wrappers, end-to-end."""

import pytest

from repro.core import (
    ReconvergenceCompiler,
    collect_predictions,
    insert_interprocedural_sr,
    make_wrapper,
)
from repro.errors import TransformError
from repro.frontend import compile_kernel_source
from repro.ir import Opcode, verify_module
from repro.simt import GPUMachine

SRC = """
func shade(x) {
    x = fma(x, 1.01, 0.5);
    x = fma(x, 1.01, 0.5);
    x = fma(x, 1.01, 0.5);
    x = fma(x, 1.01, 0.5);
    return x;
}

kernel k(n) {
    let acc = 0.0;
    let t = tid();
    predict @shade;
    for i in 0..n {
        if (hash01(t * 3.0 + i) < 0.5) {
            acc = acc + @shade(acc);
        } else {
            acc = acc * 0.99;
            acc = acc + @shade(acc + 1.0);
        }
    }
    store(t, acc);
}
"""


class TestInsertion:
    def _inserted(self):
        module = compile_kernel_source(SRC)
        fn = module.function("k")
        prediction = collect_predictions(fn)[0]
        assert prediction.is_interprocedural
        report = insert_interprocedural_sr(module, fn, prediction)
        return module, report

    def test_wait_and_rejoin_at_callee_entry(self):
        module, report = self._inserted()
        entry = module.function("shade").entry
        assert entry.instructions[0].opcode is Opcode.BSYNC
        assert entry.instructions[1].opcode is Opcode.BSSY  # rejoin

    def test_join_in_caller(self):
        module, report = self._inserted()
        entry = module.function("k").entry
        joins = [i for i in entry if i.opcode is Opcode.BSSY]
        assert len(joins) == 2  # barrier + exit barrier

    def test_cancels_on_region_exit(self):
        module, report = self._inserted()
        assert report.cancel_blocks
        fn = module.function("k")
        for name in report.cancel_blocks:
            assert any(i.opcode is Opcode.BBREAK for i in fn.block(name))

    def test_region_covers_call_sites(self):
        module, report = self._inserted()
        fn = module.function("k")
        call_blocks = {
            block.name
            for block, _, instr in fn.instructions()
            if instr.opcode is Opcode.CALL
        }
        assert call_blocks <= report.region_blocks

    def test_no_call_sites_rejected(self):
        module = compile_kernel_source(
            "func f(x) { return x; }\nkernel k() { predict @f; store(0, 1.0); }"
        )
        fn = module.function("k")
        prediction = collect_predictions(fn)[0]
        with pytest.raises(TransformError, match="no call sites"):
            insert_interprocedural_sr(module, fn, prediction)


class TestEndToEnd:
    def test_results_identical_and_shade_converges(self):
        module = compile_kernel_source(SRC)
        baseline = ReconvergenceCompiler().compile(module, mode="baseline")
        optimized = ReconvergenceCompiler().compile(module, mode="sr")
        base = GPUMachine(baseline.module).launch("k", 32, args=(12,))
        opt = GPUMachine(optimized.module).launch("k", 32, args=(12,))
        assert base.memory.snapshot() == opt.memory.snapshot()

        def shade_eff(launch):
            keys = [k for k in launch.profiler.block_profiles if k[0] == "shade"]
            return launch.profiler.region_efficiency(keys)

        assert shade_eff(opt) > shade_eff(base)
        assert shade_eff(opt) > 0.9

    def test_compiled_module_verifies(self):
        module = compile_kernel_source(SRC)
        optimized = ReconvergenceCompiler().compile(module, mode="sr")
        assert verify_module(optimized.module)


class TestWrapper:
    def test_wrapper_redirects_calls(self):
        module = compile_kernel_source(SRC)
        wrapper = make_wrapper(module, "shade")
        fn = module.function("k")
        callees = {
            instr.operands[0].name
            for _, _, instr in fn.instructions()
            if instr.opcode is Opcode.CALL
        }
        assert callees == {wrapper.name}

    def test_wrapper_preserves_results(self):
        module = compile_kernel_source(SRC)
        plain = ReconvergenceCompiler().compile(module, mode="baseline")
        wrapped_module = compile_kernel_source(SRC)
        make_wrapper(wrapped_module, "shade")
        wrapped = ReconvergenceCompiler().compile(wrapped_module, mode="baseline")
        a = GPUMachine(plain.module).launch("k", 32, args=(6,))
        b = GPUMachine(wrapped.module).launch("k", 32, args=(6,))
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_wrapper_name_collision_rejected(self):
        module = compile_kernel_source(SRC)
        make_wrapper(module, "shade")
        with pytest.raises(TransformError):
            make_wrapper(module, "shade")

    def test_selective_redirect(self):
        module = compile_kernel_source(SRC)
        make_wrapper(module, "shade", redirect_in=[])
        fn = module.function("k")
        callees = {
            instr.operands[0].name
            for _, _, instr in fn.instructions()
            if instr.opcode is Opcode.CALL
        }
        assert callees == {"shade"}
