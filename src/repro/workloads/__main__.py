"""CLI: run a single workload. ``python -m repro.workloads rsbench``.

Prints baseline-vs-SR metrics (or a full threshold sweep with --sweep);
``--list`` shows the registry with each workload's pattern and the
threshold its "user" picked.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.report import format_table
from repro.workloads.base import get_workload, workload_names, REGISTRY


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.workloads")
    parser.add_argument("workload", nargs="?", help="workload name")
    parser.add_argument("--list", action="store_true", help="list workloads")
    parser.add_argument(
        "--mode", default="sr", choices=("baseline", "sr", "auto", "none")
    )
    parser.add_argument("--threshold", type=int, default=None)
    parser.add_argument("--sweep", action="store_true", help="threshold sweep")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument("--scheduler", default="convergence")
    args = parser.parse_args(argv)

    if args.list or not args.workload:
        rows = [
            (name, cls.pattern, cls.sr_threshold or "hard", cls.description)
            for name, cls in sorted(REGISTRY.items())
        ]
        print(format_table(
            ["name", "pattern", "threshold", "description"], rows,
            title="Registered workloads",
        ))
        return 0

    if args.workload not in workload_names():
        print(f"unknown workload {args.workload!r}; try --list", file=sys.stderr)
        return 1
    workload = get_workload(args.workload)

    baseline = workload.run(mode="baseline", seed=args.seed, scheduler=args.scheduler)
    print(f"baseline: eff {baseline.simt_efficiency:.1%}, cycles {baseline.cycles}")

    if args.sweep:
        rows = []
        for k in (2, 4, 8, 12, 16, 20, 24, 28, None):
            result = workload.run(mode="sr", threshold=k, seed=args.seed)
            rows.append((
                "hard" if k is None else k,
                result.simt_efficiency,
                result.cycles,
                f"{baseline.cycles / result.cycles:.2f}x",
            ))
        print(format_table(
            ["threshold", "SIMT efficiency", "cycles", "speedup"], rows
        ))
        return 0

    threshold = args.threshold if args.threshold is not None else "default"
    result = workload.run(
        mode=args.mode, threshold=threshold, seed=args.seed,
        scheduler=args.scheduler,
    )
    print(
        f"{args.mode:8s}: eff {result.simt_efficiency:.1%}, "
        f"cycles {result.cycles}, speedup "
        f"{baseline.cycles / result.cycles:.2f}x "
        f"(threshold {result.threshold})"
    )
    match = (
        baseline.checksum == result.checksum
        if workload.deterministic_memory
        else abs(baseline.checksum - result.checksum) < 1e-2
    )
    print(f"results {'match' if match else 'MISMATCH'} the baseline checksum")
    return 0


if __name__ == "__main__":
    sys.exit(main())
