"""srkc and trace CLI driver tests."""

import json

import pytest

from repro.tools.srkc import build_parser, main
from repro.tools.trace import main as trace_main

KERNEL = """
kernel axpy(n) {
    let i = tid();
    if (i < n) {
        store(100 + i, i * 2.0 + 1.0);
    }
}
"""

DIVERGENT = """
kernel d() {
    let acc = 0.0;
    let t = tid();
    predict L1;
    for i in 0..16 {
        if (hash01(t * 9.0 + i) < 0.2) {
            label L1: acc = acc + 1.0;
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
            acc = fma(acc, 0.99, 0.5); acc = fma(acc, 0.99, 0.5);
        }
    }
    store(t, acc);
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "axpy.srk"
    path.write_text(KERNEL)
    return str(path)


@pytest.fixture
def divergent_file(tmp_path):
    path = tmp_path / "d.srk"
    path.write_text(DIVERGENT)
    return str(path)


class TestCLI:
    def test_compile_only(self, kernel_file, capsys):
        assert main([kernel_file]) == 0
        assert capsys.readouterr().out == ""

    def test_emit_ir(self, kernel_file, capsys):
        main([kernel_file, "--emit-ir"])
        out = capsys.readouterr().out
        assert "func @axpy" in out and "kernel" in out

    def test_run_with_args(self, kernel_file, capsys):
        assert main([kernel_file, "--run", "--args", "8", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "SIMT efficiency" in out

    def test_dump_memory(self, kernel_file, capsys):
        main([kernel_file, "--run", "--args", "4", "--dump-memory"])
        out = capsys.readouterr().out
        assert "mem[100]" in out and "mem[103]" in out

    def test_compare_baseline(self, divergent_file, capsys):
        main([divergent_file, "--run", "--compare-baseline", "--threshold", "8"])
        out = capsys.readouterr().out
        assert "[sr]" in out and "[baseline]" in out and "speedup" in out

    def test_report(self, divergent_file, capsys):
        main([divergent_file, "--report"])
        out = capsys.readouterr().out
        assert "Predict" in out

    def test_optimize_flag(self, divergent_file, capsys):
        main([divergent_file, "--report", "--optimize"])
        out = capsys.readouterr().out
        assert "opt:" in out

    def test_mode_choices(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["x.srk", "--mode", "hyperdrive"])

    def test_float_args(self, tmp_path, capsys):
        path = tmp_path / "f.srk"
        path.write_text("kernel f(x) { store(tid(), x * 2.0); }")
        main([str(path), "--run", "--args", "1.5", "--dump-memory", "--threads", "1"])
        out = capsys.readouterr().out
        assert "3.0" in out

    def test_example_kernels_compile_and_run(self, capsys):
        for path, args in (
            ("examples/kernels/iteration_delay.srk", ["--args", "16"]),
            ("examples/kernels/loop_merge.srk", ["--args", "64"]),
        ):
            assert main([path, "--run"] + args) == 0


class TestTraceCLI:
    def test_list(self, capsys):
        assert trace_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "funccall" in out and "mcb" in out

    def test_requires_exactly_one_target(self, divergent_file):
        with pytest.raises(SystemExit):
            trace_main([])
        with pytest.raises(SystemExit):
            trace_main(["funccall", "--source", divergent_file])

    def test_source_summary_and_spans(self, divergent_file, capsys):
        assert trace_main(
            ["--source", divergent_file, "--summary", "--spans"]
        ) == 0
        out = capsys.readouterr().out
        assert "SIMT efficiency" in out
        assert "Cycle attribution" in out
        assert "barrier_wait" in out
        assert "pdom-sync" in out

    def test_workload_export_is_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert trace_main(["funccall", "-o", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {0, 1}  # compiler spans and simulator events
        assert all("name" in e and "ph" in e for e in events)
        names = {e["name"] for e in events if e["pid"] == 0}
        assert "pdom-sync" in names

    def test_timeline_output(self, divergent_file, capsys):
        assert trace_main(
            ["--source", divergent_file, "--timeline", "--width", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "T00 |" in out and "cycles" in out

    def test_unknown_workload_errors(self):
        with pytest.raises(Exception):
            trace_main(["no-such-workload"])


class TestOptCLI:
    """python -m repro.tools.opt: pipelines over textual IR."""

    def test_list_passes(self, capsys):
        from repro.tools.opt import main as opt_main

        assert opt_main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines == sorted(lines)
        assert any(line.startswith("pdom-sync") for line in lines)
        assert any(line.startswith("deconflict") for line in lines)

    def test_srk_input_mode_pipeline(self, divergent_file, capsys):
        from repro.tools.opt import main as opt_main

        assert opt_main([divergent_file, "--mode", "sr"]) == 0
        out = capsys.readouterr().out
        assert "func @d" in out
        assert "bssy" in out  # barriers inserted

    def test_textual_ir_round_trip(self, divergent_file, tmp_path, capsys):
        from repro.tools.opt import main as opt_main

        ir_path = tmp_path / "d.ir"
        assert opt_main(
            [divergent_file, "--pipeline", "strip-directives",
             "-o", str(ir_path)]
        ) == 0
        assert opt_main(
            [str(ir_path), "--pipeline", "pdom-sync,allocate,verify",
             "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "pipeline: pdom-sync,allocate,verify" in out
        assert "span: pdom-sync" in out
        assert "analysis cache:" in out

    def test_record_and_bisect(self, divergent_file, tmp_path, capsys):
        from repro.tools.opt import main as opt_main

        trace_path = tmp_path / "trace.json"
        assert opt_main(
            [divergent_file, "--record-trace", str(trace_path)]
        ) == 0
        assert opt_main([divergent_file, "--bisect", str(trace_path)]) == 0
        assert "agree" in capsys.readouterr().out
        altered = (
            "collect-predictions,pdom-sync,sr-insert,deconflict[static],"
            "strip-directives,allocate,verify"
        )
        assert opt_main(
            [divergent_file, "--pipeline", altered,
             "--bisect", str(trace_path)]
        ) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_stop_after_and_report(self, divergent_file, capsys):
        from repro.tools.opt import main as opt_main

        assert opt_main(
            [divergent_file, "--stop-after", "pdom-sync", "--report",
             "--emit-ir"]
        ) == 0
        out = capsys.readouterr().out
        assert "predict" in out  # directives still present mid-pipeline
        assert "pipeline:" in out

    def test_bad_pipeline_errors(self, divergent_file, capsys):
        from repro.tools.opt import main as opt_main

        assert opt_main(
            [divergent_file, "--pipeline", "no-such-pass"]
        ) == 1
        assert "unknown pass" in capsys.readouterr().err


class TestHarnessCLIFlags:
    def test_list_passes(self, capsys):
        from repro.harness.__main__ import main as harness_main

        assert harness_main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "pdom-sync" in out and "allocate" in out

    def test_pipeline_sets_env(self, monkeypatch):
        from repro.harness.__main__ import main as harness_main

        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        # A bad description fails fast before any figure runs.
        with pytest.raises(Exception):
            harness_main(["--pipeline", "no-such-pass", "fig1"])
        assert harness_main(["--pipeline", "strip-directives,verify",
                             "--list-passes"]) == 0
