"""Round-trip and error tests for the IR text format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.ir import (
    Barrier,
    Function,
    Imm,
    Instruction,
    Module,
    Opcode,
    Reg,
    format_instruction,
    format_module,
    make,
    parse_function,
    parse_module,
)
from tests.helpers import listing1_module


def roundtrip(module):
    text = format_module(module)
    reparsed = parse_module(text)
    assert format_module(reparsed) == text
    return reparsed


class TestPrinter:
    def test_instruction_with_dst(self):
        text = format_instruction(make(Opcode.ADD, Reg("d"), Reg("a"), Imm(1)))
        assert text == "%d = add %a, 1"

    def test_instruction_attrs_printed(self):
        text = format_instruction(
            make(Opcode.BSSY, None, Barrier("b0"), role="join", origin="sr")
        )
        assert '!{role="join", origin="sr"}' in text

    def test_float_immediates_keep_point(self):
        text = format_instruction(make(Opcode.CONST, Reg("c"), Imm(1.5)))
        assert "1.5" in text

    def test_negative_immediate(self):
        text = format_instruction(make(Opcode.CONST, Reg("c"), Imm(-3)))
        assert "-3" in text


class TestRoundTrip:
    def test_listing1_roundtrip(self):
        roundtrip(listing1_module())

    def test_kernel_flag_preserved(self):
        module = listing1_module()
        reparsed = roundtrip(module)
        assert reparsed.function("k").is_kernel

    def test_block_attrs_preserved(self):
        reparsed = roundtrip(listing1_module())
        assert reparsed.function("k").block("then").label == "L1"

    def test_params_preserved(self):
        fn = Function("f", params=[Reg("a"), Reg("b")])
        block = fn.new_block("entry")
        block.append(make(Opcode.RET, None, Reg("a")))
        module = Module("m")
        module.add(fn)
        reparsed = roundtrip(module)
        assert reparsed.function("f").params == [Reg("a"), Reg("b")]

    def test_barrier_and_soft_sync_roundtrip(self):
        fn = Function("f", is_kernel=True)
        block = fn.new_block("entry")
        block.append(make(Opcode.BSSY, None, Barrier("B0")))
        block.append(make(Opcode.BSYNCSOFT, None, Barrier("B0"), Imm(8)))
        block.append(make(Opcode.BBREAK, None, Barrier("B0")))
        block.append(make(Opcode.BMOV, Reg("bt"), Barrier("B0")))
        block.append(make(Opcode.BARCNT, Reg("c"), Reg("bt")))
        block.append(Instruction(Opcode.EXIT))
        module = Module("m")
        module.add(fn)
        reparsed = roundtrip(module)
        ops = [i.opcode for i in reparsed.function("f").block("entry")]
        assert Opcode.BSYNCSOFT in ops and Opcode.BMOV in ops

    def test_predict_directive_roundtrip(self):
        reparsed = roundtrip(listing1_module(with_predict=True))
        entry = reparsed.function("k").block("entry")
        predicts = [i for i in entry if i.opcode is Opcode.PREDICT]
        assert len(predicts) == 1
        assert predicts[0].attrs["label"] == "L1"

    def test_multi_function_module(self):
        text = """
func @helper(%x) {
entry:
  %y = mul %x, 2
  ret %y
}

func @main() kernel {
entry:
  %a = const 3
  %r = call @helper, %a
  exit
}
"""
        module = parse_module(text)
        assert set(module.functions) == {"helper", "main"}
        assert format_module(parse_module(format_module(module))) == format_module(module)


class TestParserErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_function("func @f() {\nentry:\n  frobnicate\n}")

    def test_unterminated_function(self):
        with pytest.raises(ParseError):
            parse_function("func @f() {\nentry:\n  exit\n")

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_function("func @f() {\nentry:\n  bra }\n}")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_module("func @f() { entry: exit ~ }")

    def test_parse_function_requires_exactly_one(self):
        with pytest.raises(ParseError):
            parse_function(
                "func @a() {\nentry:\n  exit\n}\nfunc @b() {\nentry:\n  exit\n}"
            )

    def test_error_carries_line_number(self):
        try:
            parse_function("func @f() {\nentry:\n  frobnicate\n}")
        except ParseError as err:
            assert err.line == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


_SIMPLE_BINOPS = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MIN, Opcode.CMPLT]


@st.composite
def random_linear_function(draw):
    """A random straight-line function for round-trip property tests."""
    fn = Function("f", is_kernel=True)
    block = fn.new_block("entry")
    regs = []
    first = fn.new_reg("c")
    block.append(make(Opcode.CONST, first, Imm(draw(st.integers(-100, 100)))))
    regs.append(first)
    for index in range(draw(st.integers(0, 12))):
        opcode = draw(st.sampled_from(_SIMPLE_BINOPS))
        dst = fn.new_reg("t")
        a = draw(st.sampled_from(regs))
        b_choice = draw(st.one_of(st.sampled_from(regs), st.integers(-9, 9)))
        operand = b_choice if isinstance(b_choice, Reg) else Imm(b_choice)
        block.append(make(opcode, dst, a, operand))
        regs.append(dst)
    block.append(Instruction(Opcode.EXIT))
    module = Module("m")
    module.add(fn)
    return module


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(random_linear_function())
    def test_random_functions_roundtrip(self, module):
        roundtrip(module)
