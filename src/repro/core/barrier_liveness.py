"""Barrier Live Range Analysis (Section 4.2.1, Equation 2).

Standard backward liveness on barrier registers: a barrier is *live* at P
if some path from P reaches a ``WaitBarrier`` for it before a
``JoinBarrier`` re-defines it.

    Gen(BB)  = WaitBarrier        Kill(BB) = JoinBarrier
    IN(BB)   = (OUT(BB) − Kill(BB)) ∪ Gen(BB)
    OUT(BB)  = ∪ IN(s), s ∈ succs(BB)

A ``CancelBarrier`` also kills liveness: a thread that withdraws on that
path will not wait.
"""

from __future__ import annotations

from repro.analysis.cfg_utils import CFGView
from repro.analysis.dataflow import solve_backward
from repro.core.primitives import barrier_name_of, is_cancel, is_join, is_wait


def _block_effects(block):
    """(gen, kill) under backward liveness semantics (scan bottom-up)."""
    gen, kill = set(), set()
    for instr in reversed(block.instructions):
        if is_wait(instr):
            name = barrier_name_of(instr)
            if name is not None:
                gen.add(name)
                kill.discard(name)
        elif is_join(instr) or is_cancel(instr):
            name = barrier_name_of(instr)
            if name is not None:
                kill.add(name)
                gen.discard(name)
    return gen, kill


class BarrierLiveness:
    """Barrier liveness facts for one function."""

    def __init__(self, function):
        self.function = function
        view = CFGView.of_function(function)
        gen, kill = {}, {}
        for block in function.blocks:
            gen[block.name], kill[block.name] = _block_effects(block)
        self._result = solve_backward(view, gen, kill)

    def live_in(self, block_name):
        return self._result.in_of(block_name)

    def live_out(self, block_name):
        return self._result.out_of(block_name)

    def live_before(self, block, index):
        """Barriers live immediately before instruction ``index``."""
        live = set(self.live_out(block.name))
        for instr in reversed(block.instructions[index:]):
            if is_wait(instr):
                name = barrier_name_of(instr)
                if name is not None:
                    live.add(name)
            elif is_join(instr) or is_cancel(instr):
                name = barrier_name_of(instr)
                if name is not None:
                    live.discard(name)
        return frozenset(live)

    def live_after(self, block, index):
        """Barriers live immediately after instruction ``index``."""
        return self.live_before(block, index + 1)
